"""Kernel microbenchmark harness — the repo's perf trajectory anchor.

Measures event throughput of the simulation substrate (`repro.sim`) on
four workloads that together cover the kernel's hot paths:

* ``event_churn``       — timeout-heavy process churn (Environment.step,
                          Timeout allocation, Process._resume).
* ``store_contention``  — many producers/consumers blocked on a bounded
                          Store (waiter-queue dispatch, the historical
                          O(n) ``pop(0)`` hot spot).
* ``condition_fanin``   — wide AllOf/AnyOf fan-in (Condition._check).
* ``fig11_shard``       — one end-to-end (architecture, service) cell of
                          the Figure 11 latency experiment at smoke
                          scale: the realistic mix every figure in the
                          paper reproduction bottoms out in.
* ``fluid_cluster``     — the same fleet run twice in interleaved A/B
                          rounds, exact DES vs a 90%-fluid tier
                          (`repro.cluster.fluid`); reports the wall
                          clock speedup the fluid approximation buys.
* ``placement_overhead`` — interleaved A/B of one dedicated StoreP run
                          with no placement config vs the forced
                          pass-through placement fabric (everything
                          on-package); reports the fabric layer's pure
                          indirection cost on the DMA hot path, which
                          must stay marginal (<2%).
* ``health_plane_overhead`` — interleaved A/B of one fleet run with no
                          health plane vs an installed-but-idle monitor
                          (thresholds nothing crosses, prober on); the
                          delta is the plane's pure observation cost
                          and the harness fails when it exceeds
                          ``--max-health-overhead`` (default 2%).

Kernel cases report events processed per wall-clock second; the
end-to-end ``fig11_shard`` case has no kernel event count and reports
completed requests per second under its own ``reqs_per_s`` key instead.
Results are written to ``BENCH_kernel.json`` at the repo root; CI runs
``--quick`` and fails when ``store_contention`` regresses more than
``--max-regression`` against the checked-in baseline
(``--baseline BENCH_kernel.json``).

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel.py            # full
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick
    PYTHONPATH=src python benchmarks/bench_kernel.py --quick \
        --baseline BENCH_kernel.json --max-regression 0.20

See docs/performance.md for the kernel perf model and how to read the
output.
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
from pathlib import Path
from time import perf_counter

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.sim import AllOf, AnyOf, Environment, Store  # noqa: E402

DEFAULT_OUTPUT = REPO_ROOT / "BENCH_kernel.json"


# ---------------------------------------------------------------------------
# benchmark cases: each returns (events_processed, wall_seconds)
# ---------------------------------------------------------------------------

def _run_counted(build, profile: bool):
    """Build a fresh environment via ``build()`` and run it to exhaustion.

    Timing runs keep kernel profiling *off* — its two ``perf_counter``
    calls per event would swamp the dispatch cost being measured. Event
    counts are deterministic, so each case is counted once in a
    profiled pre-run and the count reused for every timed run.
    """
    env = build(profile)
    start = perf_counter()
    env.run()
    elapsed = perf_counter() - start
    return (env.profile.events if profile else None), elapsed


def bench_event_churn(scale: int):
    """Timeout-heavy churn: `scale` processes, 100 sequential timeouts each."""

    def build(profile):
        env = Environment(profile=profile)

        def ticker(env, delay):
            for _ in range(100):
                yield env.timeout(delay)

        for i in range(scale):
            # Mixed delays: exercises the calendar, not just one heap lane.
            env.process(ticker(env, 1.0 + (i % 7) * 0.25), name=f"tick-{i}")
        return env

    return build


def bench_store_contention(scale: int):
    """Bounded store with `scale` producers and consumers all blocked at
    once — dispatch cost on long waiter queues dominates."""

    def build(profile):
        env = Environment(profile=profile)
        store = Store(env, capacity=16)

        def producer(env, store, n):
            for i in range(n):
                yield store.put(i)

        def consumer(env, store, n):
            for _ in range(n):
                yield store.get()

        per_actor = 40
        for i in range(scale):
            env.process(producer(env, store, per_actor), name=f"prod-{i}")
        for i in range(scale):
            env.process(consumer(env, store, per_actor), name=f"cons-{i}")
        return env

    return build


def bench_condition_fanin(scale: int):
    """Wide AllOf/AnyOf over timeout events, `scale` rounds of width 64."""

    def build(profile):
        env = Environment(profile=profile)

        def round_proc(env):
            for r in range(scale):
                events = [env.timeout((i % 5) * 0.5) for i in range(64)]
                yield AllOf(env, events)
                events = [env.timeout(1.0 + (i % 3)) for i in range(64)]
                yield AnyOf(env, events)

        env.process(round_proc(env), name="fanin")
        return env

    return build


def bench_fig11_shard(scale: str):
    """One end-to-end Figure 11 cell (accelflow x a SocialNetwork service)."""
    from repro.experiments.fig11_latency import make_shards, run_shard

    shard = make_shards(scale=scale, seed=0, architectures=["accelflow"])[0]
    start = perf_counter()
    payload = run_shard(shard, scale)
    elapsed = perf_counter() - start
    # The shard payload does not carry a kernel event count; report
    # completed requests per second instead (same axis: sim work / wall s).
    return payload["service"].completed, elapsed


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------

def run_case(name, fn, arg, repeat):
    build = fn(arg)
    events, _ = _run_counted(build, profile=True)  # deterministic count
    walls = []
    for _ in range(repeat):
        _, elapsed = _run_counted(build, profile=False)
        walls.append(elapsed)
    # Best-of-N wall time: the most noise-robust estimator of the
    # kernel's actual cost (anything slower is scheduler interference).
    best = min(walls)
    return {
        "events": events,
        "wall_s_best": best,
        "wall_s_median": statistics.median(walls),
        "events_per_s": events / best if best > 0 else 0.0,
        "repeats": repeat,
    }


def run_endtoend_case(name, fn, arg, repeat):
    # End-to-end cases count *requests*, not kernel events — reporting
    # them under ``events_per_s`` once made a ~1M events/s kernel look
    # like it ran at 96 "events"/s. They get their own keys.
    rates, count, walls = [], 0, []
    for _ in range(repeat):
        count, elapsed = fn(arg)
        walls.append(elapsed)
        rates.append(count / elapsed if elapsed > 0 else 0.0)
    return {
        "requests": count,
        "wall_s_best": min(walls),
        "wall_s_median": statistics.median(walls),
        "reqs_per_s": max(rates),
        "repeats": repeat,
    }


def bench_fluid_cluster(quick: bool):
    """Interleaved A/B: one fleet run exact, then again with nine of its
    ten machines on the analytical fluid tier (batched arrivals). Both
    arms share a seed (CRN); the speedup is the wall-clock ratio of
    best-of rounds measured in the same process epoch."""
    from repro.cluster import ClusterConfig, FluidConfig, run_cluster
    from repro.workloads import social_network_services

    services = [
        s for s in social_network_services() if s.name in ("UniqId", "StoreP")
    ]
    requests = 300 if quick else 900

    def run(fluid: bool):
        config = ClusterConfig(
            policy="round-robin",
            machines=10,
            requests_per_service=requests,
            rate_rps=60000.0,
            seed=0,
            arrival_mode="poisson",
            warmup_fraction=0.0,
            fluid=FluidConfig(
                policy="static",
                fluid_machines=tuple(range(1, 10)),
                calibrate_requests=15,
                batched=True,
            ) if fluid else None,
        )
        start = perf_counter()
        result = run_cluster(services, config)
        elapsed = perf_counter() - start
        return result, elapsed

    return run


def run_fluid_case(repeat, quick):
    run = bench_fluid_cluster(quick=quick)
    exact_walls, fluid_walls = [], []
    exact_events = fluid_events = 0
    fluid_fraction = 0.0
    for _ in range(repeat):
        result, elapsed = run(fluid=False)
        exact_walls.append(elapsed)
        exact_events = result.cluster.env.scheduled_events
        result, elapsed = run(fluid=True)
        fluid_walls.append(elapsed)
        fluid_events = result.cluster.env.scheduled_events
        fluid_fraction = result.fluid_stats["mean_fluid_fraction"]
    best_exact, best_fluid = min(exact_walls), min(fluid_walls)
    return {
        "exact_wall_s_best": best_exact,
        "fluid_wall_s_best": best_fluid,
        "speedup": best_exact / best_fluid if best_fluid > 0 else 0.0,
        "exact_events": exact_events,
        "fluid_events": fluid_events,
        "event_ratio": (
            exact_events / fluid_events if fluid_events else 0.0
        ),
        "mean_fluid_fraction": fluid_fraction,
        "repeats": repeat,
    }


def bench_placement_overhead(quick: bool):
    """Interleaved A/B: the same dedicated StoreP run with no placement
    config vs the forced pass-through fabric (everything on-package,
    ``force_fabric=True``). Same seed -> identical event schedules; the
    wall-clock delta is the fabric's pure indirection cost on the DMA
    hot path, which the byte-identity contract says is all it may add."""
    from repro.experiments.common import pick_service
    from repro.hw import MachineParams
    from repro.server.driver import RunConfig, run_dedicated_service
    from repro.workloads import social_network_services

    spec = pick_service(social_network_services(), "StoreP")
    requests = 200 if quick else 500

    def run(forced: bool):
        params = MachineParams()
        if forced:
            params = params.with_placement("on_package", force_fabric=True)
        config = RunConfig(
            "accelflow",
            requests_per_service=requests,
            seed=0,
            arrival_mode="poisson",
            rate_rps=2000.0,
            machine_params=params,
            warmup_fraction=0.0,
        )
        start = perf_counter()
        cell = run_dedicated_service(spec, config)
        elapsed = perf_counter() - start
        return cell["service"].completed, elapsed

    return run


def run_placement_case(repeat, quick):
    run = bench_placement_overhead(quick=quick)
    # One discarded round per arm: the first run pays module imports
    # and allocator warm-up, which would skew whichever arm goes first.
    run(forced=False)
    run(forced=True)
    plain_walls, fabric_walls = [], []
    completed = 0
    for _ in range(repeat):
        completed, elapsed = run(forced=False)
        plain_walls.append(elapsed)
        _, elapsed = run(forced=True)
        fabric_walls.append(elapsed)
    best_plain, best_fabric = min(plain_walls), min(fabric_walls)
    return {
        "requests": completed,
        "plain_wall_s_best": best_plain,
        "fabric_wall_s_best": best_fabric,
        "overhead_fraction": (
            (best_fabric - best_plain) / best_plain if best_plain else 0.0
        ),
        "repeats": repeat,
    }


def bench_health_overhead(quick: bool):
    """Interleaved A/B: the same fleet run with no health plane vs an
    installed-but-idle :class:`~repro.cluster.HealthConfig` (thresholds
    nothing crosses, prober on). The monitor is RNG-free and ejects
    nothing here, so both arms execute the identical event schedule;
    the wall-clock delta is the plane's pure observation cost — EWMA
    folds on every completion plus bounded probe sweeps."""
    from repro.cluster import ClusterConfig, HealthConfig, run_cluster
    from repro.workloads import social_network_services

    services = [
        s for s in social_network_services() if s.name in ("UniqId", "StoreP")
    ]
    requests = 200 if quick else 500

    def run(health: bool):
        config = ClusterConfig(
            policy="round-robin",
            machines=3,
            requests_per_service=requests,
            rate_rps=30000.0,
            seed=0,
            arrival_mode="poisson",
            warmup_fraction=0.0,
            health=HealthConfig(
                latency_threshold_ns=1e12,
                error_threshold=1.0,
                probe_interval_ns=1e6,
                probe_pressure_threshold=1e12,
                probe_max=256,
            ) if health else None,
        )
        start = perf_counter()
        result = run_cluster(services, config)
        elapsed = perf_counter() - start
        return result.completed, elapsed

    return run


def run_health_case(repeat, quick):
    run = bench_health_overhead(quick=quick)
    run(health=False)  # discard warm-up round per arm
    run(health=True)
    plain_walls, health_walls = [], []
    completed = 0
    for _ in range(repeat):
        completed, elapsed = run(health=False)
        plain_walls.append(elapsed)
        _, elapsed = run(health=True)
        health_walls.append(elapsed)
    best_plain, best_health = min(plain_walls), min(health_walls)
    return {
        "requests": completed,
        "plain_wall_s_best": best_plain,
        "health_wall_s_best": best_health,
        "overhead_fraction": (
            (best_health - best_plain) / best_plain if best_plain else 0.0
        ),
        "repeats": repeat,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller scales + fewer repeats (CI mode)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="runs per case (median reported)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help=f"result JSON path (default {DEFAULT_OUTPUT})")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline BENCH_kernel.json to compare against")
    parser.add_argument("--max-regression", type=float, default=0.20,
                        help="fail if store_contention events/s drops by more "
                             "than this fraction vs the baseline (default 0.20)")
    parser.add_argument("--skip-fig11", action="store_true",
                        help="skip the end-to-end fig11 shard case")
    parser.add_argument("--skip-fluid", action="store_true",
                        help="skip the fluid-vs-DES cluster A/B case")
    parser.add_argument("--skip-placement", action="store_true",
                        help="skip the placement-fabric overhead A/B case")
    parser.add_argument("--skip-health", action="store_true",
                        help="skip the health-plane overhead A/B case")
    parser.add_argument("--max-health-overhead", type=float, default=0.02,
                        help="fail if the idle health plane costs more than "
                             "this fraction of fleet wall clock (default 0.02)")
    args = parser.parse_args(argv)

    repeat = args.repeat or (3 if args.quick else 5)
    churn_scale = 200 if args.quick else 500
    # Contention is a *scaling* case: thousands of simultaneously
    # blocked actors, the regime the fleet/cluster sims live in, where
    # waiter-queue service cost dominates.
    store_scale = 1500 if args.quick else 4000
    fanin_scale = 100 if args.quick else 300

    results = {}
    print(f"bench_kernel: repeat={repeat} quick={args.quick}", flush=True)
    for name, fn, arg in [
        ("event_churn", bench_event_churn, churn_scale),
        ("store_contention", bench_store_contention, store_scale),
        ("condition_fanin", bench_condition_fanin, fanin_scale),
    ]:
        results[name] = run_case(name, fn, arg, repeat)
        print(f"  {name:<18} {results[name]['events_per_s']:>12,.0f} events/s "
              f"({results[name]['events']:,} events, "
              f"{results[name]['wall_s_median'] * 1e3:.1f} ms)", flush=True)

    if not args.skip_fig11:
        results["fig11_shard"] = run_endtoend_case(
            "fig11_shard", bench_fig11_shard, "smoke", max(1, repeat - 2))
        r = results["fig11_shard"]
        print(f"  {'fig11_shard':<18} {r['reqs_per_s']:>12,.0f} reqs/s "
              f"({r['wall_s_median'] * 1e3:.1f} ms)", flush=True)

    if not args.skip_fluid:
        results["fluid_cluster"] = run_fluid_case(
            max(1, repeat - 2), args.quick)
        r = results["fluid_cluster"]
        print(f"  {'fluid_cluster':<18} {r['speedup']:>11.1f}x speedup "
              f"({r['exact_wall_s_best'] * 1e3:.0f} ms exact vs "
              f"{r['fluid_wall_s_best'] * 1e3:.0f} ms fluid, "
              f"{r['mean_fluid_fraction']:.0%} fluid)", flush=True)

    if not args.skip_placement:
        results["placement_overhead"] = run_placement_case(
            repeat + 2, args.quick)
        r = results["placement_overhead"]
        print(f"  {'placement_overhead':<18} "
              f"{r['overhead_fraction']:>+11.1%} overhead "
              f"({r['plain_wall_s_best'] * 1e3:.0f} ms plain vs "
              f"{r['fabric_wall_s_best'] * 1e3:.0f} ms forced fabric)",
              flush=True)

    health_gate_failed = False
    if not args.skip_health:
        results["health_plane_overhead"] = run_health_case(
            repeat + 2, args.quick)
        r = results["health_plane_overhead"]
        print(f"  {'health_plane_overhead':<18} "
              f"{r['overhead_fraction']:>+11.1%} overhead "
              f"({r['plain_wall_s_best'] * 1e3:.0f} ms plain vs "
              f"{r['health_wall_s_best'] * 1e3:.0f} ms health plane)",
              flush=True)
        if r["overhead_fraction"] > args.max_health_overhead:
            print(f"FAIL: idle health plane costs "
                  f"{r['overhead_fraction']:.1%} of fleet wall clock "
                  f"(budget {args.max_health_overhead:.0%})",
                  file=sys.stderr)
            health_gate_failed = True

    payload = {
        "schema": 1,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "mode": "quick" if args.quick else "full",
        "cases": results,
    }

    status = 1 if health_gate_failed else 0
    if args.baseline and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
        base_rate = baseline["cases"]["store_contention"]["events_per_s"]
        new_rate = results["store_contention"]["events_per_s"]
        ratio = new_rate / base_rate if base_rate else float("inf")
        payload["comparison"] = {
            "baseline_store_contention_events_per_s": base_rate,
            "ratio": ratio,
        }
        print(f"store_contention vs baseline: {ratio:.2f}x "
              f"({new_rate:,.0f} vs {base_rate:,.0f} events/s)")
        if ratio < 1.0 - args.max_regression:
            print(f"FAIL: store_contention regressed more than "
                  f"{args.max_regression:.0%} vs baseline", file=sys.stderr)
            status = 1

    # Carry the pre-optimization reference forward so the JSON documents
    # the perf trajectory, not just a point sample.
    if args.output.exists():
        try:
            previous = json.loads(args.output.read_text())
            if "reference" in previous:
                payload["reference"] = previous["reference"]
        except (ValueError, KeyError):
            pass

    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())

"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables/figures at the
"smoke" scale (single round — these are minutes-long simulations, not
microbenchmarks), asserts the result's qualitative shape, and prints
the same rows/series the paper reports (run with ``-s`` to see them).
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run

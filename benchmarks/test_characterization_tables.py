"""Benches for the Section III characterization: Fig 1, Fig 3, Fig 5,
Table I, Table II, Table IV."""

from repro.experiments import (
    fig01_breakdown,
    fig03_orchestration,
    fig05_datasizes,
    table1_connectivity,
    table2_traces,
    table4_paths,
)
from repro.workloads import TaxCategory


def test_fig01_breakdown(run_once):
    result = run_once(fig01_breakdown.run, scale="smoke")
    print("\n" + result["table"])
    averages = result["averages"]
    # Paper's Fig 1 averages: AppLogic ~20.7%, TCP largest tax share.
    assert abs(averages[TaxCategory.APP_LOGIC] - 0.207) < 0.05
    tax_shares = {c: averages[c] for c in TaxCategory.TAX}
    assert max(tax_shares, key=tax_shares.get) == TaxCategory.TCP


def test_fig03_orchestration_overhead(run_once):
    result = run_once(fig03_orchestration.run, scale="smoke")
    print("\n" + result["table"])
    fractions = result["fractions"]
    top_load = max(result["loads_krps"])
    # Direct has by far the least overhead; the centralized approaches
    # pay substantially more at high load (paper: 25% / 15% vs tiny).
    assert fractions["direct"][top_load] < fractions["relief"][top_load]
    assert fractions["direct"][top_load] < fractions["cpu-centric"][top_load]
    assert fractions["cpu-centric"][top_load] > 0.15  # paper: 25% at 15 kRPS
    # The manager's overhead share grows with load (queueing at the
    # centralized unit); CPU-Centric's is large at every load in this
    # model (its per-completion interrupt cost is load-independent).
    low = min(result["loads_krps"])
    assert fractions["relief"][top_load] > fractions["relief"][low]


def test_fig05_data_sizes(run_once):
    result = run_once(fig05_datasizes.run, scale="smoke")
    print("\n" + result["table"])
    sizes = result["sizes"]
    assert "LdB" not in sizes  # the paper has no LdB bar
    for name, entry in sizes.items():
        # Medians of a few KB, long tails into tens of KB (Fig 5).
        assert 100 < entry["in"]["median"] < 16 * 1024
        assert entry["in"]["max"] > 10 * 1024
    assert sizes["Cmp"]["in"]["median"] > sizes["Cmp"]["out"]["median"]
    assert sizes["Dcmp"]["out"]["median"] > sizes["Dcmp"]["in"]["median"]


def test_table1_connectivity(run_once):
    result = run_once(table1_connectivity.run, scale="smoke")
    print("\n" + result["table"])
    table = result["connectivity"]
    # The paper's point: accelerators need flexible interconnections.
    multi_fanout = [
        name for name, e in table.items() if len(e["destinations"]) >= 2
    ]
    assert len(multi_fanout) >= 5
    # Spot checks against Table I.
    assert "Decr" in table["TCP"]["destinations"]
    assert "CPU" in table["LdB"]["destinations"]
    assert "TCP" in table["Decr"]["sources"]


def test_table2_trace_catalogue(run_once):
    result = run_once(table2_traces.run, scale="smoke")
    print("\n" + result["table"])
    traces = result["traces"]
    for name in ("T1", "T2", "T4", "T5", "T6", "T7", "T9", "T12"):
        assert name in traces
    # No trace requires splitting (Section IV-A observation).
    assert all(entry["fits_8_bytes"] for entry in traces.values())
    # Receive traces carry conditionals; T4 chains to T5.
    assert traces["T1"]["conditions"] == ["compressed"]
    assert "T5" in traces["T4"]["links"]


def test_table4_paths(run_once):
    result = run_once(table4_paths.run, scale="smoke")
    print("\n" + result["table"])
    # Accelerator counts must match the paper exactly.
    for name, entry in result["services"].items():
        assert entry["match"], f"{name}: {entry['accelerators']} != {entry['paper']}"

"""The cluster wrapper must stay thin around a single server.

Acceptance gate for the cluster subsystem: a one-machine round-robin
cluster adds only a per-request lifecycle generator and a trivial
balancer pick on top of the underlying server simulation, so its
median runtime must stay close to driving the same server directly.
Run explicitly with ``pytest benchmarks/test_cluster_overhead.py -s``.
"""

import statistics
import time

from repro.cluster import ClusterConfig, run_cluster
from repro.server import RunConfig, run_experiment
from repro.workloads import social_network_services

ROUNDS = 7
REQUESTS = 150
RATE_RPS = 20000.0
# The lifecycle shim costs a few percent; the wide margin absorbs
# single-machine timing noise so the gate cannot flake.
MAX_SLOWDOWN = 1.5


def _services():
    return [s for s in social_network_services() if s.name == "UniqId"]


def _median_server_runtime():
    durations = []
    for round_index in range(ROUNDS):
        config = RunConfig(
            architecture="accelflow",
            requests_per_service=REQUESTS,
            seed=round_index,
            arrival_mode="poisson",
            rate_rps=RATE_RPS,
        )
        start = time.perf_counter()
        run_experiment(_services(), config)
        durations.append(time.perf_counter() - start)
    return statistics.median(durations)


def _median_cluster_runtime():
    durations = []
    for round_index in range(ROUNDS):
        config = ClusterConfig(
            architecture="accelflow",
            policy="round-robin",
            machines=1,
            requests_per_service=REQUESTS,
            seed=round_index,
            arrival_mode="poisson",
            rate_rps=RATE_RPS,
        )
        start = time.perf_counter()
        run_cluster(_services(), config)
        durations.append(time.perf_counter() - start)
    return statistics.median(durations)


def test_single_machine_cluster_overhead():
    baseline = _median_server_runtime()
    cluster = _median_cluster_runtime()
    ratio = cluster / baseline
    print(
        f"\ncluster overhead: server {baseline * 1e3:.1f} ms, "
        f"1-machine cluster {cluster * 1e3:.1f} ms, ratio {ratio:.3f}"
    )
    assert ratio < MAX_SLOWDOWN, (
        f"one-machine cluster run is {ratio:.2f}x the direct server run "
        f"(allowed {MAX_SLOWDOWN}x); the front-door shim has grown a hot path"
    )

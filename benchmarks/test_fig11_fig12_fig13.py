"""Benches for the headline latency results: Fig 11, Fig 12, Fig 13."""

from repro.experiments import fig11_latency, fig12_loads, fig13_ablation


def test_fig11_latency(run_once):
    result = run_once(fig11_latency.run, scale="quick")
    print("\n" + result["table"])
    results = result["results"]
    accelflow = results["accelflow"].mean_p99_ns()
    # The paper's ordering: AccelFlow shortest tail; Non-acc longest.
    assert accelflow < results["relief"].mean_p99_ns()
    assert accelflow < results["cohort"].mean_p99_ns()
    assert accelflow < results["cpu-centric"].mean_p99_ns()
    assert results["non-acc"].mean_p99_ns() == max(
        r.mean_p99_ns() for r in results.values()
    )
    # Large reductions vs the software baseline (paper: 90.7%).
    assert result["reductions"]["non-acc"]["p99"] > 40.0
    # Mean latency follows the same trend (paper Fig 11 stars).
    assert results["accelflow"].mean_latency_ns() < results[
        "relief"
    ].mean_latency_ns()


def test_fig12_load_sweep(run_once):
    result = run_once(
        fig12_loads.run, scale="smoke", include_extra_suites=False
    )
    print("\n" + result["table"])
    p99 = result["p99_ns"]
    for load in [5000.0, 10000.0, 15000.0]:
        assert p99["accelflow"][load] < p99["relief"][load]
        assert p99["accelflow"][load] < p99["non-acc"][load]
    # Tails grow with load for the software baseline.
    assert p99["non-acc"][15000.0] > p99["non-acc"][5000.0]


def test_fig13_ablation_ladder(run_once):
    result = run_once(fig13_ablation.run, scale="quick")
    print("\n" + result["table"])
    p99 = result["p99_ns"]
    # Every added technique helps; full AccelFlow is the best rung
    # (paper: cumulative -6.8/-32.7/-55.1/-68.7%).
    assert p99["accelflow"] < p99["cntrflow"] <= p99["relief"]
    assert p99["direct"] < p99["per-acc-type-q"] <= p99["relief"] * 1.05
    assert result["reductions"]["accelflow"] > 15.0

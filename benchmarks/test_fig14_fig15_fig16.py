"""Benches for throughput and cross-domain results: Fig 14, 15, 16."""

from repro.experiments import fig14_throughput, fig15_gem5, fig16_serverless


def test_fig14_max_throughput(run_once):
    result = run_once(fig14_throughput.run, scale="smoke", include_edf=True)
    print("\n" + result["table"])
    means = result["means_rps"]
    # AccelFlow sustains more load than every baseline (paper: 8.3x
    # Non-acc, 2.2x RELIEF) and sits close to Ideal (within 8%).
    assert means["accelflow"] > means["non-acc"]
    assert means["accelflow"] > means["relief"]
    assert means["accelflow"] > means["cpu-centric"]
    assert means["accelflow"] >= 0.7 * means["ideal"]
    if result["edf_gain"] is not None:
        assert result["edf_gain"] >= 0.9  # EDF never collapses throughput


def test_fig15_coarse_grained_apps(run_once):
    result = run_once(fig15_gem5.run, scale="smoke")
    print("\n" + result["table"])
    # AccelFlow consistently beats RELIEF on the image/RNN suite, but by
    # less than on microservices (paper: 1.8x average).
    for app, speedup in result["speedups"].items():
        assert speedup > 1.0, f"{app}: {speedup}"
    assert 1.0 < result["mean_speedup"] < 4.0


def test_fig16_serverless(run_once):
    result = run_once(fig16_serverless.run, scale="quick")
    print("\n" + result["table"])
    results = result["results"]
    # AccelFlow < RELIEF < Non-acc (paper: -37% vs RELIEF).
    assert results["accelflow"].mean_p99_ns() < results["relief"].mean_p99_ns()
    assert results["relief"].mean_p99_ns() < results["non-acc"].mean_p99_ns()
    assert result["reduction_vs_relief"] > 5.0

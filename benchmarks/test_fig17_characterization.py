"""Benches for the Section VII.B characterization: Fig 17 and the
glue-instruction / utilization / energy / event statistics."""

from repro.experiments import char_branches, characterization, fig17_components
from repro.workloads import Buckets


def test_fig17_execution_components(run_once):
    result = run_once(fig17_components.run, scale="smoke")
    print("\n" + result["table"])
    # Accelerator time dominates; orchestration is a small slice
    # (paper: 2.2% average for AccelFlow).
    for name, entry in result["services"].items():
        fractions = entry["fractions"]
        assert fractions[Buckets.ACCEL] > fractions[Buckets.ORCHESTRATION]
    assert result["mean_orchestration_fraction"] < 0.10


def test_char_glue_instructions(run_once):
    result = run_once(characterization.run_glue, scale="smoke")
    print("\n" + result["table"])
    # Paper: ~15 base instructions, ~18 average, ~50 worst case.
    assert 15.0 <= result["average_instructions"] <= 30.0
    assert result["branches"] > 0
    assert result["transforms"] > 0


def test_char_utilization(run_once):
    result = run_once(characterization.run_utilization, scale="smoke")
    print("\n" + result["table"])
    utilization = result["utilization"]
    # (De)Cmp is the least-utilized accelerator family (paper: 38%).
    busiest = max(utilization.values())
    assert busiest > 0.05
    assert min(utilization["Cmp"], utilization["Dcmp"]) < busiest


def test_char_energy(run_once):
    result = run_once(characterization.run_energy, scale="smoke")
    print("\n" + result["table"])
    # AccelFlow saves energy vs Non-acc (paper: -74%) and improves
    # perf/W vs both baselines (paper: 7.2x / 2.1x).
    assert result["energy_savings_pct"] > 10.0
    assert result["ppw_vs_nonacc"] > 1.2
    assert result["ppw_vs_relief"] >= 1.0


def test_char_high_overhead_events(run_once):
    result = run_once(characterization.run_events, scale="smoke")
    print("\n" + result["table"])
    # These events exist but are rare (paper: fallbacks 1.4%, page
    # faults 0.13/Mi, timeouts 3.2/M).
    assert result["total_ops"] > 0
    assert result["rejected"] <= 0.05 * result["total_ops"]
    assert 0.0 <= result["tlb_miss_rate"] < 0.10


def test_char_branch_statistics(run_once):
    result = run_once(char_branches.run, scale="smoke")
    print("\n" + result["table"])
    shares = result["shares"]
    # The paper's key observation: a majority of CPU-uninterrupted
    # accelerator sequences contain at least one conditional, in every
    # suite (53.8%-82.5%), so orchestration must resolve branches
    # without interrupting a CPU.
    for suite, share in shares.items():
        assert share > 0.5, f"{suite}: {share}"

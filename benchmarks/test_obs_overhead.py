"""Disabled observability must not slow the simulator down.

Acceptance gate for the obs subsystem: with ``RunConfig.obs`` left at
``None`` *and* with an all-off ``ObsConfig`` attached, the hot paths
reduce to single attribute checks, so median runtime must stay within
a few percent of the uninstrumented baseline. Run explicitly with
``pytest benchmarks/test_obs_overhead.py -s``.
"""

import statistics
import time

from repro.obs import ObsConfig
from repro.server import RunConfig, run_experiment
from repro.workloads import social_network_services

ROUNDS = 7
REQUESTS = 150
# Generous margin over the ±5% acceptance target: single-machine
# timing noise at this workload size easily exceeds the real cost
# (a handful of `is None` checks), and a hard gate must not flake.
MAX_SLOWDOWN = 1.25


def _median_runtime(obs):
    services = [s for s in social_network_services() if s.name == "UniqId"]
    durations = []
    for round_index in range(ROUNDS):
        config = RunConfig(
            architecture="accelflow",
            requests_per_service=REQUESTS,
            seed=round_index,
            colocated=True,
            obs=obs,
        )
        start = time.perf_counter()
        run_experiment(services, config)
        durations.append(time.perf_counter() - start)
    return statistics.median(durations)


#: The live telemetry plane (bus + SLO monitor + flight recorder) does
#: real per-event work; it is allowed to cost more than the disabled
#: path, but a full streaming stack should still stay within a small
#: multiple of the baseline at this workload size.
MAX_TELEMETRY_SLOWDOWN = 3.0


def _telemetry_obs():
    from repro.obs import SLOMonitorConfig, SLOTarget

    return ObsConfig(
        telemetry=True,
        flight_recorder=True,
        slo=SLOMonitorConfig(
            targets=(SLOTarget("*", availability=0.99, latency_ns=1e6),),
            fast_window_ns=2e6,
            slow_window_ns=2e7,
        ),
    )


def test_disabled_observability_overhead():
    baseline = _median_runtime(obs=None)
    disabled = _median_runtime(obs=ObsConfig())  # constructed but all off
    ratio = disabled / baseline
    print(
        f"\nobs overhead: baseline {baseline * 1e3:.1f} ms, "
        f"disabled-obs {disabled * 1e3:.1f} ms, ratio {ratio:.3f}"
    )
    assert ratio < MAX_SLOWDOWN, (
        f"disabled observability slowed the simulator by {ratio:.2f}x"
    )


def test_streaming_telemetry_overhead():
    """Telemetry-on vs telemetry-off cost of the same seeded runs.

    The disabled path is the ±5% acceptance gate above; the enabled
    path (bus fan-out on every request terminal, burn-rate sweeps, the
    recorder's ring) gets a looser bound that still catches an
    accidentally quadratic subscriber or sweep.
    """
    off = _median_runtime(obs=ObsConfig())
    on = _median_runtime(obs=_telemetry_obs())
    ratio = on / off
    print(
        f"\ntelemetry overhead: off {off * 1e3:.1f} ms, "
        f"on {on * 1e3:.1f} ms, ratio {ratio:.3f}"
    )
    assert ratio < MAX_TELEMETRY_SLOWDOWN, (
        f"streaming telemetry slowed the simulator by {ratio:.2f}x"
    )

"""Benches for the sensitivity studies: Fig 18, Fig 19, Fig 20 and the
Section VII.C inter-chiplet-latency / accelerator-speedup sweeps."""

from repro.experiments import fig18_chiplets, fig19_pes, fig20_generations, sensitivity


def test_fig18_chiplets(run_once):
    result = run_once(fig18_chiplets.run, scale="smoke")
    print("\n" + result["table"])
    p99 = result["p99_ns"]
    # Splitting accelerators across more chiplets raises tail latency
    # (paper: 2 -> 6 chiplets +14%).
    assert p99[6] > p99[1]
    assert result["increase_2_to_6_pct"] > 0.0


def test_fig19_pe_count(run_once):
    result = run_once(fig19_pes.run, scale="quick")
    print("\n" + result["table"])
    p99 = result["p99_ns"]
    # Fewer PEs -> more fallback -> longer tails (paper: +20% @4,
    # +35.7% @2) and rising CPU-fallback rates.
    assert p99[2] > p99[4] >= p99[8] * 0.98
    assert result["fallback_fraction"][2] >= result["fallback_fraction"][8]


def test_fig20_generations(run_once):
    result = run_once(fig20_generations.run, scale="smoke")
    print("\n" + result["table"])
    p99 = result["p99_ns"]
    # Newer cores speed everything up...
    assert p99["non-acc"]["emerald-rapids"] < p99["non-acc"]["haswell"]
    # ...but AccelFlow's advantage over RELIEF persists on every
    # generation (paper: it grows from 68.8% to 71.7%).
    for generation, reduction in result["reductions_vs_relief"].items():
        assert reduction > 0.0, generation


def test_sens_interchiplet_latency(run_once):
    result = run_once(sensitivity.run_interchiplet, scale="smoke")
    print("\n" + result["table"])
    p99 = result["p99_ns"]
    # Inter-chiplet latency matters more with more chiplets (paper:
    # 60 -> 100 cycles on 6 chiplets +45%).
    assert p99[6][100.0] > p99[6][20.0]
    six_sensitivity = p99[6][100.0] / p99[6][20.0]
    two_sensitivity = p99[2][100.0] / p99[2][20.0]
    assert six_sensitivity >= two_sensitivity * 0.99


def test_sens_accelerator_speedups(run_once):
    result = run_once(sensitivity.run_speedups, scale="smoke")
    print("\n" + result["table"])
    gains = result["gains"]
    # Faster accelerators make orchestration the bottleneck, growing
    # AccelFlow's advantage (paper: 1.4x @0.25x -> 3.9x @4x).
    assert gains[4.0] > gains[0.25]
    assert all(g > 1.0 for g in gains.values())


def test_sens_adaptive_offload(run_once):
    # Needs the quick scale: at smoke sizes the 7x load window is too
    # short to congest any accelerator, so nothing would bypass.
    result = run_once(sensitivity.run_adaptive, scale="quick")
    print("\n" + result["table"])
    p99 = result["p99_ns"]
    low, high = 1.0, 7.0
    # No bypasses at light load: the variants behave identically.
    assert result["bypass_fraction"][low] < 0.02
    # Under saturation, bypassing never loses and sheds some load.
    assert result["bypass_fraction"][high] >= result["bypass_fraction"][low]
    assert (
        p99["accelflow-adaptive"][high]
        <= p99["accelflow"][high] * 1.05
    )

#!/usr/bin/env python3
"""Compare the five orchestration architectures on one workload.

Runs the SocialNetwork services under a production-like (bursty) load
on each architecture — Non-acc, CPU-Centric, RELIEF, Cohort, AccelFlow
— and prints per-service P99 plus AccelFlow's reductions, i.e. a small
version of the paper's Figure 11.

Run: ``python examples/compare_orchestrators.py [requests_per_service]``
"""

import sys

from repro.server import RunConfig, run_experiment
from repro.workloads import social_network_services

ARCHITECTURES = ["non-acc", "cpu-centric", "relief", "cohort", "accelflow"]


def main():
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    services = social_network_services()
    print(f"Running {requests} requests/service on {len(ARCHITECTURES)} "
          "architectures (this takes a minute)...\n")

    results = {}
    for arch in ARCHITECTURES:
        config = RunConfig(
            architecture=arch,
            requests_per_service=requests,
            arrival_mode="alibaba",
        )
        results[arch] = run_experiment(services, config)
        print(f"  {arch:<12s} mean-P99 "
              f"{results[arch].mean_p99_ns() / 1000:9.1f} us   "
              f"mean-avg {results[arch].mean_latency_ns() / 1000:8.1f} us")

    print(f"\n{'Service':<8s}" + "".join(f"{a:>13s}" for a in ARCHITECTURES))
    for spec in services:
        row = f"{spec.name:<8s}"
        for arch in ARCHITECTURES:
            row += f"{results[arch].p99_ns(spec.name) / 1000:13.1f}"
        print(row + "   (P99, us)")

    accelflow = results["accelflow"]
    print("\nAccelFlow reductions (paper: P99 -90.7/-81.2/-68.8/-70.1%):")
    for arch in ARCHITECTURES[:-1]:
        p99 = 100 * (1 - accelflow.mean_p99_ns() / results[arch].mean_p99_ns())
        avg = 100 * (1 - accelflow.mean_latency_ns()
                     / results[arch].mean_latency_ns())
        print(f"  vs {arch:<12s}: P99 -{p99:5.1f}%   avg -{avg:5.1f}%")


if __name__ == "__main__":
    main()

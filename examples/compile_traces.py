#!/usr/bin/env python3
"""Automated trace synthesis (the paper's Section IX future work).

Instead of hand-writing traces, annotate the service's tax operations
as a program and let the compiler lower it to hardware traces:

* the network round trip splits the program into ATM-linked send and
  receive traces (the asterisk notation of Figure 2b),
* the rare exception arm is extracted into its own trace so the common
  case never carries its bytes (the Section IV-B optimization the
  paper applies by hand to T6/T7/T10),
* everything is validated against the 16-accelerator-slot budget and
  registered next to the standard catalogue.

Run: ``python examples/compile_traces.py``
"""

from repro.core import TraceRegistry, standard_trace_set
from repro.core.compiler import (
    Convert,
    IfField,
    Offload,
    SendReceive,
    TraceCompiler,
)
from repro.core.encoding import encode_trace
from repro.server import run_unloaded
from repro.workloads import (
    AVERAGE_TAX_FRACTIONS,
    CpuSegment,
    ServiceSpec,
    TraceInvocation,
)


def annotated_program():
    """A lookup service: decode the request, read a replicated store,
    and hand the result to a core — errors reported via a rare arm."""
    return [
        # Receive and decode the incoming request.
        Offload("TCP"),
        Offload("Decr"),
        Offload("Dser"),
        IfField("compressed", then=(Convert("json", "string"), Offload("Dcmp"))),
        # Query the replicated store and wait for its response.
        Offload("Ser"),
        Offload("Encr"),
        SendReceive(
            request=(Offload("TCP"),),
            response=(
                Offload("TCP"),
                Offload("Decr"),
                Offload("Dser"),
                IfField(
                    "exception",
                    then=(Offload("Ser"), Offload("RPC"), Offload("Encr"),
                          Offload("TCP")),
                    rare="then",  # extracted into its own trace
                ),
                Offload("LdB"),
            ),
        ),
    ]


def main():
    compiled = TraceCompiler("lookup").compile(annotated_program())
    print(f"Compiled {len(compiled)} traces (entry: {compiled.entry!r}):")
    for name, trace in sorted(compiled.traces.items()):
        wire = encode_trace(trace)
        kinds = "-".join(k.value for k in trace.resolve({}).kinds())
        print(f"  {name:<16s} {len(wire):2d} bytes on the wire   {kinds}")

    registry = TraceRegistry(standard_trace_set())
    compiled.register_into(registry)
    registry.validate_closed()
    print("\nRegistered alongside T1-T12; catalogue is closed.")

    spec = ServiceSpec(
        name="Lookup",
        suite="compiled",
        total_time_ns=1_200_000.0,
        fractions=dict(AVERAGE_TAX_FRACTIONS),
        path=(
            TraceInvocation(compiled.entry, {"compressed": True}),
            CpuSegment(),
            TraceInvocation("T2"),
        ),
        rate_rps=5000.0,
    )
    result = run_unloaded("accelflow", spec, requests=15, registry=registry)
    print(f"\nSimulated 15 requests through the compiled traces:")
    print(f"  mean {result.mean_ns() / 1000:.1f} us   "
          f"p99 {result.p99_ns() / 1000:.1f} us")


if __name__ == "__main__":
    main()

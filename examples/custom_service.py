#!/usr/bin/env python3
"""Define a brand-new microservice with custom traces and measure it.

Shows the full extension workflow a downstream user follows:

1. Author new traces with the builder API and register them next to the
   standard catalogue (a search service that queries two shards and
   returns a compressed, BSON-encoded result).
2. Describe the service: execution path, time breakdown, payloads.
3. Measure it unloaded and under load on Non-acc vs AccelFlow, with an
   SLO and deadline-aware (EDF) accelerator scheduling.

Run: ``python examples/custom_service.py``
"""

from repro.core import TraceRegistry, atm_link, branch, seq, standard_trace_set, trans
from repro.hw import QueuePolicy
from repro.server import RunConfig, run_experiment, run_unloaded
from repro.workloads import (
    AVERAGE_TAX_FRACTIONS,
    CpuSegment,
    ParallelInvocations,
    ServiceSpec,
    TraceInvocation,
    total_accelerators,
)


def build_registry() -> TraceRegistry:
    registry = TraceRegistry(standard_trace_set())
    # Query one search shard: serialize, encrypt, send; the response
    # trace decodes it, decompressing if the shard compressed it.
    registry.register(
        seq("Ser", "Encr", "TCP", atm_link("shard_resp"), name="shard_query")
    )
    registry.register(
        seq(
            "TCP",
            "Decr",
            "Dser",
            branch("compressed", on_true=["Dcmp"], on_false=[]),
            trans("json", "bson"),
            "LdB",
            name="shard_resp",
        )
    )
    registry.validate_closed()
    return registry


def build_service() -> ServiceSpec:
    return ServiceSpec(
        name="Search",
        suite="custom",
        total_time_ns=1_500_000.0,  # 1.5 ms end to end on a core
        fractions=dict(AVERAGE_TAX_FRACTIONS),
        path=(
            TraceInvocation("T1", {"compressed": True}),
            CpuSegment(weight=2.0),  # ranking
            ParallelInvocations(
                (
                    TraceInvocation("shard_query", {"compressed": True}),
                    TraceInvocation("shard_query", {"compressed": False}),
                )
            ),
            CpuSegment(weight=1.0),  # merge
            TraceInvocation("T3"),  # compressed response
        ),
        rate_rps=8000.0,
        wire_median_bytes=3072.0,
    )


def main():
    registry = build_registry()
    spec = build_service()
    print(f"Service {spec.name!r}: {total_accelerators(registry, spec)} "
          "accelerator invocations per request\n")

    for arch in ("non-acc", "accelflow"):
        unloaded = run_unloaded(arch, spec, requests=20, registry=registry)
        print(f"  {arch:<10s} unloaded mean {unloaded.mean_ns() / 1000:8.1f} us  "
              f"p99 {unloaded.p99_ns() / 1000:8.1f} us")

    # Deadline-aware scheduling matters when the latency-critical
    # service shares the server with heavier tenants: colocate Search
    # with the hefty CPost service and compare FIFO vs EDF at 3x load.
    from repro.workloads import social_network_services

    heavy = [s for s in social_network_services() if s.name == "CPost"][0]
    reference = run_unloaded("accelflow", spec, requests=20,
                             registry=registry).mean_ns()
    heavy_ref = run_unloaded("accelflow", heavy, requests=10,
                             registry=registry).mean_ns()
    print("\nColocated with CPost at 3x load, FIFO vs deadline-aware EDF:")
    for policy in (QueuePolicy.FIFO, QueuePolicy.EDF):
        config = RunConfig(
            architecture="accelflow",
            requests_per_service=250,
            arrival_mode="poisson",
            rate_scale=3.0,
            colocated=True,
            registry=registry,
            queue_policy=policy,
            unloaded_reference_ns={spec.name: reference,
                                   heavy.name: heavy_ref},
        )
        result = run_experiment([spec, heavy], config)
        print(f"  {policy:<6s} Search P99 {result.p99_ns(spec.name) / 1000:9.1f} us"
              f"   CPost P99 {result.p99_ns(heavy.name) / 1000:9.1f} us")

    config = RunConfig(
        architecture="non-acc",
        requests_per_service=250,
        arrival_mode="alibaba",
        registry=registry,
    )
    result = run_experiment([spec], config)
    print(f"  {'non-acc':<6s} P99 {result.p99_ns(spec.name) / 1000:9.1f} us   "
          f"mean {result.mean_ns(spec.name) / 1000:8.1f} us")


if __name__ == "__main__":
    main()

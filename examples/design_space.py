#!/usr/bin/env python3
"""Explore AccelFlow design points with the A/B comparison tool.

A downstream architect asks: for my workload, how much do PE count,
chiplet organization and the queue policy matter? This example sweeps
those axes with :func:`repro.analysis.compare_configs` and prints a
ranked comparison — the same methodology as the paper's Section VII.C,
applied to a custom design space.

Run: ``python examples/design_space.py``
"""

from repro.analysis.compare import Candidate, compare_configs
from repro.hw import MachineParams
from repro.server import RunConfig
from repro.workloads import social_network_services


def main():
    services = [
        s for s in social_network_services() if s.name in ("ReadH", "StoreP", "Login")
    ]

    def config(**kwargs):
        defaults = dict(
            architecture="accelflow",
            requests_per_service=200,
            arrival_mode="alibaba",
            rate_scale=1.5,
        )
        defaults.update(kwargs)
        return RunConfig(**defaults)

    candidates = [
        Candidate("baseline-8pe-2chip", config()),
        Candidate(
            "budget-4pe", config(machine_params=MachineParams().with_pes(4))
        ),
        Candidate(
            "spread-6chiplets",
            config(machine_params=MachineParams().with_layout(6)),
        ),
        Candidate(
            "fast-accels-2x",
            config(machine_params=MachineParams().with_speedup_scale(2.0)),
        ),
        Candidate(
            "dual-instance",
            config(machine_params=MachineParams().with_instances(2)),
        ),
        Candidate("adaptive", config(architecture="accelflow-adaptive")),
    ]

    print(f"Comparing {len(candidates)} design points on "
          f"{', '.join(s.name for s in services)} at 1.5x production load...\n")
    comparison = compare_configs(services, candidates,
                                 baseline="baseline-8pe-2chip")
    print(comparison.table())
    print(f"\nBest design point: {comparison.winner()}")


if __name__ == "__main__":
    main()

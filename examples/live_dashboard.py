#!/usr/bin/env python3
"""Live fleet dashboard over a chaos run: telemetry, SLO burn, incidents.

Runs a small AccelFlow cluster (two machines, admission control) under
injected faults — one machine is killed mid-run — with the full
streaming telemetry plane attached: a TelemetryBus carrying every
request terminal, fault injection and fleet event; an SLOMonitor
burn-rate alerting on the service's availability/latency target; a
FlightRecorder freezing incident bundles around each alert; and the
terminal Dashboard rendered in snapshot mode at the end.

Run: ``python examples/live_dashboard.py``
Options: ``--requests N`` ``--seed S`` ``--bundle-out incident.json``
"""

import argparse

from repro.cluster import ClusterConfig, MachineFailure, run_cluster
from repro.cluster.admission import AdmissionConfig
from repro.obs import ObsConfig, SLOMonitorConfig, SLOTarget
from repro.obs.dashboard import Dashboard
from repro.workloads import social_network_services

SERVICE = "UniqId"
#: Offered load: comfortable for two machines, saturating for the one
#: that survives the injected failure — which is what makes the SLO
#: burn and the incident capture visible. (Microsecond-scale service:
#: a healthy two-machine fleet clears this with p99 around 2x unloaded.)
RATE_RPS = 450_000.0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--bundle-out", default=None, metavar="PATH",
        help="write the latest flight-recorder incident bundle as JSON",
    )
    args = parser.parse_args()

    specs = [s for s in social_network_services() if s.name == SERVICE]

    # 1. Fault-free calibration run pins the latency SLO for the alerts
    #    and the admission controller (5x the clean fleet mean).
    clean = run_cluster(
        specs,
        ClusterConfig(
            architecture="accelflow",
            machines=2,
            requests_per_service=min(args.requests, 150),
            seed=args.seed,
            arrival_mode="poisson",
            rate_rps=RATE_RPS,
        ),
    )
    slo_ns = 5.0 * clean.mean_ns()
    print(f"Calibrated SLO: {slo_ns / 1000.0:,.1f} us "
          f"(5x clean mean over {clean.completed} requests)")

    # 2. The chaos run: machine 1 dies a third of the way in, with the
    #    telemetry plane watching.
    obs = ObsConfig(
        trace=True,
        metrics=True,
        telemetry=True,
        flight_recorder=True,
        # Windows scaled to the run: ~0.7 ms of arrivals at this rate.
        slo=SLOMonitorConfig(
            targets=(SLOTarget(SERVICE, availability=0.999, latency_ns=slo_ns),),
            fast_window_ns=1e5,
            slow_window_ns=5e5,
            burn_threshold=10.0,
            min_events=6,
        ),
    )
    fail_at_ns = 0.35 * args.requests / RATE_RPS * 1e9
    config = ClusterConfig(
        architecture="accelflow",
        machines=2,
        requests_per_service=args.requests,
        seed=args.seed,
        arrival_mode="poisson",
        rate_rps=RATE_RPS,
        failures=(MachineFailure(at_ns=fail_at_ns, machine=1),),
        admission=AdmissionConfig(slo_ns=slo_ns),
        obs=obs,
    )

    # The dashboard must subscribe before the run starts; hook the
    # session the cluster creates during construction.
    original_make_session = obs.make_session
    dashboards = []

    def make_session(env):
        session = original_make_session(env)
        dashboards.append(Dashboard(session.bus, slo=obs.slo))
        return session

    obs.make_session = make_session
    result = run_cluster(specs, config)
    session = obs.sessions[-1]
    session.slo_monitor.sweep(result.elapsed_ns)
    dashboard = dashboards[-1]

    print()
    print(dashboard.snapshot())
    print()
    print(f"Fleet outcome: {result.completed} completed, {result.shed} shed, "
          f"{result.rerouted} rerouted, {result.lost} lost, "
          f"{result.machines_failed} machine(s) failed")

    monitor = session.slo_monitor
    recorder = session.recorder
    fired = monitor.fired_ever()
    print(f"Alerts fired: {len(fired)}  "
          f"(resolved {len(monitor.history)}, still firing {len(monitor.firing())})")
    print(f"Incidents captured: {len(recorder.incidents)} "
          f"(triggers {recorder.triggered}, suppressed {recorder.suppressed})")
    if recorder.correlation:
        print()
        print(recorder.correlation_table())
    if args.bundle_out:
        if recorder.incidents:
            recorder.write(args.bundle_out)
            print(f"\nWrote incident bundle to {args.bundle_out}")
        else:
            print("\nNo incidents captured; no bundle written")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Talk to the simulated fleet like a service: the serving façade.

Batch experiments fold a whole run and report afterwards; this example
drives the *same* cluster interactively instead:

1. Build a 2-machine AccelFlow fleet with the telemetry plane on and
   wrap it in a :class:`repro.serve.ServiceFacade`.
2. ``await facade.submit(...)`` a few requests and inspect each
   :class:`repro.serve.Response` — latency, shed/degraded flags.
3. Overload the front door so admission control starts shedding, and
   watch the outcomes change.
4. Fold everything into the standard scorecard.

Run: ``python examples/live_service.py``. By default the clock is
unpaced (``dilation=inf``), so the example is deterministic; pass
``--dilation 0.01`` to watch it run at 1/100th wall speed. For
open-loop wall-clock load with the live dashboard, see
``python -m repro.serve.soak``.
"""

import argparse
import asyncio

from repro.cluster import AdmissionConfig, ClusterConfig
from repro.obs import ObsConfig
from repro.serve import ServiceFacade, SimClock, build_scorecard
from repro.workloads import social_network_services


async def main(dilation: float) -> None:
    services = [
        s for s in social_network_services() if s.name in ("UniqId", "CPost")
    ]
    config = ClusterConfig(
        machines=2,
        seed=7,
        admission=AdmissionConfig(slo_ns=2e6, mode="shed", min_samples=10),
        obs=ObsConfig(telemetry=True),
    )
    facade = ServiceFacade.build(services, config)
    facade.clock = SimClock(facade.env, dilation=dilation)

    print("One request at a time:")
    for _ in range(3):
        response = await facade.submit("UniqId")
        print(
            f"  {response.service}: {response.status}, "
            f"{response.latency_ns / 1e3:.1f} us"
        )

    print("\nNow three bursts of 150 concurrent CPost requests each;")
    print("after the first, admission control has seen the overload:")
    for wave in range(3):
        futures = [facade.submit_nowait("CPost") for _ in range(150)]
        await facade.drain(drain_ns=1e9)
        responses = [f.result() for f in futures]
        shed = sum(1 for r in responses if r.status == "shed")
        print(
            f"  wave {wave + 1}: {len(responses) - shed} served, "
            f"{shed} shed at the front door"
        )

    scorecard = build_scorecard(facade.responses, elapsed_ns=facade.env.now)
    print()
    print(scorecard["table"])


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dilation",
        type=float,
        default=float("inf"),
        help="sim seconds per wall second (inf = unpaced, deterministic)",
    )
    args = parser.parse_args()
    asyncio.run(main(args.dilation))

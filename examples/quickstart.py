#!/usr/bin/env python3
"""Quickstart: build a trace, run it through a simulated AccelFlow server.

This walks the paper's programming model end to end:

1. Construct the Figure 4a trace with the ``seq``/``branch``/``trans``
   API (Listing 1).
2. Inspect it: resolution against payload fields, 4-bit wire encoding.
3. Stand up a simulated 36-core server with the nine-accelerator
   ensemble and execute a request through the trace-driven AccelFlow
   orchestrator.

Run: ``python examples/quickstart.py``; add ``--trace-out trace.json``
to record the simulated request as a Chrome/Perfetto trace and print
its ASCII timeline (see ``examples/trace_export.py`` for more).
"""

import argparse

from repro.core import branch, decode_trace, encode_trace, seq, trans
from repro.obs import ObsConfig, render_timeline, write_chrome_trace
from repro.server import SimulatedServer
from repro.workloads import social_network_services


def build_figure_4a_trace():
    """Listing 1: the trace executed when a function request arrives."""
    return seq(
        "TCP",
        "Decr",
        "RPC",
        "Dser",
        branch(
            "compressed",
            on_true=[trans("json", "string"), "Dcmp"],
            on_false=[],
        ),
        "LdB",
        name="func_req",
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON of the simulated request",
    )
    args = parser.parse_args()
    trace = build_figure_4a_trace()
    print(f"Built trace {trace.name!r} with {len(trace.nodes)} nodes")
    print(f"Branch conditions: {sorted(trace.conditions())}")

    # Resolution: the branch outcome selects the accelerator sequence.
    for compressed in (False, True):
        path = trace.resolve({"compressed": compressed})
        chain = " -> ".join(k.value for k in path.kinds())
        print(f"  compressed={compressed}: {chain}")

    # The 4-bit hardware encoding (8-byte accelerator budget).
    wire = encode_trace(trace)
    print(f"Wire encoding ({len(wire)} bytes): {wire.hex()}")
    decoded = decode_trace(wire)
    assert decoded.resolve({}).kinds() == trace.resolve({}).kinds()
    print("Round trip: OK")

    # Execute a real service request on a simulated AccelFlow server.
    print("\nSimulating one UniqId request on an AccelFlow server...")
    obs = ObsConfig(trace=True) if args.trace_out else None
    server = SimulatedServer("accelflow", seed=7, obs=obs)
    spec = [s for s in social_network_services() if s.name == "UniqId"][0]
    request = server.make_request(spec)
    done = server.submit(request)
    server.env.run(until=done)

    print(f"  end-to-end latency : {request.latency_ns / 1000:.1f} us")
    print(f"  accelerator ops    : {request.accelerator_ops}")
    for bucket, value in sorted(request.components.items()):
        if value > 0:
            print(f"  {bucket:<14s}     : {value / 1000:8.2f} us")
    glue = server.orchestrator.glue
    print(f"  dispatcher ops     : {glue.operations} "
          f"(avg {glue.average_instructions():.1f} RISC instructions each)")

    if args.trace_out:
        write_chrome_trace(server.tracer, args.trace_out)
        print(f"\nWrote {len(server.tracer)} spans to {args.trace_out} "
              "(open in chrome://tracing or ui.perfetto.dev)")
        print(render_timeline(server.tracer, width=72))


if __name__ == "__main__":
    main()

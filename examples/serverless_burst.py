#!/usr/bin/env python3
"""Serverless functions under bursty Azure-like invocations (Fig 16).

Colocates the eight FunctionBench-style functions on one server and
drives them with the spiky MMPP arrival model, comparing Non-acc,
RELIEF and AccelFlow. Also prints the multi-tenant view: each function
as its own tenant, sharing the accelerator ensemble under the
per-tenant trace limit (Section IV-D).

Run: ``python examples/serverless_burst.py``
"""

import dataclasses

from repro.server import RunConfig, run_experiment
from repro.workloads import serverless_functions


def main():
    functions = serverless_functions()
    # Multi-tenant: each function is a separate tenant of the ensemble.
    functions = [
        dataclasses.replace(spec, tenant=index)
        for index, spec in enumerate(functions)
    ]

    results = {}
    for arch in ("non-acc", "relief", "accelflow"):
        config = RunConfig(
            architecture=arch,
            requests_per_service=200,
            arrival_mode="azure",
            colocated=True,
        )
        results[arch] = run_experiment(functions, config)

    print(f"{'Function':<10s}{'Non-acc':>12s}{'RELIEF':>12s}{'AccelFlow':>12s}"
          "   (P99, us)")
    for spec in functions:
        print(
            f"{spec.name:<10s}"
            f"{results['non-acc'].p99_ns(spec.name) / 1000:12.1f}"
            f"{results['relief'].p99_ns(spec.name) / 1000:12.1f}"
            f"{results['accelflow'].p99_ns(spec.name) / 1000:12.1f}"
        )
    relief = results["relief"].mean_p99_ns()
    accelflow = results["accelflow"].mean_p99_ns()
    print(f"\nAccelFlow P99 reduction over RELIEF: "
          f"{100 * (1 - accelflow / relief):.1f}% (paper: 37%)")

    tenants = results["accelflow"].orchestrator_stats["tenants"]
    print(f"\nMulti-tenancy: {int(tenants['started'])} traces started across "
          f"{len(functions)} tenants, {int(tenants['throttled'])} throttle "
          f"events at the per-tenant limit of {int(tenants['limit'])}")
    hardware = results["accelflow"].hardware_stats
    wipes = sum(
        int(stats["tenant_wipes"])
        for stats in hardware["accelerators"].values()
    )
    print(f"Scratchpad wipes between tenants: {wipes}")


if __name__ == "__main__":
    main()

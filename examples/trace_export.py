#!/usr/bin/env python3
"""Observability demo: trace a loaded run, export it, read the metrics.

Runs a seeded open-loop experiment on a colocated AccelFlow server with
the full observability stack on:

1. span tracing (sampled request lifecycles: queue waits, PE execution,
   output-dispatcher work, DTE transforms, ATM reads, DMA hops,
   notifications),
2. the periodic metrics sampler (queue depths, utilizations, in-flight
   requests, achieved RPS),
3. sim-kernel profiling (events processed, per-process wall time).

It writes a Chrome trace-event JSON (open it in ``chrome://tracing`` or
https://ui.perfetto.dev), prints an ASCII timeline of one request, the
metric sparklines, and the kernel profile.

Run: ``python examples/trace_export.py [--out trace.json]``
"""

import argparse

from repro.analysis.report import metrics_section
from repro.obs import ObsConfig, format_profile, render_timeline, write_chrome_trace
from repro.server import RunConfig, run_experiment
from repro.workloads import social_network_services


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="accelflow_trace.json",
                        help="Chrome trace-event JSON output path")
    parser.add_argument("--requests", type=int, default=60,
                        help="requests per service")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--sample-rate", type=float, default=0.5,
                        help="fraction of requests traced per service")
    args = parser.parse_args()

    services = [
        s for s in social_network_services() if s.name in ("UniqId", "CUrls")
    ]
    obs = ObsConfig(
        trace=True,
        sample_rate=args.sample_rate,
        metrics=True,
        metrics_interval_ns=2e5,  # 0.2 ms ticks: fine-grained ramp view
        profile_kernel=True,
    )
    config = RunConfig(
        architecture="accelflow",
        requests_per_service=args.requests,
        seed=args.seed,
        colocated=True,  # one server -> one consolidated trace
        obs=obs,
    )
    print(f"Running {len(services)} services x {args.requests} requests "
          f"on a colocated AccelFlow server (seed={args.seed})...")
    result = run_experiment(services, config)
    for name in sorted(result.services):
        service = result.services[name]
        print(f"  {name:<10s} p99 {service.p99_ns() / 1000:8.1f} us "
              f"({service.completed} completed)")

    tracer = obs.tracer
    path = write_chrome_trace(tracer, args.out)
    print(f"\nWrote {len(tracer)} spans ({tracer.dropped} dropped) to {path}")
    print("Open it in chrome://tracing or https://ui.perfetto.dev\n")

    print("=== Timeline of the first traced request ===")
    print(render_timeline(tracer, width=76, req=0))

    print()
    print(metrics_section(obs.registry, title="Time-series metrics"))

    print("\n=== Sim-kernel profile ===")
    print(format_profile(obs.sessions[-1].env))


if __name__ == "__main__":
    main()

"""AccelFlow reproduction: orchestrating an on-package ensemble of
fine-grained accelerators for microservices (HPCA 2026).

Public API layers:

* :mod:`repro.sim` — discrete-event simulation kernel.
* :mod:`repro.hw` — hardware models (accelerators, NoC, DMA, CPU, ...).
* :mod:`repro.core` — the trace abstraction (the paper's contribution).
* :mod:`repro.workloads` — service models, costs, arrival processes.
* :mod:`repro.orchestration` — the five architectures + ablations.
* :mod:`repro.server` — server assembly, driver, metrics.
* :mod:`repro.experiments` — per-figure/table reproduction harness.

Quick start::

    from repro.core import seq, branch, trans
    from repro.server import SimulatedServer
    from repro.workloads import social_network_services

    trace = seq("TCP", "Decr", "RPC", "Dser",
                branch("compressed", [trans("json", "string"), "Dcmp"]),
                "LdB", name="func_req")

    server = SimulatedServer("accelflow")
    spec = social_network_services()[0]
    request = server.make_request(spec)
    server.env.run(until=server.submit(request))
    print(request.latency_ns)
"""

from .core import Trace, TraceRegistry, branch, notify, parallel, seq, trans
from .hw import AcceleratorKind, MachineParams
from .orchestration import ARCHITECTURES, make_orchestrator
from .server import (
    RunConfig,
    SimulatedServer,
    max_throughput_search,
    run_experiment,
    run_unloaded,
)
from .workloads import ServiceSpec, social_network_services

__version__ = "1.0.0"

__all__ = [
    "ARCHITECTURES",
    "AcceleratorKind",
    "MachineParams",
    "RunConfig",
    "ServiceSpec",
    "SimulatedServer",
    "Trace",
    "TraceRegistry",
    "branch",
    "make_orchestrator",
    "max_throughput_search",
    "notify",
    "parallel",
    "run_experiment",
    "run_unloaded",
    "seq",
    "social_network_services",
    "trans",
    "__version__",
]

"""Result presentation: ASCII charts and the paper-vs-measured report."""

from .ascii_chart import bar_chart, series_chart
from .compare import Candidate, ComparisonResult, compare_configs
from .report import generate_report

__all__ = [
    "Candidate",
    "ComparisonResult",
    "bar_chart",
    "compare_configs",
    "generate_report",
    "series_chart",
]

"""Terminal-friendly charts for experiment output.

The paper's figures are bar charts and line series; these helpers
render the same data as fixed-width text so every experiment can show
its "figure" directly in a terminal or a log file.
"""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence

__all__ = ["bar_chart", "series_chart", "sparkline"]

_BAR = "#"
#: Sparkline intensity ramp, lowest to highest (pure ASCII).
_SPARK_LEVELS = " .:-=+*#%@"


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal bar chart, one labelled bar per entry."""
    if not values:
        return title
    peak = max(values.values())
    label_width = max(len(str(label)) for label in values)
    lines: List[str] = [title] if title else []
    for label, value in values.items():
        bar_len = 0 if peak <= 0 else int(round(width * value / peak))
        lines.append(
            f"{str(label).ljust(label_width)} |{_BAR * bar_len:<{width}}| "
            f"{value:,.1f}{unit}"
        )
    return "\n".join(lines)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line intensity plot of a series (used for obs time series).

    Values are min-max normalized onto an ASCII ramp. Longer series are
    downsampled to ``width`` columns by bucket-averaging; shorter ones
    use one column per sample. Non-finite values degrade gracefully:
    NaN renders as a blank column, ±inf clamp to the ramp ends, and
    normalization ignores them entirely (so one bad sample can no
    longer blank out or crash the whole row).
    """
    if width <= 0:
        raise ValueError("width must be positive")
    points = [float(v) for v in values]
    if not points:
        return ""
    if len(points) > width:
        bucketed: List[float] = []
        for col in range(width):
            lo = col * len(points) // width
            hi = max((col + 1) * len(points) // width, lo + 1)
            chunk = [v for v in points[lo:hi] if not math.isnan(v)]
            bucketed.append(sum(chunk) / len(chunk) if chunk else math.nan)
        points = bucketed
    finite = [v for v in points if math.isfinite(v)]
    top = len(_SPARK_LEVELS) - 1
    if not finite:
        # Nothing to normalize against: NaN columns stay blank, and
        # infinities clamp to the ramp ends.
        return "".join(
            " " if math.isnan(v) else (_SPARK_LEVELS[top] if v > 0 else _SPARK_LEVELS[0])
            for v in points
        )
    low, high = min(finite), max(finite)
    span = high - low

    def glyph(v: float) -> str:
        if math.isnan(v):
            return " "
        if math.isinf(v):
            return _SPARK_LEVELS[top] if v > 0 else _SPARK_LEVELS[0]
        if span <= 0:
            # Flat series: mid-ramp if nonzero, blank if all-zero.
            return _SPARK_LEVELS[0 if high == 0 else top // 2]
        return _SPARK_LEVELS[int(round((v - low) / span * top))]

    return "".join(glyph(v) for v in points)


def series_chart(
    series: Mapping[str, Sequence[float]],
    x_labels: Sequence[str],
    title: str = "",
    height: int = 12,
    unit: str = "",
) -> str:
    """Plot one or more series as aligned columns of markers.

    Each series gets a distinct marker; rows run from the maximum value
    down to zero. Crude, but it shows crossovers and growth shapes.
    """
    if not series:
        return title
    markers = "ox+*@%&="
    names = list(series)
    length = len(x_labels)
    for name in names:
        if len(series[name]) != length:
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {length}"
            )
    peak = max(max(points) for points in series.values())
    if peak <= 0:
        peak = 1.0
    col_width = max(max(len(x) for x in x_labels) + 2, 6)
    grid: List[List[str]] = [
        [" " for _ in range(length)] for _ in range(height)
    ]
    for index, name in enumerate(names):
        marker = markers[index % len(markers)]
        for col, value in enumerate(series[name]):
            row = height - 1 - int(round((height - 1) * value / peak))
            if grid[row][col] == " ":
                grid[row][col] = marker
            else:
                grid[row][col] = "!"  # collision
    lines: List[str] = [title] if title else []
    for row_index, row in enumerate(grid):
        level = peak * (height - 1 - row_index) / (height - 1)
        cells = "".join(cell.center(col_width) for cell in row)
        lines.append(f"{level:10,.0f}{unit} |{cells}")
    lines.append(" " * 12 + "+" + "-" * (col_width * length))
    lines.append(" " * 13 + "".join(x.center(col_width) for x in x_labels))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(names)
    )
    lines.append(f"{'':13}{legend}")
    return "\n".join(lines)

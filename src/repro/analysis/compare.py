"""A/B comparison of server configurations.

The library's sensitivity studies all follow one pattern — run the same
workload under two (or more) configurations, compare latency and
throughput. :func:`compare_configs` packages that pattern for
downstream users exploring their own design points (PE counts, chiplet
layouts, queue policies, orchestrators, speedup scaling, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..server import RunConfig, run_experiment
from ..server.metrics import ExperimentResult
from ..workloads.spec import ServiceSpec
from .ascii_chart import bar_chart

__all__ = ["Candidate", "ComparisonResult", "compare_configs"]


@dataclass(frozen=True)
class Candidate:
    """One named configuration under comparison."""

    name: str
    config: RunConfig


@dataclass
class ComparisonResult:
    """Outcome of an A/B (or A/B/C/...) comparison."""

    candidates: List[str]
    results: Dict[str, ExperimentResult]
    baseline: str

    def p99_ns(self, candidate: str) -> float:
        return self.results[candidate].mean_p99_ns()

    def mean_ns(self, candidate: str) -> float:
        return self.results[candidate].mean_latency_ns()

    def p99_speedup(self, candidate: str) -> float:
        """Baseline P99 / candidate P99 (>1 means candidate is better).

        A zero candidate P99 (every request completed in literally zero
        time — degenerate configs with free orchestration and no queue
        can produce this) yields ``inf`` rather than raising; 0/0 yields
        ``nan``. :meth:`table` renders both as explicit markers.
        """
        baseline = self.p99_ns(self.baseline)
        candidate_p99 = self.p99_ns(candidate)
        if candidate_p99 == 0.0:
            return float("nan") if baseline == 0.0 else float("inf")
        return baseline / candidate_p99

    def winner(self) -> str:
        """Candidate with the lowest mean P99."""
        return min(self.candidates, key=self.p99_ns)

    def table(self) -> str:
        header = f"{'Candidate':<20s}{'mean (us)':>12s}{'P99 (us)':>12s}{'vs ' + self.baseline:>14s}"
        lines = [header, "-" * len(header)]
        for name in self.candidates:
            speedup = self.p99_speedup(name)
            if speedup != speedup:  # nan: both P99s are zero
                cell = f"{'n/a':>14s}"
            elif speedup == float("inf"):
                cell = f"{'inf':>13s}x"
            else:
                cell = f"{speedup:>13.2f}x"
            lines.append(
                f"{name:<20s}{self.mean_ns(name) / 1000:>12.1f}"
                f"{self.p99_ns(name) / 1000:>12.1f}{cell}"
            )
        chart = bar_chart(
            {name: self.p99_ns(name) / 1000 for name in self.candidates},
            title="mean P99 (us)",
            unit=" us",
        )
        return "\n".join(lines) + "\n\n" + chart


def compare_configs(
    services: Sequence[ServiceSpec],
    candidates: Sequence[Candidate],
    baseline: Optional[str] = None,
) -> ComparisonResult:
    """Run ``services`` under each candidate configuration and compare.

    ``baseline`` names the candidate speedups are computed against
    (defaults to the first one).
    """
    if not candidates:
        raise ValueError("need at least one candidate")
    names = [c.name for c in candidates]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate candidate names: {names}")
    baseline = baseline or names[0]
    if baseline not in names:
        raise ValueError(f"baseline {baseline!r} is not a candidate")
    results = {
        candidate.name: run_experiment(list(services), candidate.config)
        for candidate in candidates
    }
    return ComparisonResult(candidates=names, results=results, baseline=baseline)

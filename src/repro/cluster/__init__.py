"""Fleet-scale simulation: many servers behind a load balancer.

The paper evaluates AccelFlow on one 36-core server; this package
models the datacenter context that motivates it — a fleet of such
servers sharing one event calendar, fronted by pluggable balancing
policies (including an accelerator-occupancy-aware one in the spirit of
the paper's LdB-backed dispatchers), a reactive autoscaler driven by
the MMPP load signal, SLO-aware admission control, and machine-failure
injection with rerouting. See ``docs/tutorial.md`` ("Cluster
simulation") and the ``fig_cluster`` experiment.
"""

from .admission import (
    PROPORTIONAL,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
)
from .autoscaler import Autoscaler, AutoscalerConfig
from .balancer import (
    BALANCER_POLICIES,
    POLICY_ORDER,
    AcceleratorAwareBalancer,
    LeastOutstandingBalancer,
    LoadBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from .cluster import MachineFailure, RequestStatus, SimulatedCluster
from .driver import ClusterConfig, ClusterResult, fold_cluster_result, run_cluster
from .fluid import FLUID_TOLERANCES, FluidConfig, FluidTier
from .health import HealthConfig, HealthMonitor, HealthState, MachineHealth
from .machine import ClusterMachine, MachineState

__all__ = [
    "PROPORTIONAL",
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "Autoscaler",
    "AutoscalerConfig",
    "BALANCER_POLICIES",
    "POLICY_ORDER",
    "AcceleratorAwareBalancer",
    "ClusterConfig",
    "ClusterMachine",
    "ClusterResult",
    "FLUID_TOLERANCES",
    "FluidConfig",
    "FluidTier",
    "HealthConfig",
    "HealthMonitor",
    "HealthState",
    "MachineHealth",
    "LeastOutstandingBalancer",
    "LoadBalancer",
    "MachineFailure",
    "MachineState",
    "PowerOfTwoBalancer",
    "RequestStatus",
    "RoundRobinBalancer",
    "SimulatedCluster",
    "fold_cluster_result",
    "make_balancer",
    "run_cluster",
]

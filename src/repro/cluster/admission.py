"""SLO-aware admission control at the cluster front door.

The controller keeps a sliding window of recently observed end-to-end
latencies and predicts the cluster's P99 from it. While the prediction
exceeds the SLO target the cluster is in *overload* and each arriving
request is either shed (rejected immediately, protecting the latency of
admitted traffic) or degraded (served with a truncated payload — the
brown-out pattern: a lighter response instead of no response).

The prediction is intentionally simple — the empirical P99 of the last
``window`` completions — which is exactly what production shed loops do
(measure, compare against the objective, gate). It reacts within one
window of an MMPP burst and recovers as soon as the tail drains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import percentile
from ..workloads.request import Request

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "PROPORTIONAL",
]


class AdmissionDecision:
    """What to do with an arriving request."""

    ADMIT = "admit"
    SHED = "shed"
    DEGRADE = "degrade"


#: Third admission mode: instead of shedding *every* arrival while the
#: prediction breaches (a bang-bang gate that oscillates around the
#: SLO), shed a *fraction* that ratchets up under sustained breach and
#: decays once the breach clears. The fraction is applied with a
#: deterministic error-diffusion accumulator — no RNG, so enabling the
#: mode never perturbs a model stream.
PROPORTIONAL = "proportional"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control parameters."""

    #: The P99 objective; predictions above it trigger the action.
    slo_ns: float
    #: ``"shed"`` rejects, ``"degrade"`` truncates the payload.
    mode: str = AdmissionDecision.SHED
    #: Number of recent completions the prediction looks at.
    window: int = 256
    #: Predictions need at least this many samples (cold start admits).
    min_samples: int = 20
    #: Payload multiplier in degrade mode.
    degrade_factor: float = 0.5
    #: Degraded payloads never shrink below this wire size.
    degrade_floor_bytes: int = 64
    #: Proportional mode: consecutive same-direction decisions before
    #: the shed fraction steps up (breach) or down (recovery).
    sustain_decisions: int = 32
    #: Proportional mode: shed-fraction step size per sustained window.
    shed_step: float = 0.1
    #: Proportional mode: the shed fraction never exceeds this (some
    #: traffic always flows, so the P99 window keeps refreshing).
    max_shed_fraction: float = 0.9

    def __post_init__(self):
        if self.slo_ns <= 0:
            raise ValueError(f"slo_ns must be positive, got {self.slo_ns}")
        modes = (AdmissionDecision.SHED, AdmissionDecision.DEGRADE, PROPORTIONAL)
        if self.mode not in modes:
            raise ValueError(f"unknown admission mode {self.mode!r}")
        if self.window <= 0 or self.min_samples <= 0:
            raise ValueError("window and min_samples must be positive")
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError("degrade_factor must be in (0, 1]")
        if self.sustain_decisions < 1:
            raise ValueError("sustain_decisions must be >= 1")
        if not 0.0 < self.shed_step <= 1.0:
            raise ValueError("shed_step must be in (0, 1]")
        if not 0.0 <= self.max_shed_fraction <= 1.0:
            raise ValueError("max_shed_fraction must be in [0, 1]")


class AdmissionController:
    """Gates arrivals on the predicted P99 versus the SLO target."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._window: deque = deque(maxlen=config.window)
        self.admitted = 0
        self.shed = 0
        self.degraded = 0
        # Proportional-mode state: the current shed fraction, the
        # same-direction decision streaks that ratchet it, and the
        # error-diffusion accumulator that applies it deterministically.
        self.shed_fraction = 0.0
        self._breach_streak = 0
        self._healthy_streak = 0
        self._shed_accumulator = 0.0

    # -- prediction --------------------------------------------------------
    def predicted_p99_ns(self) -> Optional[float]:
        """Empirical P99 of the recent window (None while cold)."""
        if len(self._window) < self.config.min_samples:
            return None
        return percentile(sorted(self._window), 99.0)

    @property
    def overloaded(self) -> bool:
        predicted = self.predicted_p99_ns()
        return predicted is not None and predicted > self.config.slo_ns

    # -- the gate ----------------------------------------------------------
    def decide(self, request: Request) -> str:
        """Admit, shed or degrade one arriving request (and count it)."""
        if self.config.mode == PROPORTIONAL:
            return self._decide_proportional()
        if not self.overloaded:
            self.admitted += 1
            return AdmissionDecision.ADMIT
        if self.config.mode == AdmissionDecision.SHED:
            self.shed += 1
            return AdmissionDecision.SHED
        self.degraded += 1
        self.apply_degrade(request)
        return AdmissionDecision.DEGRADE

    def _decide_proportional(self) -> str:
        """Shed a ratcheting fraction of arrivals under sustained breach.

        Each overloaded decision extends the breach streak; a full
        streak steps the shed fraction up by ``shed_step`` (capped).
        Healthy decisions symmetrically decay it back toward zero, so
        the controller sheds *proportionally to how long* the breach
        has persisted rather than flapping between 0% and 100%. The
        fraction is applied via error diffusion: the accumulator gains
        ``shed_fraction`` per arrival and sheds on each whole unit —
        exact long-run proportions, no RNG, fully deterministic.
        """
        config = self.config
        if self.overloaded:
            self._healthy_streak = 0
            self._breach_streak += 1
            if self._breach_streak >= config.sustain_decisions:
                self._breach_streak = 0
                self.shed_fraction = min(
                    config.max_shed_fraction,
                    self.shed_fraction + config.shed_step,
                )
        else:
            self._breach_streak = 0
            if self.shed_fraction > 0.0:
                self._healthy_streak += 1
                if self._healthy_streak >= config.sustain_decisions:
                    self._healthy_streak = 0
                    self.shed_fraction = max(
                        0.0, self.shed_fraction - config.shed_step
                    )
        if self.shed_fraction > 0.0:
            self._shed_accumulator += self.shed_fraction
            if self._shed_accumulator >= 1.0:
                self._shed_accumulator -= 1.0
                self.shed += 1
                return AdmissionDecision.SHED
        self.admitted += 1
        return AdmissionDecision.ADMIT

    def apply_degrade(self, request: Request) -> None:
        """Serve a lighter response: truncate the request payload."""
        request.wire_size = max(
            self.config.degrade_floor_bytes,
            int(request.wire_size * self.config.degrade_factor),
        )

    def observe(self, latency_ns: float) -> None:
        """Feed one completed request's latency into the window."""
        self._window.append(latency_ns)

    # -- reporting ---------------------------------------------------------
    @property
    def shed_rate(self) -> float:
        total = self.admitted + self.shed + self.degraded
        return self.shed / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        predicted = self.predicted_p99_ns()
        return {
            "slo_ns": self.config.slo_ns,
            "mode": self.config.mode,
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "degraded": float(self.degraded),
            "shed_rate": self.shed_rate,
            "predicted_p99_ns": predicted if predicted is not None else 0.0,
            "shed_fraction": self.shed_fraction,
        }

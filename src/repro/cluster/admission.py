"""SLO-aware admission control at the cluster front door.

The controller keeps a sliding window of recently observed end-to-end
latencies and predicts the cluster's P99 from it. While the prediction
exceeds the SLO target the cluster is in *overload* and each arriving
request is either shed (rejected immediately, protecting the latency of
admitted traffic) or degraded (served with a truncated payload — the
brown-out pattern: a lighter response instead of no response).

The prediction is intentionally simple — the empirical P99 of the last
``window`` completions — which is exactly what production shed loops do
(measure, compare against the objective, gate). It reacts within one
window of an MMPP burst and recovers as soon as the tail drains.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Optional

from ..sim import percentile
from ..workloads.request import Request

__all__ = ["AdmissionConfig", "AdmissionController", "AdmissionDecision"]


class AdmissionDecision:
    """What to do with an arriving request."""

    ADMIT = "admit"
    SHED = "shed"
    DEGRADE = "degrade"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission-control parameters."""

    #: The P99 objective; predictions above it trigger the action.
    slo_ns: float
    #: ``"shed"`` rejects, ``"degrade"`` truncates the payload.
    mode: str = AdmissionDecision.SHED
    #: Number of recent completions the prediction looks at.
    window: int = 256
    #: Predictions need at least this many samples (cold start admits).
    min_samples: int = 20
    #: Payload multiplier in degrade mode.
    degrade_factor: float = 0.5
    #: Degraded payloads never shrink below this wire size.
    degrade_floor_bytes: int = 64

    def __post_init__(self):
        if self.slo_ns <= 0:
            raise ValueError(f"slo_ns must be positive, got {self.slo_ns}")
        if self.mode not in (AdmissionDecision.SHED, AdmissionDecision.DEGRADE):
            raise ValueError(f"unknown admission mode {self.mode!r}")
        if self.window <= 0 or self.min_samples <= 0:
            raise ValueError("window and min_samples must be positive")
        if not 0.0 < self.degrade_factor <= 1.0:
            raise ValueError("degrade_factor must be in (0, 1]")


class AdmissionController:
    """Gates arrivals on the predicted P99 versus the SLO target."""

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._window: deque = deque(maxlen=config.window)
        self.admitted = 0
        self.shed = 0
        self.degraded = 0

    # -- prediction --------------------------------------------------------
    def predicted_p99_ns(self) -> Optional[float]:
        """Empirical P99 of the recent window (None while cold)."""
        if len(self._window) < self.config.min_samples:
            return None
        return percentile(sorted(self._window), 99.0)

    @property
    def overloaded(self) -> bool:
        predicted = self.predicted_p99_ns()
        return predicted is not None and predicted > self.config.slo_ns

    # -- the gate ----------------------------------------------------------
    def decide(self, request: Request) -> str:
        """Admit, shed or degrade one arriving request (and count it)."""
        if not self.overloaded:
            self.admitted += 1
            return AdmissionDecision.ADMIT
        if self.config.mode == AdmissionDecision.SHED:
            self.shed += 1
            return AdmissionDecision.SHED
        self.degraded += 1
        self.apply_degrade(request)
        return AdmissionDecision.DEGRADE

    def apply_degrade(self, request: Request) -> None:
        """Serve a lighter response: truncate the request payload."""
        request.wire_size = max(
            self.config.degrade_floor_bytes,
            int(request.wire_size * self.config.degrade_factor),
        )

    def observe(self, latency_ns: float) -> None:
        """Feed one completed request's latency into the window."""
        self._window.append(latency_ns)

    # -- reporting ---------------------------------------------------------
    @property
    def shed_rate(self) -> float:
        total = self.admitted + self.shed + self.degraded
        return self.shed / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        predicted = self.predicted_p99_ns()
        return {
            "slo_ns": self.config.slo_ns,
            "mode": self.config.mode,
            "admitted": float(self.admitted),
            "shed": float(self.shed),
            "degraded": float(self.degraded),
            "shed_rate": self.shed_rate,
            "predicted_p99_ns": predicted if predicted is not None else 0.0,
        }

"""Reactive autoscaling from the observed (MMPP) load signal.

A control-loop process samples the cluster's arrival counter every
``interval_ns`` of simulated time, converts it to an observed RPS, and
targets ``ceil(rps / target_rps_per_machine)`` machines:

* scale **up** immediately — but new machines spend ``warmup_ns``
  warming (cold start) before the balancer may route to them, so a
  burst still hits the old fleet for one warm-up latency;
* scale **down** conservatively — one machine per tick, only after the
  demand has been below target for ``down_ticks`` consecutive
  intervals (hysteresis against MMPP regime flapping), by *draining*:
  the machine stops receiving new work and finishes what it has.

Every decision is recorded for the experiment reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["AutoscalerConfig", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalerConfig:
    """Autoscaler parameters."""

    #: Demand one machine is expected to absorb.
    target_rps_per_machine: float
    #: Control-loop sampling period (sim ns).
    interval_ns: float = 20e6
    min_machines: int = 1
    max_machines: int = 12
    #: Cold-start latency before a new machine becomes routable.
    warmup_ns: float = 50e6
    #: Consecutive low-demand ticks required before draining one machine.
    down_ticks: int = 2

    def __post_init__(self):
        if self.target_rps_per_machine <= 0:
            raise ValueError("target_rps_per_machine must be positive")
        if self.interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        if not 1 <= self.min_machines <= self.max_machines:
            raise ValueError("need 1 <= min_machines <= max_machines")
        if self.down_ticks < 1:
            raise ValueError("down_ticks must be >= 1")


class Autoscaler:
    """Grows and shrinks a :class:`~repro.cluster.SimulatedCluster`."""

    def __init__(self, cluster, config: AutoscalerConfig):
        self.cluster = cluster
        self.config = config
        self.scale_ups = 0
        self.scale_downs = 0
        #: (t_ns, observed_rps, active_before, action) per control tick.
        self.decisions: List[Tuple[float, float, int, str]] = []

    def start(self) -> None:
        self.cluster.env.process(self._loop(), name="autoscaler")

    def desired_machines(self, observed_rps: float) -> int:
        raw = math.ceil(observed_rps / self.config.target_rps_per_machine)
        return max(self.config.min_machines, min(self.config.max_machines, raw))

    def _loop(self):
        env = self.cluster.env
        config = self.config
        last_arrivals = self.cluster.total_arrivals
        low_ticks = 0
        while True:
            yield env.timeout(config.interval_ns)
            arrivals = self.cluster.total_arrivals
            observed_rps = (
                (arrivals - last_arrivals) / config.interval_ns * 1e9
            )
            last_arrivals = arrivals
            active = len(self.cluster.active_machines())
            desired = self.desired_machines(observed_rps)
            action = "hold"
            if desired > active:
                low_ticks = 0
                for _ in range(desired - active):
                    self.cluster.add_machine(warmup_ns=config.warmup_ns)
                    self.scale_ups += 1
                action = f"up->{desired}"
            elif desired < active and active > config.min_machines:
                low_ticks += 1
                if low_ticks >= config.down_ticks:
                    low_ticks = 0
                    self.cluster.drain_one()
                    self.scale_downs += 1
                    action = f"down->{active - 1}"
            else:
                low_ticks = 0
            self.decisions.append((env.now, observed_rps, active, action))

    def stats(self) -> Dict[str, object]:
        return {
            "scale_ups": float(self.scale_ups),
            "scale_downs": float(self.scale_downs),
            "ticks": float(len(self.decisions)),
            "target_rps_per_machine": self.config.target_rps_per_machine,
        }

"""Pluggable load-balancing policies for the simulated fleet.

Four policies, from the classic textbook ladder to the paper-flavoured
one:

* ``round-robin`` — rotate through routable machines, blind to state.
* ``least-outstanding`` — join the machine with the fewest in-flight
  requests (JSQ on the dispatch counter).
* ``power-of-two`` — sample two machines uniformly at random and join
  the one whose *probed local pressure* is lower (Mitzenmacher's
  power-of-two-choices at O(1) probe cost, probing the server-reported
  occupancy the way production balancers do rather than a client-side
  outstanding counter, which remote waits wash out).
* ``accel-aware`` — join the machine with the lowest *local* occupancy:
  accelerator input-queue depth (double-weighting the LdB accelerator,
  the signal the paper dedicates to load balancing) plus busy cores.
  Unlike the outstanding counter, this ignores requests parked on
  remote waits, so it tracks capacity actually consumed on-package —
  the fleet-level analogue of AccelFlow's occupancy-driven dispatchers.

Every policy is deterministic given its input stream, so cluster runs
reproduce exactly and shards stay byte-identical under any ``--jobs``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..sim import Stream
from ..workloads.request import Request
from .machine import ClusterMachine

__all__ = [
    "LoadBalancer",
    "RoundRobinBalancer",
    "LeastOutstandingBalancer",
    "PowerOfTwoBalancer",
    "AcceleratorAwareBalancer",
    "BALANCER_POLICIES",
    "POLICY_ORDER",
    "make_balancer",
]


class LoadBalancer:
    """Base policy: pick one machine from the routable set."""

    name = "base"

    def pick(
        self, machines: Sequence[ClusterMachine], request: Request
    ) -> ClusterMachine:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class RoundRobinBalancer(LoadBalancer):
    """Rotate over the routable machines in order."""

    name = "round-robin"

    def __init__(self):
        self._next = 0

    def pick(self, machines, request):
        machine = machines[self._next % len(machines)]
        self._next += 1
        return machine


class LeastOutstandingBalancer(LoadBalancer):
    """Join the shortest queue of in-flight requests (JSQ)."""

    name = "least-outstanding"

    def pick(self, machines, request):
        return min(machines, key=lambda m: (m.outstanding_count, m.index))


class PowerOfTwoBalancer(LoadBalancer):
    """Probe two random machines, join the less pressured one.

    The probe reads each machine's local queue pressure (busy cores +
    accelerator input queues) instead of the outstanding counter: on a
    heterogeneous fleet the outstanding count is dominated by remote
    waits — identical on every machine — and carries almost no signal,
    while the probed pressure tracks capacity actually in use.
    """

    name = "power-of-two"

    def __init__(self, stream: Stream):
        self.stream = stream

    def pick(self, machines, request):
        if len(machines) == 1:
            return machines[0]
        first = machines[self.stream.randint(0, len(machines) - 1)]
        second = machines[self.stream.randint(0, len(machines) - 1)]
        return min(first, second, key=lambda m: (m.queue_pressure(), m.index))


class AcceleratorAwareBalancer(LoadBalancer):
    """Join the machine with the least on-package occupancy.

    Score = accelerator input-queue depth + busy cores + an extra LdB
    term; outstanding count breaks ties so identical idle machines
    still spread work deterministically.
    """

    name = "accel-aware"

    #: Extra weight of the LdB occupancy on top of its share of the
    #: overall queue pressure (it is the freshest dispatch signal).
    ldb_weight = 1.0

    def pick(self, machines, request):
        return min(
            machines,
            key=lambda m: (
                m.queue_pressure() + self.ldb_weight * m.ldb_occupancy(),
                m.outstanding_count,
                m.index,
            ),
        )


#: Policy name -> factory(stream). Only stochastic policies consume the
#: stream; the rest ignore it.
BALANCER_POLICIES: Dict[str, Callable[[Optional[Stream]], LoadBalancer]] = {
    "round-robin": lambda stream: RoundRobinBalancer(),
    "least-outstanding": lambda stream: LeastOutstandingBalancer(),
    "power-of-two": lambda stream: PowerOfTwoBalancer(stream),
    "accel-aware": lambda stream: AcceleratorAwareBalancer(),
}

#: Stable policy ordering for experiment tables.
POLICY_ORDER: List[str] = list(BALANCER_POLICIES)


def make_balancer(name: str, stream: Optional[Stream] = None) -> LoadBalancer:
    """Build the policy called ``name`` (see :data:`BALANCER_POLICIES`)."""
    try:
        factory = BALANCER_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown balancer policy {name!r}; "
            f"known: {', '.join(BALANCER_POLICIES)}"
        ) from None
    if name == "power-of-two" and stream is None:
        raise ValueError("power-of-two needs a random stream")
    return factory(stream)

"""A fleet of simulated servers behind one load-balancing front door.

:class:`SimulatedCluster` owns a single shared
:class:`~repro.sim.Environment` and a growable list of
:class:`~repro.cluster.machine.ClusterMachine` members, each wrapping a
full :class:`~repro.server.SimulatedServer` seeded independently via
:func:`repro.sim.derive_seed`. In front of the fleet sit, in order:

1. **admission control** (optional) — shed or degrade arrivals while
   the predicted P99 exceeds the SLO target;
2. the **balancer policy** — pick a routable machine;
3. the **request lifecycle** — dispatch, and on a machine failure
   reroute the interrupted request to a survivor (bounded retries).

A reactive :class:`~repro.cluster.autoscaler.Autoscaler` may grow and
drain the fleet from the observed load signal, and scheduled
:class:`MachineFailure` events kill machines mid-run. Cluster-level
observability (fleet gauges, control-plane spans) plugs into the same
:class:`~repro.obs.ObsConfig` switchboard as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import MetricsRegistry, SpanTracer
from ..obs.telemetry import AdmissionEvent, FaultInjected, Marker, RequestEnd
from ..server.machine import SimulatedServer
from ..sim import Environment, Interrupt, Process, RandomStreams, derive_seed
from ..workloads.payloads import PayloadModel
from ..workloads.request import Request
from ..workloads.spec import ServiceSpec
from .admission import AdmissionController, AdmissionDecision
from .autoscaler import Autoscaler
from .balancer import make_balancer
from .fluid import FluidTier
from .health import HealthMonitor
from .machine import ClusterMachine, MachineState

__all__ = ["MachineFailure", "SimulatedCluster", "RequestStatus"]


@dataclass(frozen=True)
class MachineFailure:
    """Kill machine ``machine`` (by index) at sim time ``at_ns``."""

    at_ns: float
    machine: int


class RequestStatus:
    """Terminal status of one request's cluster lifecycle."""

    OK = "ok"
    SHED = "shed"
    LOST = "lost"
    #: Absorbed into the fluid tier as queue mass; completion and
    #: latency are accounted analytically (see repro.cluster.fluid).
    FLUID = "fluid"


class SimulatedCluster:
    """Many servers, one event calendar, one front door."""

    def __init__(self, config):
        self.config = config
        # One environment for the whole fleet: machines interleave on a
        # single event calendar, so cross-machine timing is coherent.
        self.env = Environment()
        self.streams = RandomStreams(derive_seed(config.seed, "cluster"))
        self.machines: List[ClusterMachine] = []
        self._machine_counter = 0
        self.balancer = make_balancer(
            config.policy, self.streams.stream("balancer")
        )
        self.admission = (
            AdmissionController(config.admission) if config.admission else None
        )
        self.autoscaler = (
            Autoscaler(self, config.autoscaler) if config.autoscaler else None
        )
        #: The fluid-approximation tier, when configured (its CRN
        #: streams are dedicated, so enabling it never perturbs the
        #: draws of the exact simulation).
        self.fluid = (
            FluidTier(self, config.fluid)
            if getattr(config, "fluid", None) is not None
            else None
        )
        #: Machine health scoring + lame-duck ejection (RNG-free, so
        #: installing it keeps the run CRN-aligned with a bare fleet).
        self.health = (
            HealthMonitor(self, config.health)
            if getattr(config, "health", None) is not None
            else None
        )

        # Front-door request sampling (cluster-level streams, so the
        # request sequence is identical across balancer policies —
        # common random numbers for policy comparisons).
        self._field_stream = self.streams.stream("fields")
        self._payload_models: Dict[str, PayloadModel] = {}

        # Counters.
        self.total_arrivals = 0
        self.completed = 0
        self.shed = 0
        self.degraded = 0
        self.rerouted = 0
        self.lost = 0
        self.machines_failed = 0
        self.peak_machines = 0

        # Cluster-level observability: fleet gauges, control-plane spans,
        # and (when enabled) the streaming telemetry plane.
        self.tracer: Optional[SpanTracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.bus = None
        obs = config.obs
        if obs is not None:
            session = obs.make_session(self.env)
            self.tracer = session.tracer
            self.metrics = session.registry
            self.bus = session.bus

        for _ in range(config.machines):
            self.add_machine(warmup_ns=0.0)
        for failure in config.failures:
            self.env.process(
                self._failure_process(failure), name="machine-failure"
            )
        if self.autoscaler is not None:
            self.autoscaler.start()
        if self.metrics is not None:
            self._register_gauges()
            self.metrics.start()

    # ------------------------------------------------------------------
    # Fleet membership
    # ------------------------------------------------------------------
    def add_machine(self, warmup_ns: float = 0.0) -> ClusterMachine:
        """Add a machine; it becomes routable after ``warmup_ns``."""
        index = self._machine_counter
        self._machine_counter += 1
        config = self.config
        server = SimulatedServer(
            config.architecture,
            machine_params=config.machine_params_for(index),
            registry=config.registry,
            seed=derive_seed(config.seed, "machine", index),
            queue_policy=config.queue_policy,
            orch_costs=config.orch_costs,
            remotes=config.remotes,
            branch_probs=config.branch_probs,
            env=self.env,
            faults=getattr(config, "faults", None),
        )
        machine = ClusterMachine(
            index, server, warm_at_ns=self.env.now + warmup_ns
        )
        self.machines.append(machine)
        self.peak_machines = max(
            self.peak_machines, len(self.active_machines())
        )
        if self.tracer is not None:
            self.tracer.instant(
                "machine-added",
                "cluster",
                args={"machine": index, "warmup_ns": warmup_ns},
            )
        if self.bus is not None:
            self.bus.publish(
                Marker(
                    t_ns=self.env.now,
                    name="machine-added",
                    args={"machine": index, "warmup_ns": warmup_ns},
                )
            )
        return machine

    def drain_one(self) -> Optional[ClusterMachine]:
        """Drain the active machine with the least outstanding work."""
        candidates = [
            m
            for m in self.machines
            if m.state in (MachineState.WARMING, MachineState.ALIVE)
        ]
        if len(candidates) <= 1:
            return None
        victim = min(candidates, key=lambda m: (m.outstanding_count, -m.index))
        victim.drain()
        if self.tracer is not None:
            self.tracer.instant(
                "machine-drained", "cluster", args={"machine": victim.index}
            )
        if self.bus is not None:
            self.bus.publish(
                Marker(
                    t_ns=self.env.now,
                    name="machine-drained",
                    args={"machine": victim.index},
                )
            )
        return victim

    def fail_machine(self, index: int) -> int:
        """Kill the machine with fleet index ``index`` right now."""
        machine = self.machine(index)
        if machine.state == MachineState.DEAD:
            return 0
        victims = machine.fail()
        self.machines_failed += 1
        if self.fluid is not None:
            self.fluid.on_machine_failed(machine)
        if self.tracer is not None:
            self.tracer.instant(
                "machine-failure",
                "cluster",
                args={"machine": index, "inflight": victims},
            )
        if self.bus is not None:
            self.bus.publish(
                FaultInjected(
                    t_ns=self.env.now,
                    category="machine-failure",
                    args={"machine": index, "inflight": victims},
                )
            )
        return victims

    def machine(self, index: int) -> ClusterMachine:
        for machine in self.machines:
            if machine.index == index:
                return machine
        raise KeyError(f"no machine with index {index}")

    def routable_machines(self) -> List[ClusterMachine]:
        """Machines the balancer may currently target."""
        return [m for m in self.machines if m.routable]

    def active_machines(self) -> List[ClusterMachine]:
        """Machines that count toward capacity (warming included)."""
        return [
            m
            for m in self.machines
            if m.state in (MachineState.WARMING, MachineState.ALIVE)
        ]

    def _failure_process(self, failure: MachineFailure):
        yield self.env.timeout(failure.at_ns)
        self.fail_machine(failure.machine)

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    def make_request(self, spec: ServiceSpec) -> Request:
        """Sample a request at the front door (cluster-level streams)."""
        probs = self.config.resolved_branch_probs().as_dict()
        state = {
            field: self._field_stream.bernoulli(p) for field, p in probs.items()
        }
        model = self._payload_models.get(spec.name)
        if model is None:
            model = PayloadModel(
                self.streams.stream(f"payload/{spec.name}"),
                median_bytes=spec.wire_median_bytes,
            )
            self._payload_models[spec.name] = model
        return Request(
            spec,
            arrival_ns=self.env.now,
            state=state,
            wire_size=model.sample_wire_size(),
            tenant=spec.tenant,
            priority=spec.priority,
        )

    def submit(self, request: Request) -> Process:
        """Run one request through admission, balancing and execution.

        The returned process terminates with ``(status, request)`` where
        ``status`` is a :class:`RequestStatus` and ``request`` is the
        (possibly rerouted clone of the) request that reached its
        terminal state.
        """
        self.total_arrivals += 1
        return self.env.process(
            self._lifecycle(request), name=f"clreq-{request.rid}"
        )

    def submit_internal(self, request: Request) -> Process:
        """Lifecycle for a request already counted at the front door
        (fluid-tier materialization re-entering the exact tier)."""
        return self.env.process(
            self._lifecycle(request), name=f"clreq-{request.rid}"
        )

    def submit_batch(self, spec: ServiceSpec, count: int) -> List:
        """Admit ``count`` simultaneous arrivals (batched fluid path).

        The batch is split between the exact and fluid sub-fleets in
        proportion to machine counts (a binomial draw from a dedicated
        CRN stream); the exact share runs full per-request lifecycles
        and is returned as ``(service, arrival_ns, process)`` sink
        entries, the fluid share enters the tier as mass spread evenly
        over the fluid machines.
        """
        if count <= 0:
            return []
        fluid = self.fluid
        machines = self.routable_machines()
        fluid_machines = (
            [m for m in machines if fluid.is_fluid(m)] if fluid is not None else []
        )
        exact_machines = [m for m in machines if m not in fluid_machines]
        n_exact = count
        if fluid_machines:
            if exact_machines:
                share = len(exact_machines) / len(machines)
                n_exact = fluid._batch_stream.binomial(count, share)
            else:
                n_exact = 0
        entries = []
        for _ in range(n_exact):
            request = self.make_request(spec)
            entries.append((spec.name, request.arrival_ns, self.submit(request)))
        n_fluid = count - n_exact
        if n_fluid > 0:
            self.total_arrivals += n_fluid
            mass = n_fluid / len(fluid_machines)
            for machine in fluid_machines:
                fluid.absorb_mass(machine, spec, mass)
        return entries

    def _lifecycle(self, request: Request):
        # The id the request arrived with: reroute clones get fresh ids
        # for machine-level accounting, but every front-door terminal
        # event reports under the original so awaiting callers (the
        # serving façade) can match it.
        front_rid = request.rid
        if self.admission is not None:
            decision = self.admission.decide(request)
            if decision == AdmissionDecision.SHED:
                self.shed += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "shed", "cluster", args={"service": request.spec.name}
                    )
                if self.bus is not None:
                    self.bus.publish(
                        AdmissionEvent(
                            t_ns=self.env.now,
                            service=request.spec.name,
                            decision="shed",
                            rid=front_rid,
                        )
                    )
                    self.bus.publish(
                        RequestEnd(
                            t_ns=self.env.now,
                            service=request.spec.name,
                            latency_ns=0.0,
                            ok=False,
                            status=RequestStatus.SHED,
                            rid=front_rid,
                        )
                    )
                return (RequestStatus.SHED, request)
            if decision == AdmissionDecision.DEGRADE:
                self.degraded += 1
                if self.bus is not None:
                    self.bus.publish(
                        AdmissionEvent(
                            t_ns=self.env.now,
                            service=request.spec.name,
                            decision="degrade",
                            rid=front_rid,
                        )
                    )
        attempts = 0
        while True:
            machines = self.routable_machines()
            if not machines:
                return self._give_up(request, front_rid)
            if self.health is not None:
                # Lame ducks leave the *candidate set*, not the fleet:
                # the autoscaler and capacity accounting still see them.
                machines = self.health.filter_routable(machines)
            machine = self.balancer.pick(machines, request)
            if self.fluid is not None and self.fluid.is_fluid(machine):
                # Absorb into the fluid tier: the request becomes queue
                # mass and its completion is accounted analytically.
                self.fluid.absorb(machine, request)
                return (RequestStatus.FLUID, request)
            proc = machine.submit(request)
            try:
                yield proc
            except Interrupt:
                # The machine died under this request: reroute a fresh
                # attempt (bounded) to whoever is still standing.
                attempts += 1
                self.rerouted += 1
                if attempts > self.config.max_reroutes:
                    return self._give_up(request, front_rid)
                request = self._clone_for_retry(request)
                continue
            self.completed += 1
            if self.admission is not None:
                self.admission.observe(request.latency_ns)
            if self.health is not None:
                self.health.observe(
                    machine,
                    request.latency_ns,
                    ok=not (request.error or request.timed_out),
                )
            if self.fluid is not None:
                self.fluid.observe_exact(request.spec.name, request.latency_ns)
            if self.bus is not None:
                self.bus.publish(
                    RequestEnd(
                        t_ns=self.env.now,
                        service=request.spec.name,
                        latency_ns=request.latency_ns,
                        ok=not (request.error or request.timed_out),
                        error=request.error,
                        timed_out=request.timed_out,
                        fell_back=request.fell_back,
                        rid=front_rid,
                    )
                )
            return (RequestStatus.OK, request)

    def _give_up(self, request: Request, front_rid: Optional[int] = None):
        """Terminate a request that cannot be (re)placed: hard error."""
        request.error = True
        request.timed_out = True
        request.complete_ns = self.env.now
        self.lost += 1
        if self.bus is not None:
            self.bus.publish(
                RequestEnd(
                    t_ns=self.env.now,
                    service=request.spec.name,
                    latency_ns=request.latency_ns,
                    ok=False,
                    error=True,
                    timed_out=True,
                    status=RequestStatus.LOST,
                    rid=front_rid if front_rid is not None else request.rid,
                )
            )
        return (RequestStatus.LOST, request)

    def _clone_for_retry(self, request: Request) -> Request:
        """A fresh attempt that keeps the original arrival time, so the
        recorded latency honestly includes the failover penalty."""
        clone = Request(
            request.spec,
            arrival_ns=request.arrival_ns,
            state=dict(request.state),
            wire_size=request.wire_size,
            tenant=request.tenant,
            priority=request.priority,
        )
        return clone

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _register_gauges(self) -> None:
        registry = self.metrics
        registry.gauge(
            "cluster:machines", lambda: float(len(self.routable_machines()))
        )
        registry.gauge(
            "cluster:outstanding",
            lambda: float(sum(m.outstanding_count for m in self.machines)),
        )
        registry.gauge(
            "cluster:pressure",
            lambda: sum(m.queue_pressure() for m in self.routable_machines()),
        )
        registry.rate_gauge("cluster:rps", lambda: float(self.completed))
        registry.rate_gauge("cluster:shed_rps", lambda: float(self.shed))
        if self.fluid is not None:
            # Registered only when the tier exists so a fluid-free run's
            # telemetry stream is untouched.
            registry.gauge(
                "cluster:fluid_fraction", lambda: self.fluid.fluid_fraction()
            )
            registry.gauge(
                "cluster:fluid_mass", lambda: self.fluid.total_mass()
            )
        if self.health is not None:
            registry.gauge(
                "cluster:health_ejected",
                lambda: float(self.health.counts()["ejected"]),
            )
            registry.gauge(
                "cluster:health_trial",
                lambda: float(self.health.counts()["trial"]),
            )
            registry.gauge(
                "cluster:health_ejections",
                lambda: float(self.health.ejections),
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "arrivals": self.total_arrivals,
            "completed": self.completed,
            "shed": self.shed,
            "degraded": self.degraded,
            "rerouted": self.rerouted,
            "lost": self.lost,
            "machines_failed": self.machines_failed,
            "peak_machines": self.peak_machines,
            "machines": [m.stats() for m in self.machines],
            "autoscaler": (
                self.autoscaler.stats() if self.autoscaler is not None else None
            ),
            "admission": (
                self.admission.stats() if self.admission is not None else None
            ),
            "fluid": self.fluid.stats() if self.fluid is not None else None,
            "health": self.health.stats() if self.health is not None else None,
        }

"""Cluster experiment driver: fleet-level load generation and results.

Mirrors :mod:`repro.server.driver` one level up: open-loop arrival
processes (Poisson or MMPP, via :func:`repro.workloads.make_arrivals`)
feed the cluster's front door, every request's lifecycle process lands
in a sink, and the run ends at full completion or at a horizon. The
fold produces a :class:`ClusterResult` with per-service
:class:`~repro.server.metrics.ServiceResult` objects plus the
fleet-level counters (shed / degraded / rerouted / lost, machine and
autoscaler stats) and a cluster-wide latency distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from ..core.registry import TraceRegistry
from ..faults import FaultConfig
from ..hw.accelerator import QueuePolicy
from ..hw.params import MachineParams
from ..obs import ObsConfig
from ..server.metrics import ServiceResult
from ..sim import LatencyRecorder
from ..workloads.arrivals import make_arrivals
from ..workloads.calibration import (
    BranchProbabilities,
    OrchestrationCosts,
    RemoteLatencies,
)
from ..workloads.spec import ServiceSpec
from .admission import AdmissionConfig
from .autoscaler import AutoscalerConfig
from .cluster import MachineFailure, RequestStatus, SimulatedCluster
from .fluid import FluidConfig
from .health import HealthConfig

__all__ = [
    "ClusterConfig",
    "ClusterResult",
    "fold_cluster_result",
    "run_cluster",
]

_SECOND_NS = 1e9


@dataclass(frozen=True)
class ClusterConfig:
    """Parameters of one cluster measurement run."""

    architecture: str = "accelflow"
    #: Balancer policy name (see :data:`repro.cluster.BALANCER_POLICIES`).
    policy: str = "round-robin"
    #: Initial fleet size.
    machines: int = 2
    requests_per_service: int = 200
    seed: int = 0
    queue_policy: str = QueuePolicy.FIFO
    #: "poisson", "alibaba" (MMPP), "azure" (spikier MMPP) or "mmpp"
    #: (MMPP with the ``mmpp_*`` burst shape below).
    arrival_mode: str = "alibaba"
    #: Burst shape for ``arrival_mode="mmpp"`` — defaults chosen so a
    #: few hundred requests span several regime dwells.
    mmpp_burst_factor: float = 6.0
    mmpp_burst_share: float = 0.15
    mmpp_dwell_ns: float = 2e6
    #: Cluster-wide per-service rate; overrides each spec's own rate.
    rate_rps: Optional[float] = None
    rate_scale: float = 1.0
    machine_params: Optional[MachineParams] = None
    #: Processor-generation cycle for a heterogeneous fleet (machine i
    #: gets ``generations[i % len]``); empty = homogeneous fleet.
    generations: Tuple[str, ...] = ()
    warmup_fraction: float = 0.1
    #: Run at most this much simulated time past the last arrival.
    drain_ns: float = 200e6
    #: Reroute attempts after machine failures before giving up.
    max_reroutes: int = 2
    autoscaler: Optional[AutoscalerConfig] = None
    admission: Optional[AdmissionConfig] = None
    failures: Tuple[MachineFailure, ...] = ()
    orch_costs: Optional[OrchestrationCosts] = None
    remotes: Optional[RemoteLatencies] = None
    branch_probs: Optional[BranchProbabilities] = None
    registry: Optional[TraceRegistry] = None
    #: Cluster-level observability (fleet gauges, control-plane spans).
    obs: Optional[ObsConfig] = None
    #: Fluid-approximation tier (None = every request simulates
    #: exactly; see :mod:`repro.cluster.fluid`).
    fluid: Optional[FluidConfig] = None
    #: Per-machine fault injection: every fleet member gets its own
    #: seeded :class:`~repro.faults.FaultPlane` (None/zero-rate keeps
    #: the fleet byte-identical to a fault-free run).
    faults: Optional[FaultConfig] = None
    #: Machine health scoring + lame-duck ejection (None disables).
    health: Optional[HealthConfig] = None

    def machine_params_for(self, index: int) -> MachineParams:
        params = self.machine_params or MachineParams()
        if self.generations:
            params = params.with_generation(
                self.generations[index % len(self.generations)]
            )
        return params

    def resolved_branch_probs(self) -> BranchProbabilities:
        return self.branch_probs or BranchProbabilities()


@dataclass
class ClusterResult:
    """Outcome of one cluster run."""

    policy: str
    architecture: str
    services: Dict[str, ServiceResult]
    elapsed_ns: float
    #: Latency distribution over every completed request in the fleet.
    recorder: LatencyRecorder
    arrivals: int = 0
    completed: int = 0
    shed: int = 0
    degraded: int = 0
    rerouted: int = 0
    lost: int = 0
    machines_failed: int = 0
    peak_machines: int = 0
    machine_stats: List[Dict] = dataclass_field(default_factory=list)
    autoscaler_stats: Optional[Dict] = None
    admission_stats: Optional[Dict] = None
    offered_rps: Dict[str, float] = dataclass_field(default_factory=dict)
    #: Fluid-tier accounting (``FluidTier.stats()``), None without the tier.
    fluid_stats: Optional[Dict] = None
    #: Health-plane accounting (``HealthMonitor.stats()``), None without it.
    health_stats: Optional[Dict] = None
    #: The cluster itself, for white-box tests (not for shard payloads).
    cluster: Optional[SimulatedCluster] = dataclass_field(
        default=None, repr=False, compare=False
    )

    # -- aggregates -------------------------------------------------------
    def p99_ns(self) -> float:
        return self.recorder.p99()

    def mean_ns(self) -> float:
        return self.recorder.mean()

    # -- fluid-tier merges ------------------------------------------------
    def fluid_completed_mass(self) -> float:
        return sum(s.fluid_completed_mass for s in self.services.values())

    def merged_completed(self) -> float:
        """Exact completions plus analytically completed fluid mass."""
        return self.completed + self.fluid_completed_mass()

    def merged_throughput_rps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.merged_completed() / (self.elapsed_ns * 1e-9)

    def merged_mean_ns(self) -> float:
        """Mean latency over exact samples and fluid estimates, weighted
        by how much work each tier completed."""
        exact_n = len(self.recorder)
        fluid_mass = self.fluid_completed_mass()
        total = exact_n + fluid_mass
        if total <= 0:
            raise ValueError("no completed requests")
        exact_part = self.recorder.mean() * exact_n if exact_n else 0.0
        fluid_part = sum(
            s.fluid_completed_mass * s.fluid_mean_latency_ns
            for s in self.services.values()
        )
        return (exact_part + fluid_part) / total

    def jobs_integral_ns(self) -> float:
        """Integral of jobs-in-system over the run (job-ns): exact
        samples contribute their summed latency (Little's law), fluid
        queues their mass integral. Window-independent, so it is the
        apples-to-apples 'utilization' metric the validation harness
        compares across tiers (the time-normalized mean would be
        skewed by the tiers' different drain-tail lengths)."""
        exact = sum(self.recorder.samples)
        fluid = (
            self.fluid_stats["mass_integral_ns"]
            if self.fluid_stats is not None
            else 0.0
        )
        return exact + fluid

    def mean_outstanding(self) -> float:
        """Time-averaged jobs in the system over the run's own window."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.jobs_integral_ns() / self.elapsed_ns

    def mean_p99_ns(self) -> float:
        """Unweighted mean of per-service P99s (the paper's averages)."""
        values = [s.p99_ns() for s in self.services.values() if len(s.recorder)]
        if not values:
            raise ValueError("no completed requests")
        return sum(values) / len(values)

    def total_censored(self) -> int:
        return sum(s.censored for s in self.services.values())

    @property
    def shed_rate(self) -> float:
        return self.shed / self.arrivals if self.arrivals else 0.0

    def achieved_rps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.completed / (self.elapsed_ns * 1e-9)


def _source(cluster: SimulatedCluster, spec: ServiceSpec,
            config: ClusterConfig, sink: List):
    """Process: open-loop arrivals for one service at the front door."""
    rate = config.rate_rps if config.rate_rps is not None else spec.rate_rps
    rate *= config.rate_scale
    arrivals = make_arrivals(
        config.arrival_mode,
        rate,
        cluster.streams.stream(f"arrivals/{spec.name}"),
        burst_factor=config.mmpp_burst_factor,
        burst_share=config.mmpp_burst_share,
        mean_dwell_ns=config.mmpp_dwell_ns,
    )
    for _ in range(config.requests_per_service):
        yield cluster.env.timeout(arrivals.next_gap_ns())
        request = cluster.make_request(spec)
        sink.append((spec.name, request.arrival_ns, cluster.submit(request)))


def _batched_source(cluster: SimulatedCluster, spec: ServiceSpec,
                    config: ClusterConfig, sink: List):
    """Process: batched per-quantum Poisson arrivals for one service.

    The fleet-scale fast path (``FluidConfig.batched``): instead of one
    timeout per request, each fluid quantum admits a Poisson-sized
    batch at the front door in one event. Uses its own CRN stream, so
    flipping ``batched`` never perturbs the per-request arrival stream.
    """
    rate = config.rate_rps if config.rate_rps is not None else spec.rate_rps
    rate *= config.rate_scale
    quantum = config.fluid.quantum_ns
    stream = cluster.streams.stream(f"arrivals-batched/{spec.name}")
    mean = rate * quantum / _SECOND_NS
    remaining = config.requests_per_service
    while remaining > 0:
        yield cluster.env.timeout(quantum)
        count = min(remaining, stream.poisson(mean))
        if count:
            sink.extend(cluster.submit_batch(spec, count))
            remaining -= count


def run_cluster(
    services: List[ServiceSpec], config: ClusterConfig
) -> ClusterResult:
    """Run one cluster measurement; see the module docstring."""
    cluster = SimulatedCluster(config)
    env = cluster.env
    sink: List = []
    batched = config.fluid is not None and config.fluid.batched
    source_fn = _batched_source if batched else _source
    sources = [
        env.process(source_fn(cluster, spec, config, sink), name=f"src-{spec.name}")
        for spec in services
    ]
    # Horizon: expected arrival span of the slowest source + drain.
    span = max(
        config.requests_per_service
        / ((config.rate_rps or spec.rate_rps) * config.rate_scale)
        for spec in services
    )
    horizon_ns = span * _SECOND_NS + config.drain_ns
    if cluster.fluid is not None:
        cluster.fluid.start(services, horizon_ns)

    def _watch_completion(env):
        for source in sources:
            yield source
        yield env.all_of([proc for _, _, proc in sink])
        fluid = cluster.fluid
        if fluid is not None:
            # Wait for the analytical queues to drain (mass decays
            # exponentially, so "drained" means below a negligible
            # threshold) and for materialized requests to finish; the
            # horizon still bounds an unstable fluid queue.
            while True:
                pending = [
                    proc
                    for _, _, proc in fluid.materialized_sink
                    if not proc.triggered
                ]
                if fluid.total_mass() <= 0.05 and not pending:
                    break
                yield env.timeout(config.fluid.quantum_ns)

    watcher = env.process(_watch_completion(env))
    env.run(until=env.any_of([watcher, env.timeout(horizon_ns)]))
    return fold_cluster_result(cluster, services, config, sink)


def fold_cluster_result(
    cluster: SimulatedCluster,
    services: List[ServiceSpec],
    config: ClusterConfig,
    sink: List,
) -> ClusterResult:
    """Fold a driven cluster and its lifecycle sink into a result.

    The sink holds ``(service, arrival_ns, process)`` triples, one per
    front-door submission. This is the shared back half of
    :func:`run_cluster`, split out so incremental drivers — the live
    serving façade (:mod:`repro.serve`) paces the same cluster against
    wall-clock time — can produce the identical :class:`ClusterResult`
    from a sink they accumulated themselves. Processes still pending
    when this is called are recorded as censored.
    """
    env = cluster.env
    results = {
        spec.name: ServiceResult(spec.name, warmup_fraction=config.warmup_fraction)
        for spec in services
    }
    recorder = LatencyRecorder(warmup_fraction=config.warmup_fraction)
    materialized = (
        cluster.fluid.materialized_sink if cluster.fluid is not None else []
    )
    for name, arrival_ns, proc in list(sink) + list(materialized):
        result = results[name]
        if not proc.triggered:
            # Still in flight at the horizon.
            result.record_censored(env.now - arrival_ns)
            continue
        status, request = proc.value
        if status in (RequestStatus.SHED, RequestStatus.FLUID):
            continue  # counted by the cluster, carries no latency sample
        result.record(request)
        recorder.record(request.latency_ns)
    if cluster.fluid is not None:
        for name, result in results.items():
            summary = cluster.fluid.service_summary(name)
            result.record_fluid(
                summary["completed_mass"],
                summary["mean_latency_ns"],
                residual_mass=summary["residual_mass"],
                est_p99_ns=summary["est_p99_ns"],
            )

    stats = cluster.stats()
    return ClusterResult(
        policy=config.policy,
        architecture=config.architecture,
        services=results,
        elapsed_ns=env.now,
        recorder=recorder,
        arrivals=stats["arrivals"],
        completed=stats["completed"],
        shed=stats["shed"],
        degraded=stats["degraded"],
        rerouted=stats["rerouted"],
        lost=stats["lost"],
        machines_failed=stats["machines_failed"],
        peak_machines=stats["peak_machines"],
        machine_stats=stats["machines"],
        autoscaler_stats=stats["autoscaler"],
        admission_stats=stats["admission"],
        offered_rps={
            spec.name: (config.rate_rps or spec.rate_rps) * config.rate_scale
            for spec in services
        },
        fluid_stats=stats["fluid"],
        health_stats=stats["health"],
        cluster=cluster,
    )

"""Cluster integration of the fluid tier: config, calibration, handoff.

:class:`FluidTier` is the bridge between the analytical machinery in
:mod:`repro.sim.fluid` and the exact cluster simulation: it decides per
machine (via a :class:`~repro.sim.fluid.TierPolicy`) whether requests
routed there are simulated exactly or absorbed as fluid mass, owns the
per-(machine, service) :class:`~repro.sim.fluid.FluidQueue` shims, and
handles the two direction changes:

* **exact -> fluid** needs no handoff: future arrivals are absorbed as
  mass at the front door; in-flight discrete requests finish exactly.
* **fluid -> exact** *materializes* the machine's queued mass back into
  discrete requests, deterministically from dedicated CRN streams
  (``fluid/materialize``, ``fluid/fields``, ``fluid/payload/*``), so a
  run with the fluid tier enabled is exactly reproducible and adding
  the tier never perturbs the pre-existing streams.

Calibration: the fluid model needs a per-service service rate ``mu``.
Machines start exact; the cluster feeds every exact completion's
latency into the tier, and once each service has
``calibrate_requests`` samples (or an explicit ``service_time_ns``
override) machines may go fluid. The calibrated mean latency doubles
as ``1/mu`` and the calibration sample's p99/mean ratio shapes the
fluid tier's p99 estimate.

Approximations (documented; the validation harness
``tests/sim/test_fluid_accuracy.py`` bounds their effect):

* A fluid machine is one M/M/k queue per service with
  ``effective_servers`` shared servers; cross-service contention on a
  machine is not modelled.
* Materialized requests restart their latency clock — time already
  spent as mass is dropped. Only matters across tier flips.
* Fluid mass bypasses per-request admission and balancer policy
  detail (batched arrivals split by machine count).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Mapping, Optional, Tuple

from ..sim import percentile
from ..sim.fluid import (
    EXACT,
    FLUID,
    FluidQueue,
    FluidStepper,
    StaticTierPolicy,
    TierPolicy,
    UtilizationTierPolicy,
)
from ..workloads.payloads import PayloadModel
from ..workloads.request import Request
from ..workloads.spec import ServiceSpec

__all__ = ["FluidConfig", "FluidTier", "FLUID_TOLERANCES"]

#: Documented fluid-vs-exact accuracy bands (fractional error) that the
#: differential harness asserts and ``docs/performance.md`` quotes.
#: Keyed by comparison metric; see ``tests/sim/test_fluid_accuracy.py``.
FLUID_TOLERANCES = {
    "throughput": 0.05,
    "mean_latency": 0.25,
    "utilization": 0.25,
}


@dataclass(frozen=True)
class FluidConfig:
    """Configuration of the cluster's fluid-approximation tier.

    Presence of a ``FluidConfig`` on a :class:`ClusterConfig` enables
    the tier; ``policy="static"`` with an empty ``fluid_machines`` is
    the degenerate all-exact setup (byte-identical to ``fluid=None``,
    asserted by the validation harness).
    """

    #: "static" (fixed ``fluid_machines``) or "auto" (utilization
    #: hysteresis per machine).
    policy: str = "static"
    #: Machine indices pinned fluid under the static policy.
    fluid_machines: Tuple[int, ...] = ()
    #: Sim-time quantum of the fluid stepper.
    quantum_ns: float = 0.25e6
    #: Auto-policy hysteresis thresholds on offered utilization.
    go_fluid_below: float = 0.4
    go_exact_above: float = 0.75
    #: Exact completions per service required before machines may go
    #: fluid (ignored for services with a ``service_time_ns`` override).
    calibrate_requests: int = 25
    #: Explicit per-service mean service time (ns); skips calibration.
    service_time_ns: Mapping[str, float] = dataclass_field(default_factory=dict)
    #: Servers of the per-(machine, service) M/M/k model. Matches the
    #: paper server's 36 cores; latency is insensitive to it at the low
    #: utilizations where the fluid tier is accurate.
    effective_servers: int = 36
    #: Generate arrivals in per-quantum Poisson batches instead of one
    #: timeout per request — the fleet-scale fast path. Changes the
    #: arrival stream, so accuracy comparisons use ``batched=False``.
    batched: bool = False
    #: EWMA smoothing for per-queue arrival-rate estimates.
    rate_alpha: float = 0.3

    def make_policy(self) -> TierPolicy:
        if self.policy == "static":
            return StaticTierPolicy(self.fluid_machines)
        if self.policy == "auto":
            return UtilizationTierPolicy(self.go_fluid_below, self.go_exact_above)
        raise ValueError(f"unknown fluid tier policy {self.policy!r}")


class FluidTier:
    """Runtime coordinator of the fluid tier inside one cluster."""

    def __init__(self, cluster, config: FluidConfig):
        self.cluster = cluster
        self.config = config
        self.policy = config.make_policy()
        self.stepper: Optional[FluidStepper] = None
        self._specs: Dict[str, ServiceSpec] = {}
        #: (machine index, service name) -> FluidQueue
        self.queues: Dict[Tuple[int, str], FluidQueue] = {}
        self._tiers: Dict[int, str] = {}
        #: Calibration latency samples per service (exact completions).
        self._calibration: Dict[str, List[float]] = {}
        self._service_time: Dict[str, float] = dict(config.service_time_ns)
        self._p99_ratio: Dict[str, float] = {}
        #: Per-machine EWMA arrival-rate estimate + last-seen arrival
        #: count, for the symmetric utilization signal of the auto
        #: policy (works the same whether the machine is fluid or exact).
        self._rate_estimate: Dict[int, float] = {}
        self._arrival_marks: Dict[int, float] = {}
        self._absorbed_per_machine: Dict[int, float] = {}
        self._last_eval_ns = 0.0
        # Dedicated CRN streams: adding the fluid tier must not perturb
        # any pre-existing stream, and materialization must be exactly
        # reproducible.
        self._materialize_stream = cluster.streams.stream("fluid/materialize")
        self._batch_stream = cluster.streams.stream("fluid/batch-split")
        self._field_stream = cluster.streams.stream("fluid/fields")
        self._payload_models: Dict[str, PayloadModel] = {}
        # Counters / accounting (absorbed is a float: batched arrivals
        # spread fractional mass across machines).
        self.absorbed = 0.0
        self.materialized = 0
        self.materialized_mass = 0.0
        self.tier_flips = 0
        self.lost_mass = 0.0
        #: ``(service name, arrival_ns, lifecycle process)`` triples of
        #: materialized requests, folded by the driver like the sink.
        self.materialized_sink: List[Tuple[str, float, object]] = []
        self._fraction_integral_ns = 0.0
        self._fraction_elapsed_ns = 0.0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def start(self, services: List[ServiceSpec], until_ns: float) -> None:
        """Begin stepping; called by the driver once the horizon is known."""
        self._specs = {spec.name: spec for spec in services}
        for name in self._specs:
            self._calibration.setdefault(name, [])
        self.stepper = FluidStepper(
            self.cluster.env,
            quantum_ns=self.config.quantum_ns,
            until_ns=until_ns,
            on_step=self._on_step,
        )
        self._last_eval_ns = self.cluster.env.now
        self.stepper.start()

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def observe_exact(self, service: str, latency_ns: float) -> None:
        """Feed an exact completion into the calibration set."""
        samples = self._calibration.setdefault(service, [])
        if len(samples) < max(self.config.calibrate_requests, 2):
            samples.append(latency_ns)

    def service_time(self, service: str) -> float:
        """Calibrated (or overridden) mean service time for ``service``."""
        override = self._service_time.get(service)
        if override is not None:
            return override
        samples = self._calibration.get(service, ())
        if not samples:
            raise KeyError(f"service {service!r} is not calibrated yet")
        mean = sum(samples) / len(samples)
        self._service_time[service] = mean  # freeze on first use
        self._p99_ratio[service] = percentile(sorted(samples), 99.0) / mean
        return mean

    def p99_ratio(self, service: str) -> float:
        """p99/mean shape ratio from the calibration samples (>= 1)."""
        return max(1.0, self._p99_ratio.get(service, 1.0))

    def _service_calibrated(self, service: str) -> bool:
        if service in self._service_time:
            return True
        samples = self._calibration.get(service, ())
        return len(samples) >= self.config.calibrate_requests

    def ready(self) -> bool:
        """True once every known service can be modelled analytically."""
        if not self._specs:
            return False
        return all(self._service_calibrated(name) for name in self._specs)

    # ------------------------------------------------------------------
    # Tier state
    # ------------------------------------------------------------------
    def tier_of(self, machine) -> str:
        return self._tiers.get(machine.index, EXACT)

    def is_fluid(self, machine) -> bool:
        return self._tiers.get(machine.index, EXACT) == FLUID

    def fluid_fraction(self) -> float:
        """Instantaneous fraction of active machines running fluid."""
        active = self.cluster.active_machines()
        if not active:
            return 0.0
        fluid = sum(1 for m in active if self.is_fluid(m))
        return fluid / len(active)

    def mean_fluid_fraction(self) -> float:
        """Time-weighted fluid fraction over the run."""
        if self._fraction_elapsed_ns <= 0:
            return 0.0
        return self._fraction_integral_ns / self._fraction_elapsed_ns

    def total_mass(self) -> float:
        return sum(queue.mass for queue in self.queues.values())

    # ------------------------------------------------------------------
    # Intake (exact -> fluid direction)
    # ------------------------------------------------------------------
    def _queue_for(self, machine_index: int, service: str) -> FluidQueue:
        key = (machine_index, service)
        queue = self.queues.get(key)
        if queue is None:
            queue = FluidQueue(
                f"m{machine_index}/{service}",
                service_time_ns=self.service_time(service),
                servers=self.config.effective_servers,
                start_ns=self.cluster.env.now,
                rate_alpha=self.config.rate_alpha,
            )
            self.queues[key] = queue
        return queue

    def absorb(self, machine, request: Request) -> None:
        """Absorb one front-door request into the machine's fluid mass."""
        self._queue_for(machine.index, request.spec.name).arrive(1.0)
        self.absorbed += 1
        self._absorbed_per_machine[machine.index] = (
            self._absorbed_per_machine.get(machine.index, 0) + 1
        )
        machine.fluid_mass += 1.0

    def absorb_mass(self, machine, spec: ServiceSpec, mass: float) -> None:
        """Absorb ``mass`` batched arrivals at once (fleet fast path)."""
        if mass <= 0:
            return
        self._queue_for(machine.index, spec.name).arrive(mass)
        self.absorbed += mass
        self._absorbed_per_machine[machine.index] = (
            self._absorbed_per_machine.get(machine.index, 0) + mass
        )
        machine.fluid_mass += mass

    # ------------------------------------------------------------------
    # Handoff (fluid -> exact direction)
    # ------------------------------------------------------------------
    def materialize(self, machine) -> int:
        """Turn the machine's queued mass back into discrete requests.

        The integer part of each queue's mass materializes directly;
        the fractional remainder becomes one more request with the
        matching Bernoulli probability, so the *expected* materialized
        count equals the mass and the realization is deterministic in
        the CRN stream. Returns the number of requests created.
        """
        created = 0
        for (index, service), queue in sorted(self.queues.items()):
            if index != machine.index or queue.mass <= 0:
                continue
            whole = math.floor(queue.mass)
            frac = queue.mass - whole
            count = whole + (
                1 if frac > 0 and self._materialize_stream.bernoulli(frac) else 0
            )
            self.materialized_mass += queue.mass
            queue.remove_mass(queue.mass)
            for _ in range(count):
                request = self._make_request(self._specs[service])
                proc = self.cluster.submit_internal(request)
                self.materialized_sink.append(
                    (service, request.arrival_ns, proc)
                )
            created += count
        self.materialized += created
        machine.fluid_mass = 0.0
        return created

    def _make_request(self, spec: ServiceSpec) -> Request:
        """Sample a materialized request from the tier's own streams."""
        probs = self.cluster.config.resolved_branch_probs().as_dict()
        state = {
            field: self._field_stream.bernoulli(p) for field, p in probs.items()
        }
        model = self._payload_models.get(spec.name)
        if model is None:
            model = PayloadModel(
                self.cluster.streams.stream(f"fluid/payload/{spec.name}"),
                median_bytes=spec.wire_median_bytes,
            )
            self._payload_models[spec.name] = model
        return Request(
            spec,
            arrival_ns=self.cluster.env.now,
            state=state,
            wire_size=model.sample_wire_size(),
            tenant=spec.tenant,
            priority=spec.priority,
        )

    def on_machine_failed(self, machine) -> None:
        """A fluid machine died: its queued mass is lost work."""
        for (index, _service), queue in self.queues.items():
            if index == machine.index and queue.mass > 0:
                self.lost_mass += queue.mass
                queue.remove_mass(queue.mass)
        machine.fluid_mass = 0.0
        self._tiers[machine.index] = EXACT

    # ------------------------------------------------------------------
    # Per-quantum evaluation (stepper hook)
    # ------------------------------------------------------------------
    def _on_step(self, now_ns: float) -> None:
        # Register queues created since the last step with the stepper.
        stepper = self.stepper
        registered = len(stepper.queues)
        if registered < len(self.queues):
            known = set(id(q) for q in stepper.queues)
            for key in sorted(self.queues):
                queue = self.queues[key]
                if id(queue) not in known:
                    queue.step(now_ns)
                    stepper.register(queue)
        dt = now_ns - self._last_eval_ns
        self._last_eval_ns = now_ns
        ready = self.ready()
        active = self.cluster.active_machines()
        fluid_count = 0
        alpha = self.config.rate_alpha
        for machine in active:
            # Symmetric arrival-rate signal: dispatched (exact) plus
            # absorbed (fluid) since the previous step.
            arrivals = machine.dispatched + self._absorbed_per_machine.get(
                machine.index, 0
            )
            mark = self._arrival_marks.get(machine.index, arrivals)
            self._arrival_marks[machine.index] = arrivals
            if dt > 0:
                instant = (arrivals - mark) / dt
                rate = self._rate_estimate.get(machine.index, 0.0)
                rate += alpha * (instant - rate)
                self._rate_estimate[machine.index] = rate
            utilization = self._offered_utilization(machine.index)
            current = self._tiers.get(machine.index, EXACT)
            desired = self.policy.decide(machine.index, current, utilization)
            if desired == FLUID and not ready:
                desired = EXACT
            if desired != current:
                self._tiers[machine.index] = desired
                self.tier_flips += 1
                if desired == EXACT:
                    self.materialize(machine)
            if desired == FLUID:
                fluid_count += 1
            # Refresh the occupancy signal the balancer reads.
            machine.fluid_mass = sum(
                queue.mass
                for (index, _s), queue in self.queues.items()
                if index == machine.index
            )
        if dt > 0 and active:
            self._fraction_integral_ns += dt * (fluid_count / len(active))
            self._fraction_elapsed_ns += dt

    def _offered_utilization(self, machine_index: int) -> float:
        """rho-hat = lambda-hat / (k mu-bar) for one machine, where
        mu-bar averages the calibrated service rates (uncalibrated
        services contribute nothing, which keeps machines exact)."""
        rate = self._rate_estimate.get(machine_index, 0.0)
        if rate <= 0:
            return 0.0
        times = [
            self.service_time(name)
            for name in self._specs
            if self._service_calibrated(name)
        ]
        if not times:
            return 1.0  # unknown service mix: report hot, stay exact
        mean_time = sum(times) / len(times)
        return rate * mean_time / self.config.effective_servers

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def service_summary(self, service: str) -> Dict[str, float]:
        """Aggregate fluid-tier estimates for one service."""
        completed = 0.0
        latency_mass = 0.0
        residual = 0.0
        arrived = 0.0
        for (_index, name), queue in self.queues.items():
            if name != service:
                continue
            completed += queue.completed_mass
            latency_mass += queue.latency_mass_ns
            residual += queue.mass
            arrived += queue.arrived_mass
        mean_latency = latency_mass / completed if completed > 0 else 0.0
        return {
            "arrived_mass": arrived,
            "completed_mass": completed,
            "residual_mass": residual,
            "mean_latency_ns": mean_latency,
            "est_p99_ns": mean_latency * self.p99_ratio(service),
        }

    def mass_integral_ns(self) -> float:
        """Sum of the jobs-in-system integrals (for Little's-law
        comparisons against the exact tier)."""
        return sum(queue.mass_integral_ns for queue in self.queues.values())

    def stats(self) -> Dict[str, object]:
        return {
            "policy": self.config.policy,
            "absorbed": self.absorbed,
            "materialized": self.materialized,
            "materialized_mass": self.materialized_mass,
            "tier_flips": self.tier_flips,
            "lost_mass": self.lost_mass,
            "residual_mass": self.total_mass(),
            "mass_integral_ns": self.mass_integral_ns(),
            "fluid_fraction": self.fluid_fraction(),
            "mean_fluid_fraction": self.mean_fluid_fraction(),
            "steps": self.stepper.steps if self.stepper is not None else 0,
            "services": {
                name: self.service_summary(name) for name in sorted(self._specs)
            },
        }

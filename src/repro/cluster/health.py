"""Machine health scoring and lame-duck ejection for the fleet.

Fail-stop machine deaths are easy — :class:`~repro.cluster.machine.
ClusterMachine` goes ``DEAD`` and the balancer never sees it again.
Gray failures (:mod:`repro.faults.gray`) are the hard case: a limping
machine keeps accepting work and keeps completing it, just slowly, so
every balancer policy that weighs *occupancy* keeps feeding it and the
fleet P99 quietly doubles. The :class:`HealthMonitor` closes that gap:

* **passive signals** — every completion observed at the front door
  updates per-machine EWMAs of latency and error rate;
* **active probes** — an optional bounded prober reads each machine's
  instantaneous :meth:`~repro.cluster.machine.ClusterMachine.
  queue_pressure`, catching machines too wedged to complete anything
  (a passive-only monitor starves on exactly the machines it most
  needs to eject);
* **hysteresis** — a machine is ejected from the balancer candidate
  set only after ``eject_after`` consecutive unhealthy signals, sits
  out ``readmit_after_ns``, then re-enters as a *trial*: it takes
  traffic again, and only ``trial_requests`` consecutive healthy
  completions promote it back to healthy (one unhealthy signal
  re-ejects it);
* **a floor** — ejection never shrinks the candidate set below
  ``min_routable`` machines: a health plane must degrade into a no-op,
  never into an outage.

The monitor is deliberately RNG-free, so installing it never perturbs
any model stream and cluster runs stay CRN-aligned with and without
it. Every state transition publishes a :class:`~repro.obs.telemetry.
HealthEvent` and the monitor exports fleet gauges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

__all__ = ["HealthConfig", "HealthMonitor", "HealthState", "MachineHealth"]


class HealthState:
    """Health lifecycle of one machine (orthogonal to MachineState)."""

    HEALTHY = "healthy"
    EJECTED = "ejected"
    TRIAL = "trial"


@dataclass(frozen=True)
class HealthConfig:
    """Parameters of the fleet health monitor."""

    #: EWMA latency above this marks an observation unhealthy.
    latency_threshold_ns: float = 5e6
    #: EWMA error rate above this marks an observation unhealthy.
    error_threshold: float = 0.5
    #: Smoothing factor for both passive EWMAs.
    ewma_alpha: float = 0.2
    #: Consecutive unhealthy signals before ejection (hysteresis).
    eject_after: int = 8
    #: How long an ejected machine sits out before its trial.
    readmit_after_ns: float = 5e6
    #: Consecutive healthy completions a trial machine needs to be
    #: promoted back to healthy.
    trial_requests: int = 8
    #: Active-probe cadence (0 disables probing); each sweep reads
    #: every candidate machine's instantaneous queue pressure.
    probe_interval_ns: float = 0.0
    #: Queue pressure at or above this counts as an unhealthy probe.
    probe_pressure_threshold: float = 64.0
    #: Probe sweeps are bounded so a bare ``env.run()`` still drains.
    probe_max: int = 256
    #: Never eject below this many routable candidates.
    min_routable: int = 1

    def __post_init__(self):
        if self.latency_threshold_ns <= 0:
            raise ValueError("latency_threshold_ns must be positive")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 <= self.error_threshold <= 1.0:
            raise ValueError("error_threshold must be in [0, 1]")
        if self.eject_after < 1 or self.trial_requests < 1:
            raise ValueError("eject_after and trial_requests must be >= 1")
        if self.readmit_after_ns < 0 or self.probe_interval_ns < 0:
            raise ValueError("durations must be non-negative")
        if self.probe_max < 0:
            raise ValueError("probe_max must be non-negative")
        if self.min_routable < 1:
            raise ValueError("min_routable must be >= 1")


class MachineHealth:
    """Per-machine EWMA signals and health state."""

    __slots__ = (
        "config", "state", "ewma_latency_ns", "ewma_error",
        "unhealthy_streak", "ejected_at_ns", "trial_successes",
    )

    def __init__(self, config: HealthConfig):
        self.config = config
        self.state = HealthState.HEALTHY
        self.ewma_latency_ns: Optional[float] = None
        self.ewma_error = 0.0
        self.unhealthy_streak = 0
        self.ejected_at_ns: Optional[float] = None
        self.trial_successes = 0

    def update(self, latency_ns: float, ok: bool) -> bool:
        """Fold one completion into the EWMAs; True = unhealthy signal."""
        alpha = self.config.ewma_alpha
        if self.ewma_latency_ns is None:
            self.ewma_latency_ns = latency_ns
        else:
            self.ewma_latency_ns += alpha * (latency_ns - self.ewma_latency_ns)
        self.ewma_error += alpha * ((0.0 if ok else 1.0) - self.ewma_error)
        return self.unhealthy

    @property
    def unhealthy(self) -> bool:
        return (
            self.ewma_latency_ns is not None
            and self.ewma_latency_ns > self.config.latency_threshold_ns
        ) or self.ewma_error > self.config.error_threshold

    @property
    def score(self) -> float:
        """Health score in [0, 1]: 1 = clean, 0 = saturated-bad.

        The latency term is the threshold/EWMA ratio (capped at 1) and
        the error term scales it down by the EWMA error rate — a
        monotone summary for gauges and events, not a decision input
        (decisions use the thresholds + hysteresis directly).
        """
        if self.ewma_latency_ns is None or self.ewma_latency_ns <= 0:
            latency_term = 1.0
        else:
            latency_term = min(
                1.0, self.config.latency_threshold_ns / self.ewma_latency_ns
            )
        return latency_term * (1.0 - min(self.ewma_error, 1.0))


class HealthMonitor:
    """Scores fleet members and ejects lame ducks from routing."""

    def __init__(self, cluster, config: HealthConfig):
        self.cluster = cluster
        self.env = cluster.env
        self.config = config
        self._members: Dict[int, MachineHealth] = {}
        # Counters.
        self.ejections = 0
        self.readmissions = 0
        self.trials_failed = 0
        self.probes = 0
        if config.probe_interval_ns > 0 and config.probe_max > 0:
            self.env.process(self._prober(), name="health-prober")

    def member(self, machine) -> MachineHealth:
        health = self._members.get(machine.index)
        if health is None:
            health = MachineHealth(self.config)
            self._members[machine.index] = health
        return health

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def observe(self, machine, latency_ns: float, ok: bool) -> None:
        """Passive signal: one completion that ran on ``machine``."""
        health = self.member(machine)
        self._signal(machine, health, health.update(latency_ns, ok))

    def _signal(self, machine, health: MachineHealth, unhealthy: bool) -> None:
        """Fold one healthy/unhealthy signal through the state machine."""
        if health.state == HealthState.EJECTED:
            return  # no traffic should be here; probes skip ejected too
        if unhealthy:
            health.unhealthy_streak += 1
            if health.state == HealthState.TRIAL:
                # One bad signal fails the trial: back to the bench.
                self.trials_failed += 1
                self._eject(machine, health)
            elif health.unhealthy_streak >= self.config.eject_after:
                self._eject(machine, health)
            return
        health.unhealthy_streak = 0
        if health.state == HealthState.TRIAL:
            health.trial_successes += 1
            if health.trial_successes >= self.config.trial_requests:
                health.state = HealthState.HEALTHY
                self.readmissions += 1
                self._publish(machine, health)

    def _eject(self, machine, health: MachineHealth) -> None:
        if self._routable_candidates() <= self.config.min_routable:
            # Ejecting would leave the balancer nothing: degrade to a
            # no-op rather than manufacture an outage.
            health.unhealthy_streak = 0
            return
        health.state = HealthState.EJECTED
        health.ejected_at_ns = self.env.now
        health.unhealthy_streak = 0
        health.trial_successes = 0
        self.ejections += 1
        self._publish(machine, health)

    def _routable_candidates(self) -> int:
        """Machines currently routable *and* not health-ejected."""
        count = 0
        for machine in self.cluster.routable_machines():
            health = self._members.get(machine.index)
            if health is None or health.state != HealthState.EJECTED:
                count += 1
        return count

    # ------------------------------------------------------------------
    # Candidate filtering (the balancer-facing surface)
    # ------------------------------------------------------------------
    def filter_routable(self, machines: List) -> List:
        """Drop ejected machines from the balancer candidate set.

        Ejected machines whose sit-out has elapsed transition to trial
        here (lazily — no timer processes to drain). If every machine
        is ejected the unfiltered set is returned: min_routable already
        bounds ejection, this is belt-and-braces for races with
        machine deaths.
        """
        now = self.env.now
        kept = []
        for machine in machines:
            health = self._members.get(machine.index)
            if health is None or health.state != HealthState.EJECTED:
                kept.append(machine)
                continue
            if (
                health.ejected_at_ns is not None
                and now - health.ejected_at_ns >= self.config.readmit_after_ns
            ):
                health.state = HealthState.TRIAL
                health.trial_successes = 0
                self._publish(machine, health)
                kept.append(machine)
        return kept if kept else machines

    # ------------------------------------------------------------------
    # Active probes
    # ------------------------------------------------------------------
    def _prober(self):
        """Bounded sweep: read queue pressure on every candidate."""
        env = self.env
        config = self.config
        for _ in range(config.probe_max):
            yield env.timeout(config.probe_interval_ns)
            self.probes += 1
            for machine in self.cluster.routable_machines():
                health = self.member(machine)
                if health.state == HealthState.EJECTED:
                    continue
                pressure = machine.queue_pressure()
                if pressure >= config.probe_pressure_threshold:
                    self._signal(machine, health, True)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _publish(self, machine, health: MachineHealth) -> None:
        bus = self.cluster.bus
        if bus is not None:
            from ..obs.telemetry import HealthEvent

            bus.publish(
                HealthEvent(
                    t_ns=self.env.now,
                    machine=machine.index,
                    state=health.state,
                    score=health.score,
                )
            )

    def counts(self) -> Dict[str, int]:
        counts = {
            HealthState.HEALTHY: 0,
            HealthState.EJECTED: 0,
            HealthState.TRIAL: 0,
        }
        for health in self._members.values():
            counts[health.state] += 1
        return counts

    def stats(self) -> Dict[str, object]:
        counts = self.counts()
        return {
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "trials_failed": self.trials_failed,
            "probes": self.probes,
            "ejected": counts[HealthState.EJECTED],
            "trial": counts[HealthState.TRIAL],
            "scores": {
                index: round(health.score, 4)
                for index, health in sorted(self._members.items())
            },
        }

"""One member of a simulated fleet: a server plus cluster-side state.

A :class:`ClusterMachine` wraps a :class:`~repro.server.SimulatedServer`
that lives on the *cluster's* shared :class:`~repro.sim.Environment` and
adds what the control plane needs to know about it: lifecycle state
(warming / alive / draining / dead), the set of outstanding requests,
and the occupancy signals the load-balancing policies read.

Two occupancy signals are exposed:

* :meth:`outstanding_count` — requests dispatched here and not yet
  finished. Cheap, but inflated by requests parked on remote waits
  (which consume no local capacity).
* :meth:`queue_pressure` / :meth:`ldb_occupancy` — instantaneous
  accelerator input-queue occupancy plus busy cores, the signal the
  paper's dispatchers (and its LdB accelerator) act on. This is the
  basis of the accelerator-aware balancing policy.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..hw.params import AcceleratorKind
from ..server.machine import SimulatedServer
from ..sim import Process
from ..workloads.request import Request

__all__ = ["ClusterMachine", "MachineState"]


class MachineState:
    """Lifecycle states of a fleet member."""

    WARMING = "warming"
    ALIVE = "alive"
    DRAINING = "draining"
    DEAD = "dead"


class ClusterMachine:
    """A :class:`SimulatedServer` inside a fleet."""

    def __init__(self, index: int, server: SimulatedServer, warm_at_ns: float = 0.0):
        self.index = index
        self.server = server
        self.env = server.env
        #: Absolute sim time at which the machine finishes warming up.
        self.warm_at_ns = warm_at_ns
        self.state = (
            MachineState.WARMING
            if warm_at_ns > self.env.now
            else MachineState.ALIVE
        )
        self.added_at_ns = self.env.now
        self.died_at_ns: Optional[float] = None
        self.dispatched = 0
        self.completed = 0
        #: ``dispatched`` frozen at death; proves no post-mortem routing.
        self.dispatched_at_death: Optional[int] = None
        #: Requests interrupted mid-flight when the machine died.
        self.killed_inflight = 0
        #: Queued fluid-tier mass on this machine (0.0 unless the
        #: cluster's fluid tier marked the machine fluid); folded into
        #: the occupancy signals so balancers see fluid work too.
        self.fluid_mass = 0.0
        self._outstanding: Dict[int, Process] = {}

    # -- lifecycle ---------------------------------------------------------
    @property
    def routable(self) -> bool:
        """True when the balancer may send new requests here."""
        if self.state == MachineState.WARMING and self.env.now >= self.warm_at_ns:
            self.state = MachineState.ALIVE
        return self.state == MachineState.ALIVE

    @property
    def retired(self) -> bool:
        """A draining machine with no work left can leave the fleet."""
        return self.state == MachineState.DRAINING and not self._outstanding

    def drain(self) -> None:
        """Stop receiving new requests; outstanding work finishes."""
        if self.state in (MachineState.WARMING, MachineState.ALIVE):
            self.state = MachineState.DRAINING

    def fail(self, cause: str = "machine-failure") -> int:
        """Kill the machine: every in-flight request is interrupted.

        Returns the number of requests that were in flight. The cluster's
        request lifecycle catches the interrupts and reroutes the work to
        surviving machines.
        """
        if self.state == MachineState.DEAD:
            return 0
        self.state = MachineState.DEAD
        self.died_at_ns = self.env.now
        self.dispatched_at_death = self.dispatched
        victims = [proc for proc in self._outstanding.values() if proc.is_alive]
        self._outstanding.clear()
        self.killed_inflight = len(victims)
        for proc in victims:
            proc.interrupt(cause)
        return len(victims)

    # -- dispatch ----------------------------------------------------------
    def submit(self, request: Request) -> Process:
        """Run ``request`` on this machine's server."""
        if self.state == MachineState.DEAD:
            raise RuntimeError(f"machine {self.index} is dead")
        proc = self.server.submit(request)
        self.dispatched += 1
        self._outstanding[request.rid] = proc
        proc.callbacks.append(
            lambda _event, rid=request.rid: self._retired(rid)
        )
        return proc

    def _retired(self, rid: int) -> None:
        # Interrupted requests were already cleared by fail(); only a
        # normally finishing request still occupies its slot here.
        if self._outstanding.pop(rid, None) is not None:
            self.completed += 1

    # -- occupancy signals -------------------------------------------------
    @property
    def outstanding_count(self) -> int:
        return len(self._outstanding) + int(self.fluid_mass + 0.5)

    def ldb_occupancy(self) -> int:
        """Input occupancy of the load-balancing accelerator (LdB)."""
        return sum(
            accel.input_occupancy
            for accel in self.server.hardware.instances[AcceleratorKind.LDB]
        )

    def queue_pressure(self) -> float:
        """Instantaneous local pressure: accelerator queues + busy cores.

        Unlike :meth:`outstanding_count` this ignores requests parked on
        remote waits, so it measures capacity actually consumed *here*.
        """
        depths = self.server.hardware.queue_depths()
        return float(
            sum(depths.values())
            + self.server.hardware.cores.in_use
            + self.fluid_mass
        )

    # -- reporting ---------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "state": self.state,
            "dispatched": self.dispatched,
            "completed": self.completed,
            "outstanding": self.outstanding_count,
            "fluid_mass": self.fluid_mass,
            "killed_inflight": self.killed_inflight,
            "added_at_ns": self.added_at_ns,
            "died_at_ns": self.died_at_ns,
        }

    def __repr__(self) -> str:
        return (
            f"ClusterMachine(#{self.index}, {self.state}, "
            f"out={self.outstanding_count})"
        )

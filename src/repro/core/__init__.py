"""The AccelFlow trace abstraction: the paper's primary contribution."""

from .compiler import (
    CompileError,
    CompiledProgram,
    Convert,
    Fork,
    IfField,
    Offload,
    SendReceive,
    TraceCompiler,
)
from .builder import as_node, as_nodes, atm_link, branch, notify, parallel, seq, trans
from .encoding import (
    MAX_TRACE_BYTES,
    EncodingError,
    TraceNameTable,
    decode_trace,
    encode_trace,
    encoded_nibbles,
    fits,
    split_trace,
)
from .dte import DataTransformEngine, FlatDocument, TransformError
from .glue import GlueCostModel
from .nodes import (
    CONDITIONS,
    AccelStep,
    AtmLinkNode,
    BranchCondition,
    BranchNode,
    DataFormat,
    NotifyNode,
    ParallelNode,
    TraceNode,
    TraceValidationError,
    TransformNode,
)
from .registry import TraceError, TraceRegistry
from .render import render_ascii, render_dot
from .slo import DeadlineAssigner, SloTracker
from .templates import (
    T_ERR,
    TEMPLATE_DESCRIPTIONS,
    error_trace,
    standard_trace_set,
)
from .tenancy import TenantManager
from .trace import ResolvedPath, ResolvedStep, Trace

__all__ = [
    "AccelStep",
    "AtmLinkNode",
    "BranchCondition",
    "BranchNode",
    "CONDITIONS",
    "CompileError",
    "CompiledProgram",
    "Convert",
    "Fork",
    "IfField",
    "Offload",
    "SendReceive",
    "TraceCompiler",
    "DataFormat",
    "DataTransformEngine",
    "FlatDocument",
    "TransformError",
    "DeadlineAssigner",
    "EncodingError",
    "GlueCostModel",
    "MAX_TRACE_BYTES",
    "NotifyNode",
    "ParallelNode",
    "ResolvedPath",
    "ResolvedStep",
    "SloTracker",
    "T_ERR",
    "TEMPLATE_DESCRIPTIONS",
    "TenantManager",
    "Trace",
    "TraceError",
    "TraceNameTable",
    "TraceNode",
    "TraceRegistry",
    "TraceValidationError",
    "TransformNode",
    "as_node",
    "as_nodes",
    "atm_link",
    "branch",
    "decode_trace",
    "encode_trace",
    "encoded_nibbles",
    "error_trace",
    "fits",
    "notify",
    "parallel",
    "seq",
    "split_trace",
    "standard_trace_set",
    "trans",
    "render_ascii",
    "render_dot",
]

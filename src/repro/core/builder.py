"""The AccelFlow programming API (Section V.4, Listing 1).

Programmers construct traces with three combinators::

    trace = seq("TCP", "Decr", "RPC", "Dser",
                branch("compressed",
                       on_true=[trans("json", "string"), "Dcmp"],
                       on_false=[]),
                "LdB",
                name="func_req")

* :func:`seq` defines a linear chain of accelerators (and nested nodes),
* :func:`branch` adds conditional control flow on the previous
  accelerator's output,
* :func:`trans` transforms the data format between two representations.

Accelerators may be given as :class:`AcceleratorKind` values or their
string names ("TCP", "Decr", ...). :func:`atm_link` and :func:`notify`
build trace tails explicitly.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

from ..hw.params import AcceleratorKind
from .nodes import (
    AccelStep,
    AtmLinkNode,
    BranchCondition,
    BranchNode,
    DataFormat,
    NotifyNode,
    ParallelNode,
    TraceNode,
    TraceValidationError,
    TransformNode,
)
from .trace import Trace

__all__ = [
    "seq",
    "branch",
    "trans",
    "parallel",
    "atm_link",
    "notify",
    "as_node",
    "as_nodes",
]

_KIND_BY_NAME = {kind.value.lower(): kind for kind in AcceleratorKind}

NodeSpec = Union[TraceNode, AcceleratorKind, str]


def _lookup_kind(name: str) -> AcceleratorKind:
    try:
        return _KIND_BY_NAME[name.lower()]
    except KeyError:
        raise TraceValidationError(
            f"unknown accelerator {name!r}; known: "
            f"{sorted(k.value for k in AcceleratorKind)}"
        ) from None


def _lookup_format(fmt: Union[DataFormat, str]) -> DataFormat:
    if isinstance(fmt, DataFormat):
        return fmt
    try:
        return DataFormat(fmt.lower())
    except ValueError:
        raise TraceValidationError(
            f"unknown data format {fmt!r}; known: "
            f"{sorted(f.value for f in DataFormat)}"
        ) from None


def as_node(spec: NodeSpec) -> TraceNode:
    """Coerce a node spec (node | kind | name) into a trace node."""
    if isinstance(spec, TraceNode):
        return spec
    if isinstance(spec, AcceleratorKind):
        return AccelStep(spec)
    if isinstance(spec, str):
        return AccelStep(_lookup_kind(spec))
    raise TraceValidationError(f"cannot interpret {spec!r} as a trace node")


def as_nodes(specs: Iterable[NodeSpec]) -> List[TraceNode]:
    return [as_node(spec) for spec in specs]


def seq(*specs: NodeSpec, name: str = "trace") -> Trace:
    """Define a trace as a linear chain of accelerators and nodes."""
    return Trace(name, as_nodes(specs))


def branch(
    condition: Union[BranchCondition, str],
    on_true: Sequence[NodeSpec],
    on_false: Sequence[NodeSpec] = (),
) -> BranchNode:
    """Conditional control flow on the previous accelerator's output."""
    return BranchNode(condition, as_nodes(on_true), as_nodes(on_false))


def trans(src: Union[DataFormat, str], dst: Union[DataFormat, str]) -> TransformNode:
    """Transform the payload between two data formats."""
    return TransformNode(_lookup_format(src), _lookup_format(dst))


def parallel(*arms: Sequence[NodeSpec]) -> ParallelNode:
    """Fork into concurrently executing arms (terminal node)."""
    return ParallelNode([as_nodes(arm) for arm in arms])


def atm_link(next_trace: str) -> AtmLinkNode:
    """Tail link: continue with the named trace stored in the ATM."""
    return AtmLinkNode(next_trace)


def notify(error: bool = False) -> NotifyNode:
    """Explicit tail: store results and notify the initiating core."""
    return NotifyNode(error=error)

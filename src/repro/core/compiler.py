"""Automated trace synthesis (the paper's Section IX future work).

The paper's programmers hand-write traces from templates or the
builder API; "automating trace generation via compiler and runtime
infrastructures" is left as future work. This module implements that
compiler for a small annotated IR:

* ``Offload(kind)`` — a code section annotated to run on an accelerator.
* ``IfField(condition, then, orelse, rare=...)`` — control flow on a
  payload field; ``rare`` marks the arm as infrequently executed.
* ``Convert(src, dst)`` — a data-format change between sections.
* ``SendReceive(request, response)`` — an annotated network round trip:
  the request suffix and response prefix become two ATM-linked traces.
* ``Fork(arms)`` — annotated independent continuations.

``TraceCompiler.compile`` lowers a program to a set of named traces:

1. network round trips split the program (the request trace gets an ATM
   tail pointing at the response trace, Section IV-B),
2. rare arms are *extracted into their own traces* reached through the
   ATM, so the common-case trace stays small on the wire (the paper
   does exactly this for the error arms of T6/T7/T10),
3. anything exceeding the 16-accelerator-slot budget is split into
   ATM-chained subtraces,
4. the result registers into a :class:`TraceRegistry` and is validated
   closed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..hw.params import AcceleratorKind
from .builder import as_node
from .encoding import fits, split_trace
from .nodes import (
    AccelStep,
    AtmLinkNode,
    BranchCondition,
    BranchNode,
    DataFormat,
    ParallelNode,
    TraceNode,
    TransformNode,
)
from .registry import TraceRegistry
from .trace import Trace

__all__ = [
    "Offload",
    "IfField",
    "Convert",
    "SendReceive",
    "Fork",
    "CompileError",
    "TraceCompiler",
    "CompiledProgram",
]


class CompileError(Exception):
    """The annotated program cannot be lowered to traces."""


@dataclass(frozen=True)
class Offload:
    """A code section annotated to run on the given accelerator."""

    kind: Union[AcceleratorKind, str]


@dataclass(frozen=True)
class Convert:
    """An annotated data-format change."""

    src: Union[DataFormat, str]
    dst: Union[DataFormat, str]


@dataclass(frozen=True)
class IfField:
    """Conditional control flow on a payload field.

    ``rare`` marks an arm as infrequently executed ("exceptions or
    errors", Section IV-A): the compiler moves it into its own trace so
    the common case never carries its bytes.
    """

    condition: Union[BranchCondition, str]
    then: Tuple = ()
    orelse: Tuple = ()
    rare: Optional[str] = None  # None | "then" | "orelse"

    def __post_init__(self):
        if self.rare not in (None, "then", "orelse"):
            raise CompileError(f"rare must be 'then' or 'orelse', got {self.rare!r}")


@dataclass(frozen=True)
class SendReceive:
    """A network round trip: request suffix, then the response program."""

    request: Tuple
    response: Tuple


@dataclass(frozen=True)
class Fork:
    """Independent continuations executed concurrently."""

    arms: Tuple[Tuple, ...]


Program = Sequence


@dataclass
class CompiledProgram:
    """Output of the compiler: the entry trace plus all helpers."""

    entry: str
    traces: Dict[str, Trace] = field(default_factory=dict)

    def register_into(self, registry: TraceRegistry) -> None:
        for name, trace in self.traces.items():
            registry.register(trace, name=name)

    def __len__(self) -> int:
        return len(self.traces)


class TraceCompiler:
    """Lowers annotated programs to ATM-linked trace sets."""

    def __init__(self, name_prefix: str):
        if not name_prefix:
            raise CompileError("compiler needs a non-empty name prefix")
        self.prefix = name_prefix
        self._counter = 0

    # -- public ---------------------------------------------------------
    def compile(self, program: Program) -> CompiledProgram:
        """Compile ``program`` into a closed set of traces."""
        result = CompiledProgram(entry=self.prefix)
        self._counter = 0
        self._lower_segment(list(program), self.prefix, result)
        for name, trace in list(result.traces.items()):
            if not fits(trace):
                self._split(name, trace, result)
        self._validate(result)
        return result

    # -- lowering ---------------------------------------------------------
    def _fresh_name(self, hint: str) -> str:
        self._counter += 1
        return f"{self.prefix}.{hint}{self._counter}"

    def _lower_segment(
        self, items: List, name: str, result: CompiledProgram
    ) -> None:
        """Lower one CPU-uninterrupted segment into a trace."""
        nodes = self._lower_items(items, result)
        if not nodes:
            raise CompileError(f"segment {name!r} contains no operations")
        if not isinstance(nodes[0], AccelStep):
            raise CompileError(
                f"segment {name!r} must start with an offloaded section "
                "(conversions and conditionals need a preceding accelerator)"
            )
        result.traces[name] = Trace(name, nodes)

    def _lower_items(self, items: List, result: CompiledProgram) -> List[TraceNode]:
        nodes: List[TraceNode] = []
        index = 0
        while index < len(items):
            item = items[index]
            rest = items[index + 1:]
            if isinstance(item, Offload):
                nodes.append(as_node(item.kind))
            elif isinstance(item, Convert):
                nodes.append(TransformNode(
                    self._format(item.src), self._format(item.dst)
                ))
            elif isinstance(item, IfField):
                nodes.append(self._lower_if(item, result))
            elif isinstance(item, SendReceive):
                if rest:
                    raise CompileError(
                        "a network round trip must end its segment (the "
                        "response continues in a new trace)"
                    )
                request_nodes = self._lower_items(list(item.request), result)
                response_name = self._fresh_name("recv")
                self._lower_segment(list(item.response), response_name, result)
                nodes.extend(request_nodes)
                nodes.append(AtmLinkNode(response_name))
            elif isinstance(item, Fork):
                if rest:
                    raise CompileError("a fork must be the last item of a segment")
                nodes.append(self._lower_fork(item, result))
            else:
                raise CompileError(f"unknown program item {item!r}")
            index += 1
        return nodes

    def _lower_if(self, item: IfField, result: CompiledProgram) -> BranchNode:
        then_items = list(item.then)
        orelse_items = list(item.orelse)
        if item.rare == "then":
            then_nodes = [self._extract_rare(then_items, result)]
            orelse_nodes = self._lower_items(orelse_items, result)
        elif item.rare == "orelse":
            then_nodes = self._lower_items(then_items, result)
            orelse_nodes = [self._extract_rare(orelse_items, result)]
        else:
            then_nodes = self._lower_items(then_items, result)
            orelse_nodes = self._lower_items(orelse_items, result)
        return BranchNode(item.condition, then_nodes, orelse_nodes)

    def _extract_rare(self, items: List, result: CompiledProgram) -> AtmLinkNode:
        """Move a rare arm into its own ATM-reached trace (Section IV-B)."""
        if not items:
            raise CompileError("a rare arm cannot be empty")
        rare_name = self._fresh_name("rare")
        self._lower_segment(items, rare_name, result)
        return AtmLinkNode(rare_name)

    def _lower_fork(self, item: Fork, result: CompiledProgram) -> ParallelNode:
        arms = []
        for arm_items in item.arms:
            arms.append(self._lower_items(list(arm_items), result))
        return ParallelNode(arms)

    # -- post-passes ------------------------------------------------------
    def _split(self, name: str, trace: Trace, result: CompiledProgram) -> None:
        """Split an over-budget trace into ATM-chained subtraces."""
        del result.traces[name]
        for sub in split_trace(trace):
            result.traces[sub.name] = sub

    def _validate(self, result: CompiledProgram) -> None:
        registry = TraceRegistry()
        for name, trace in result.traces.items():
            registry.register(trace, name=name)
        try:
            registry.validate_closed()
        except Exception as err:  # surface as a compile error
            raise CompileError(f"compiled trace set is not closed: {err}") from err
        for name, trace in result.traces.items():
            if not fits(trace):
                raise CompileError(f"compiled trace {name!r} exceeds the budget")

    @staticmethod
    def _format(fmt: Union[DataFormat, str]) -> DataFormat:
        if isinstance(fmt, DataFormat):
            return fmt
        try:
            return DataFormat(fmt.lower())
        except ValueError:
            raise CompileError(f"unknown data format {fmt!r}") from None

"""The Data Transform Engine (DTE): a working format converter.

The output dispatcher's DTE (Section V.2, Figure 10) converts payloads
between simple representations — string, JSON, BSON and a protobuf-like
wire form — and is "a simplified form of a (De)Ser accelerator, without
the support for nested messages or custom data types". This module
implements those conversions functionally so that examples and tests
can push real payloads through a trace's transformation steps; the
*timing* of a transformation in the simulator comes from
:class:`repro.core.glue.GlueCostModel`.

Canonical in-memory form: a flat ``dict`` mapping string keys to
str/int/float/bool/bytes values (the "app-object" format).

Wire formats:

* ``string`` — ``key=value`` lines with a one-letter type prefix.
* ``json`` — standard JSON (bytes values base64-encoded with a marker).
* ``bson`` — a faithful subset of BSON: int32 document length, typed
  elements (0x01 double, 0x02 string, 0x05 binary, 0x08 bool,
  0x12 int64), NUL terminator.
* ``protobuf`` — tag-length-value with varint keys/lengths.
"""

from __future__ import annotations

import base64
import json
import struct
from typing import Any, Dict, Union

from .nodes import DataFormat

__all__ = ["DataTransformEngine", "TransformError", "FlatDocument"]

FlatDocument = Dict[str, Union[str, int, float, bool, bytes]]

_ALLOWED_TYPES = (str, int, float, bool, bytes)


class TransformError(Exception):
    """Payload cannot be handled by the simplified DTE."""


def _validate_flat(document: Any) -> FlatDocument:
    if not isinstance(document, dict):
        raise TransformError(f"expected a flat document, got {type(document).__name__}")
    for key, value in document.items():
        if not isinstance(key, str):
            raise TransformError(f"non-string key {key!r}")
        if isinstance(value, (dict, list, tuple)):
            raise TransformError(
                f"field {key!r}: nested messages are not supported by the DTE"
            )
        if not isinstance(value, _ALLOWED_TYPES):
            raise TransformError(
                f"field {key!r}: custom data type {type(value).__name__}"
            )
    return document


class DataTransformEngine:
    """Converts flat documents between the supported wire formats."""

    # ------------------------------------------------------------------
    # string: "t:key=value" lines
    # ------------------------------------------------------------------
    _STRING_PREFIXES = {"s": str, "i": int, "f": float, "b": bool, "x": bytes}

    def to_string(self, document: FlatDocument) -> str:
        _validate_flat(document)
        lines = []
        for key, value in sorted(document.items()):
            if "=" in key or "\n" in key:
                raise TransformError(f"key {key!r} not representable as string")
            if isinstance(value, bool):  # bool before int: bool is an int
                lines.append(f"b:{key}={'1' if value else '0'}")
            elif isinstance(value, int):
                lines.append(f"i:{key}={value}")
            elif isinstance(value, float):
                lines.append(f"f:{key}={value!r}")
            elif isinstance(value, bytes):
                lines.append(f"x:{key}={base64.b64encode(value).decode()}")
            else:
                if "\n" in value:
                    raise TransformError(f"field {key!r}: multi-line string")
                lines.append(f"s:{key}={value}")
        return "\n".join(lines)

    def from_string(self, text: str) -> FlatDocument:
        document: FlatDocument = {}
        if not text:
            return document
        for line in text.split("\n"):
            try:
                prefix, rest = line.split(":", 1)
                key, raw = rest.split("=", 1)
            except ValueError:
                raise TransformError(f"malformed string line {line!r}") from None
            kind = self._STRING_PREFIXES.get(prefix)
            if kind is None:
                raise TransformError(f"unknown type prefix {prefix!r}")
            if kind is bool:
                document[key] = raw == "1"
            elif kind is bytes:
                document[key] = base64.b64decode(raw)
            else:
                document[key] = kind(raw)
        return document

    # ------------------------------------------------------------------
    # json
    # ------------------------------------------------------------------
    _BYTES_MARKER = "$b64$"

    def to_json(self, document: FlatDocument) -> str:
        _validate_flat(document)
        encodable = {
            key: (self._BYTES_MARKER + base64.b64encode(value).decode()
                  if isinstance(value, bytes) else value)
            for key, value in document.items()
        }
        return json.dumps(encodable, sort_keys=True)

    def from_json(self, text: str) -> FlatDocument:
        try:
            raw = json.loads(text)
        except json.JSONDecodeError as err:
            raise TransformError(f"bad JSON: {err}") from None
        document: FlatDocument = {}
        _validate_flat(raw)
        for key, value in raw.items():
            if isinstance(value, str) and value.startswith(self._BYTES_MARKER):
                document[key] = base64.b64decode(value[len(self._BYTES_MARKER):])
            else:
                document[key] = value
        return document

    # ------------------------------------------------------------------
    # bson (subset)
    # ------------------------------------------------------------------
    def to_bson(self, document: FlatDocument) -> bytes:
        _validate_flat(document)
        body = b""
        for key, value in sorted(document.items()):
            cname = key.encode() + b"\x00"
            if isinstance(value, bool):
                body += b"\x08" + cname + (b"\x01" if value else b"\x00")
            elif isinstance(value, int):
                body += b"\x12" + cname + struct.pack("<q", value)
            elif isinstance(value, float):
                body += b"\x01" + cname + struct.pack("<d", value)
            elif isinstance(value, bytes):
                body += (b"\x05" + cname + struct.pack("<i", len(value))
                         + b"\x00" + value)
            else:
                encoded = value.encode()
                body += (b"\x02" + cname
                         + struct.pack("<i", len(encoded) + 1) + encoded + b"\x00")
        return struct.pack("<i", len(body) + 5) + body + b"\x00"

    def from_bson(self, data: bytes) -> FlatDocument:
        if len(data) < 5:
            raise TransformError("truncated BSON document")
        (length,) = struct.unpack_from("<i", data, 0)
        if length != len(data) or data[-1:] != b"\x00":
            raise TransformError("bad BSON framing")
        document: FlatDocument = {}
        pos = 4
        end = len(data) - 1
        while pos < end:
            element_type = data[pos]
            pos += 1
            key_end = data.index(b"\x00", pos)
            key = data[pos:key_end].decode()
            pos = key_end + 1
            if element_type == 0x08:
                document[key] = data[pos] == 1
                pos += 1
            elif element_type == 0x12:
                (document[key],) = struct.unpack_from("<q", data, pos)
                pos += 8
            elif element_type == 0x01:
                (document[key],) = struct.unpack_from("<d", data, pos)
                pos += 8
            elif element_type == 0x05:
                (blob_len,) = struct.unpack_from("<i", data, pos)
                pos += 5  # length + subtype byte
                document[key] = data[pos:pos + blob_len]
                pos += blob_len
            elif element_type == 0x02:
                (str_len,) = struct.unpack_from("<i", data, pos)
                pos += 4
                document[key] = data[pos:pos + str_len - 1].decode()
                pos += str_len
            elif element_type in (0x03, 0x04):
                raise TransformError("nested BSON documents are not supported")
            else:
                raise TransformError(f"unsupported BSON element {element_type:#x}")
        return document

    # ------------------------------------------------------------------
    # protobuf-like tag-length-value
    # ------------------------------------------------------------------
    @staticmethod
    def _varint(value: int) -> bytes:
        out = b""
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                out += bytes([byte | 0x80])
            else:
                return out + bytes([byte])

    @staticmethod
    def _read_varint(data: bytes, pos: int):
        shift = 0
        value = 0
        while True:
            if pos >= len(data):
                raise TransformError("truncated varint")
            byte = data[pos]
            pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value, pos
            shift += 7

    _PB_KINDS = {str: 0, int: 1, float: 2, bool: 3, bytes: 4}

    def to_protobuf(self, document: FlatDocument) -> bytes:
        _validate_flat(document)
        out = b""
        for key, value in sorted(document.items()):
            kind = 3 if isinstance(value, bool) else self._PB_KINDS[type(value)]
            if isinstance(value, bool):
                payload = b"\x01" if value else b"\x00"
            elif isinstance(value, int):
                payload = struct.pack("<q", value)
            elif isinstance(value, float):
                payload = struct.pack("<d", value)
            elif isinstance(value, bytes):
                payload = value
            else:
                payload = value.encode()
            key_bytes = key.encode()
            out += (self._varint(kind) + self._varint(len(key_bytes)) + key_bytes
                    + self._varint(len(payload)) + payload)
        return out

    def from_protobuf(self, data: bytes) -> FlatDocument:
        document: FlatDocument = {}
        pos = 0
        while pos < len(data):
            kind, pos = self._read_varint(data, pos)
            key_len, pos = self._read_varint(data, pos)
            key = data[pos:pos + key_len].decode()
            pos += key_len
            payload_len, pos = self._read_varint(data, pos)
            payload = data[pos:pos + payload_len]
            pos += payload_len
            if kind == 0:
                document[key] = payload.decode()
            elif kind == 1:
                (document[key],) = struct.unpack("<q", payload)
            elif kind == 2:
                (document[key],) = struct.unpack("<d", payload)
            elif kind == 3:
                document[key] = payload == b"\x01"
            elif kind == 4:
                document[key] = payload
            else:
                raise TransformError(f"unknown protobuf field kind {kind}")
        return document

    # ------------------------------------------------------------------
    # generic conversion
    # ------------------------------------------------------------------
    _ENCODERS = {
        DataFormat.STRING: "to_string",
        DataFormat.JSON: "to_json",
        DataFormat.BSON: "to_bson",
        DataFormat.PROTOBUF: "to_protobuf",
    }
    _DECODERS = {
        DataFormat.STRING: "from_string",
        DataFormat.JSON: "from_json",
        DataFormat.BSON: "from_bson",
        DataFormat.PROTOBUF: "from_protobuf",
    }

    def encode(self, document: FlatDocument, fmt: DataFormat):
        """Encode the app-object ``document`` into ``fmt``."""
        if fmt == DataFormat.APP_OBJECT:
            return dict(_validate_flat(document))
        return getattr(self, self._ENCODERS[fmt])(document)

    def decode(self, payload, fmt: DataFormat) -> FlatDocument:
        """Decode a ``fmt`` payload into the app-object form."""
        if fmt == DataFormat.APP_OBJECT:
            return dict(_validate_flat(payload))
        return getattr(self, self._DECODERS[fmt])(payload)

    def transform(self, payload, src: DataFormat, dst: DataFormat):
        """Convert ``payload`` from ``src`` format to ``dst`` format."""
        if src == dst:
            return payload
        return self.encode(self.decode(payload, src), dst)

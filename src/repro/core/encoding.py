"""Binary trace encoding: 4-bit accelerator IDs, 16-slot traces, splitting.

The paper encodes accelerators as 4-bit IDs and caps the accelerator
sequence of a trace at 8 bytes — "up to 16 accelerator invocations per
trace" (Section IV-A). Branch conditions, data-transformation fields
and the ATM tail address are additional metadata fields of the queue
entry (whose trace region is part of the 2.1 KB entry), so they do not
consume accelerator slots. Sequences longer than 16 invocations are
split into subtraces chained through the ATM.

This module implements:

* a concrete nibble-stream wire encoding for the *whole* trace
  (accelerator slots + control metadata), bounded by
  ``MAX_ENCODED_BYTES``,
* the 16-slot accelerator budget check (``fits``),
* a decoder used by round-trip property tests,
* the subtrace splitter.

Nibble opcodes::

    0x0-0x8  accelerator IDs (enum order: TCP..LdB)
    0x9      BRANCH: cond nibble, len(true) nibble, true arm,
                     len(false) nibble, false arm
    0xA      TRANSFORM: src-format nibble, dst-format nibble
    0xB      ATM link: 4 nibbles of 16-bit trace id (terminal)
    0xC      NOTIFY CPU (terminal)
    0xD      NOTIFY CPU with error (terminal)
    0xE      PARALLEL: n-arms nibble, then per arm len nibble + nodes
    0xF      padding
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..hw.params import ACCEL_KINDS, AcceleratorKind
from .nodes import (
    CONDITIONS,
    AccelStep,
    AtmLinkNode,
    BranchNode,
    DataFormat,
    NotifyNode,
    ParallelNode,
    TraceNode,
    TransformNode,
)
from .trace import Trace

__all__ = [
    "MAX_TRACE_BYTES",
    "MAX_ACCEL_SLOTS",
    "MAX_ENCODED_BYTES",
    "EncodingError",
    "TraceNameTable",
    "accel_slots",
    "encode_nodes",
    "encode_trace",
    "decode_trace",
    "encoded_nibbles",
    "fits",
    "split_trace",
]

#: The paper's accelerator-sequence budget: 8 bytes of 4-bit IDs.
MAX_TRACE_BYTES = 8
MAX_ACCEL_SLOTS = MAX_TRACE_BYTES * 2
#: Bound on the full wire encoding (slots + control metadata); the
#: queue entry reserves this much trace space beyond the 2 KB payload.
MAX_ENCODED_BYTES = 64
_MAX_NIBBLES = MAX_ENCODED_BYTES * 2

_OP_BRANCH = 0x9
_OP_TRANSFORM = 0xA
_OP_ATM = 0xB
_OP_NOTIFY = 0xC
_OP_NOTIFY_ERROR = 0xD
_OP_PARALLEL = 0xE
_OP_PAD = 0xF

_KIND_CODES: Dict[AcceleratorKind, int] = {k: i for i, k in enumerate(ACCEL_KINDS)}
_CODE_KINDS: Dict[int, AcceleratorKind] = {i: k for k, i in _KIND_CODES.items()}

_CONDITION_CODES: Dict[str, int] = {
    name: i for i, name in enumerate(sorted(CONDITIONS))
}
_CODE_CONDITIONS: Dict[int, str] = {i: n for n, i in _CONDITION_CODES.items()}

_FORMAT_CODES: Dict[DataFormat, int] = {f: i for i, f in enumerate(DataFormat)}
_CODE_FORMATS: Dict[int, DataFormat] = {i: f for f, i in _FORMAT_CODES.items()}


class EncodingError(Exception):
    """A trace cannot be encoded within the hardware limits."""


class TraceNameTable:
    """Bidirectional trace-name <-> 16-bit id mapping for ATM links."""

    def __init__(self):
        self._ids: Dict[str, int] = {}
        self._names: Dict[int, str] = {}

    def id_of(self, name: str) -> int:
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        new_id = len(self._ids)
        if new_id > 0xFFFF:
            raise EncodingError("trace name table overflow (>65536 traces)")
        self._ids[name] = new_id
        self._names[new_id] = name
        return new_id

    def name_of(self, trace_id: int) -> str:
        try:
            return self._names[trace_id]
        except KeyError:
            raise EncodingError(f"unknown trace id {trace_id}") from None

    def __len__(self) -> int:
        return len(self._ids)


def accel_slots(nodes: Sequence[TraceNode]) -> int:
    """Accelerator-ID slots a node sequence occupies (all arms counted)."""
    slots = 0
    for node in nodes:
        if isinstance(node, AccelStep):
            slots += 1
        elif isinstance(node, BranchNode):
            slots += accel_slots(node.on_true) + accel_slots(node.on_false)
        elif isinstance(node, ParallelNode):
            slots += sum(accel_slots(arm) for arm in node.arms)
    return slots


def encode_nodes(nodes: Sequence[TraceNode], names: TraceNameTable) -> List[int]:
    """Encode a node sequence into a list of nibbles."""
    nibbles: List[int] = []
    for node in nodes:
        if isinstance(node, AccelStep):
            nibbles.append(_KIND_CODES[node.kind])
        elif isinstance(node, BranchNode):
            cond_code = _CONDITION_CODES.get(node.condition.name)
            if cond_code is None:
                raise EncodingError(
                    f"condition {node.condition.name!r} has no hardware code"
                )
            true_arm = encode_nodes(node.on_true, names)
            false_arm = encode_nodes(node.on_false, names)
            if len(true_arm) > 0xF or len(false_arm) > 0xF:
                raise EncodingError("branch arm exceeds 15 nibbles")
            nibbles.append(_OP_BRANCH)
            nibbles.append(cond_code)
            nibbles.append(len(true_arm))
            nibbles.extend(true_arm)
            nibbles.append(len(false_arm))
            nibbles.extend(false_arm)
        elif isinstance(node, TransformNode):
            nibbles.append(_OP_TRANSFORM)
            nibbles.append(_FORMAT_CODES[node.src])
            nibbles.append(_FORMAT_CODES[node.dst])
        elif isinstance(node, AtmLinkNode):
            trace_id = names.id_of(node.next_trace)
            nibbles.append(_OP_ATM)
            nibbles.extend(
                [(trace_id >> 12) & 0xF, (trace_id >> 8) & 0xF,
                 (trace_id >> 4) & 0xF, trace_id & 0xF]
            )
        elif isinstance(node, NotifyNode):
            nibbles.append(_OP_NOTIFY_ERROR if node.error else _OP_NOTIFY)
        elif isinstance(node, ParallelNode):
            arms = [encode_nodes(arm, names) for arm in node.arms]
            if len(arms) > 0xF:
                raise EncodingError("too many parallel arms")
            nibbles.append(_OP_PARALLEL)
            nibbles.append(len(arms))
            for arm in arms:
                if len(arm) > 0xF:
                    raise EncodingError("parallel arm exceeds 15 nibbles")
                nibbles.append(len(arm))
                nibbles.extend(arm)
        else:  # pragma: no cover - defensive
            raise EncodingError(f"cannot encode {type(node).__name__}")
    return nibbles


def encoded_nibbles(trace: Trace, names: TraceNameTable = None) -> int:
    """Encoded size of a trace in nibbles (slots + metadata)."""
    if names is None:
        names = TraceNameTable()
    return len(encode_nodes(trace.nodes, names))


def fits(trace: Trace, names: TraceNameTable = None) -> bool:
    """Whether the trace fits the hardware budget.

    Two limits apply: at most 16 accelerator-ID slots (the paper's
    8-byte sequence), and the full wire encoding within the queue
    entry's trace region.
    """
    if accel_slots(trace.nodes) > MAX_ACCEL_SLOTS:
        return False
    try:
        return encoded_nibbles(trace, names) <= _MAX_NIBBLES
    except EncodingError:
        return False


def encode_trace(trace: Trace, names: TraceNameTable = None) -> bytes:
    """Encode a trace into its wire form (nibbles padded to bytes)."""
    if names is None:
        names = TraceNameTable()
    slots = accel_slots(trace.nodes)
    if slots > MAX_ACCEL_SLOTS:
        raise EncodingError(
            f"trace {trace.name!r} has {slots} accelerator slots "
            f"(max {MAX_ACCEL_SLOTS}); split it into subtraces"
        )
    nibbles = encode_nodes(trace.nodes, names)
    if len(nibbles) > _MAX_NIBBLES:
        raise EncodingError(
            f"trace {trace.name!r} needs {len(nibbles)} nibbles "
            f"(max {_MAX_NIBBLES})"
        )
    if len(nibbles) % 2:
        nibbles = nibbles + [_OP_PAD]
    return bytes((nibbles[i] << 4) | nibbles[i + 1] for i in range(0, len(nibbles), 2))


def _decode(nibbles: List[int], pos: int, end: int) -> Tuple[List[TraceNode], int]:
    nodes: List[TraceNode] = []
    while pos < end:
        op = nibbles[pos]
        pos += 1
        if op <= 0x8:
            nodes.append(AccelStep(_CODE_KINDS[op]))
        elif op == _OP_BRANCH:
            cond = _CODE_CONDITIONS[nibbles[pos]]
            pos += 1
            true_len = nibbles[pos]
            pos += 1
            true_arm, pos = _decode(nibbles, pos, pos + true_len)
            false_len = nibbles[pos]
            pos += 1
            false_arm, pos = _decode(nibbles, pos, pos + false_len)
            nodes.append(BranchNode(cond, true_arm, false_arm))
        elif op == _OP_TRANSFORM:
            src = _CODE_FORMATS[nibbles[pos]]
            dst = _CODE_FORMATS[nibbles[pos + 1]]
            pos += 2
            nodes.append(TransformNode(src, dst))
        elif op == _OP_ATM:
            trace_id = (
                (nibbles[pos] << 12)
                | (nibbles[pos + 1] << 8)
                | (nibbles[pos + 2] << 4)
                | nibbles[pos + 3]
            )
            pos += 4
            nodes.append(AtmLinkNode(f"#atm:{trace_id}"))
        elif op == _OP_NOTIFY:
            nodes.append(NotifyNode(error=False))
        elif op == _OP_NOTIFY_ERROR:
            nodes.append(NotifyNode(error=True))
        elif op == _OP_PARALLEL:
            n_arms = nibbles[pos]
            pos += 1
            arms = []
            for _ in range(n_arms):
                arm_len = nibbles[pos]
                pos += 1
                arm, pos = _decode(nibbles, pos, pos + arm_len)
                arms.append(arm)
            nodes.append(ParallelNode(arms))
        elif op == _OP_PAD:
            continue
        else:  # pragma: no cover - defensive
            raise EncodingError(f"bad opcode {op:#x}")
    return nodes, pos


def decode_trace(
    data: bytes, name: str = "decoded", names: TraceNameTable = None
) -> Trace:
    """Decode wire bytes back into a trace (resolving ATM ids if given)."""
    nibbles: List[int] = []
    for byte in data:
        nibbles.append((byte >> 4) & 0xF)
        nibbles.append(byte & 0xF)
    nodes, _ = _decode(nibbles, 0, len(nibbles))
    if names is not None:
        nodes = [_resolve_links(node, names) for node in nodes]
    return Trace(name, nodes)


def _resolve_links(node: TraceNode, names: TraceNameTable) -> TraceNode:
    if isinstance(node, AtmLinkNode) and node.next_trace.startswith("#atm:"):
        trace_id = int(node.next_trace[5:])
        return AtmLinkNode(names.name_of(trace_id))
    if isinstance(node, BranchNode):
        return BranchNode(
            node.condition,
            [_resolve_links(n, names) for n in node.on_true],
            [_resolve_links(n, names) for n in node.on_false],
        )
    if isinstance(node, ParallelNode):
        return ParallelNode(
            [[_resolve_links(n, names) for n in arm] for arm in node.arms]
        )
    return node


def split_trace(trace: Trace, names: TraceNameTable = None) -> List[Trace]:
    """Split a too-long trace into ATM-chained subtraces.

    Splitting happens at top-level accelerator-step boundaries; each
    subtrace but the last gets an :class:`AtmLinkNode` tail pointing at
    its successor. Traces that already fit are returned unchanged.
    """
    if names is None:
        names = TraceNameTable()
    if fits(trace, names):
        return [trace]

    pieces: List[List[TraceNode]] = []
    current: List[TraceNode] = []
    current_slots = 0
    for node in trace.nodes:
        node_slots = accel_slots([node])
        if node_slots > MAX_ACCEL_SLOTS:
            raise EncodingError(
                f"trace {trace.name!r}: single node holds {node_slots} "
                "accelerator slots and cannot be split further"
            )
        boundary_ok = isinstance(node, AccelStep) and current
        if current_slots + node_slots > MAX_ACCEL_SLOTS and boundary_ok:
            pieces.append(current)
            current = []
            current_slots = 0
        current.append(node)
        current_slots += node_slots
    if current:
        pieces.append(current)

    subtraces: List[Trace] = []
    for index, piece in enumerate(pieces):
        sub_name = trace.name if index == 0 else f"{trace.name}#{index}"
        if index < len(pieces) - 1:
            piece = piece + [AtmLinkNode(f"{trace.name}#{index + 1}")]
        subtraces.append(Trace(sub_name, piece))
    for sub in subtraces:
        if not fits(sub, names):
            raise EncodingError(
                f"subtrace {sub.name!r} still does not fit after splitting"
            )
    return subtraces

"""Output-dispatcher glue-instruction cost model (Section VII.B.2).

The output dispatcher of an accelerator is a small FSM executing
RISC-like instructions (Figure 8). The paper reports:

* ~15 instructions for the common case (no branch / end / transform),
* +7 instructions to resolve a branch condition,
* 12-20 instructions at end of trace (ATM read vs. DMA + notify),
* 12 instructions for a 2 KB data-format transformation,
* ~50 instructions worst case; 18 average across the services.

Instructions retire at one per cycle at the accelerator clock. The DTE
additionally streams the payload at scratchpad bandwidth for
transformations.
"""

from __future__ import annotations

from typing import Dict

from ..hw.params import GHZ, cycles_to_ns
from .trace import ResolvedStep

__all__ = ["GlueCostModel"]


class GlueCostModel:
    """Instruction counts and timing for output-dispatcher operations."""

    BASE_INSTRUCTIONS = 15
    BRANCH_INSTRUCTIONS = 7
    END_ATM_INSTRUCTIONS = 12
    END_NOTIFY_INSTRUCTIONS = 20
    TRANSFORM_INSTRUCTIONS = 12
    #: The transform instruction count is quoted for 2 KB payloads; the
    #: DTE streams larger payloads at this bandwidth (bytes/ns).
    DTE_BYTES_PER_NS = 100.0

    def __init__(self, ghz: float = GHZ):
        self.ghz = ghz
        self.operations = 0
        self.total_instructions = 0
        self.branches_resolved = 0
        self.transforms_performed = 0
        self.atm_reads = 0
        self.notifies = 0

    def instructions_for(self, step: ResolvedStep) -> int:
        """Instruction count of one output-dispatcher operation."""
        instructions = self.BASE_INSTRUCTIONS
        instructions += self.BRANCH_INSTRUCTIONS * step.branches_after
        instructions += self.TRANSFORM_INSTRUCTIONS * step.transforms_after
        if step.atm_read_after:
            instructions += self.END_ATM_INSTRUCTIONS
        if step.notify_after:
            instructions += self.END_NOTIFY_INSTRUCTIONS
        return instructions

    def record(self, step: ResolvedStep) -> int:
        """Account one dispatcher operation; returns its instructions."""
        instructions = self.instructions_for(step)
        self.operations += 1
        self.total_instructions += instructions
        self.branches_resolved += step.branches_after
        self.transforms_performed += step.transforms_after
        if step.atm_read_after:
            self.atm_reads += 1
        if step.notify_after:
            self.notifies += 1
        return instructions

    def dispatch_time_ns(self, step: ResolvedStep, payload_bytes: int = 0) -> float:
        """Wall time of one dispatcher operation (instructions + DTE)."""
        time_ns = cycles_to_ns(float(self.instructions_for(step)), self.ghz)
        if step.transforms_after:
            time_ns += (
                step.transforms_after * payload_bytes / self.DTE_BYTES_PER_NS
            )
        return time_ns

    def average_instructions(self) -> float:
        """Average instructions per dispatcher operation (paper: ~18)."""
        if self.operations == 0:
            return 0.0
        return self.total_instructions / self.operations

    def stats(self) -> Dict[str, float]:
        return {
            "operations": float(self.operations),
            "total_instructions": float(self.total_instructions),
            "average_instructions": self.average_instructions(),
            "branches_resolved": float(self.branches_resolved),
            "transforms_performed": float(self.transforms_performed),
            "atm_reads": float(self.atm_reads),
            "notifies": float(self.notifies),
        }

"""Trace node types: accelerator steps, branches, transforms, links.

A trace (Section IV-A) is a small program over the accelerator
ensemble. Its nodes are:

* :class:`AccelStep` — invoke one accelerator.
* :class:`BranchNode` — a condition over payload fields, resolved by the
  *previous* accelerator's output dispatcher, selecting one of two arms.
* :class:`TransformNode` — a data-format change (string/JSON/BSON/...)
  performed by the previous accelerator's Data Transform Engine.
* :class:`ParallelNode` — fork into arms executed concurrently (e.g.
  trace T6 both notifies the CPU and writes back to the DB cache).
* :class:`AtmLinkNode` — tail link: fetch the next trace from the ATM.
* :class:`NotifyNode` — deposit results and notify the initiating core.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Sequence, Union

from ..hw.params import AcceleratorKind

__all__ = [
    "DataFormat",
    "BranchCondition",
    "CONDITIONS",
    "TraceNode",
    "AccelStep",
    "BranchNode",
    "TransformNode",
    "ParallelNode",
    "AtmLinkNode",
    "NotifyNode",
    "TraceValidationError",
]


class TraceValidationError(Exception):
    """A trace is structurally invalid."""


class DataFormat(enum.Enum):
    """Payload wire/application formats the DTE can convert between.

    The engine is a simplified (De)Ser unit (Section V.2): flat formats
    only, no nested messages or custom types.
    """

    STRING = "string"
    JSON = "json"
    BSON = "bson"
    PROTOBUF = "protobuf"
    APP_OBJECT = "app-object"


class BranchCondition:
    """A named, simple condition over payload fields.

    The paper's conditions (Section VII.B.2) check a field in the output
    queue entry: Compressed?, Hit?, Found?, Exception?, C-Compressed?.
    ``fields`` may name several payload bits combined with ``op``
    ("and"/"or"), covering forms like "if (field1 & field2)".
    """

    def __init__(self, name: str, fields: Sequence[str], op: str = "and"):
        if not fields:
            raise TraceValidationError("a branch condition needs at least one field")
        if op not in ("and", "or"):
            raise TraceValidationError(f"unknown condition op {op!r}")
        self.name = name
        self.fields = tuple(fields)
        self.op = op

    def evaluate(self, state: Dict[str, bool]) -> bool:
        """Resolve the condition against the request's payload fields.

        Missing fields read as False (a clear bit).
        """
        values = (bool(state.get(field, False)) for field in self.fields)
        return all(values) if self.op == "and" else any(values)

    def __repr__(self) -> str:
        return f"BranchCondition({self.name!r}, fields={self.fields}, op={self.op!r})"

    def __eq__(self, other) -> bool:
        if isinstance(other, BranchCondition):
            return (self.name, self.fields, self.op) == (
                other.name,
                other.fields,
                other.op,
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.name, self.fields, self.op))


#: The conditions that appear in the paper's traces.
CONDITIONS: Dict[str, BranchCondition] = {
    "compressed": BranchCondition("compressed", ["compressed"]),
    "hit": BranchCondition("hit", ["hit"]),
    "found": BranchCondition("found", ["found"]),
    "exception": BranchCondition("exception", ["exception"]),
    "c_compressed": BranchCondition("c_compressed", ["c_compressed"]),
}


class TraceNode:
    """Base class for trace nodes."""

    __slots__ = ()


class AccelStep(TraceNode):
    """Invoke one accelerator."""

    __slots__ = ("kind",)

    def __init__(self, kind: AcceleratorKind):
        if not isinstance(kind, AcceleratorKind):
            raise TraceValidationError(f"{kind!r} is not an AcceleratorKind")
        self.kind = kind

    def __repr__(self) -> str:
        return f"AccelStep({self.kind.value})"

    def __eq__(self, other) -> bool:
        if isinstance(other, AccelStep):
            return self.kind == other.kind
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("accel", self.kind))


NodeList = List[TraceNode]


class BranchNode(TraceNode):
    """Conditional control flow inside a trace.

    The chosen arm executes, then control continues with the nodes after
    the branch — unless the arm ends in a terminal node
    (:class:`NotifyNode` or :class:`AtmLinkNode`), which ends the trace.
    """

    __slots__ = ("condition", "on_true", "on_false")

    def __init__(
        self,
        condition: Union[BranchCondition, str],
        on_true: Sequence[TraceNode],
        on_false: Sequence[TraceNode] = (),
    ):
        if isinstance(condition, str):
            try:
                condition = CONDITIONS[condition]
            except KeyError:
                raise TraceValidationError(
                    f"unknown condition {condition!r}; known: {sorted(CONDITIONS)}"
                ) from None
        self.condition = condition
        self.on_true: NodeList = list(on_true)
        self.on_false: NodeList = list(on_false)

    def arm(self, taken: bool) -> NodeList:
        return self.on_true if taken else self.on_false

    def __repr__(self) -> str:
        return (
            f"BranchNode({self.condition.name}, "
            f"true={len(self.on_true)} nodes, false={len(self.on_false)} nodes)"
        )


class TransformNode(TraceNode):
    """Data-format transformation performed by the output dispatcher."""

    __slots__ = ("src", "dst")

    #: Conversions the simplified DTE supports.
    SUPPORTED = {
        (DataFormat.STRING, DataFormat.JSON),
        (DataFormat.JSON, DataFormat.STRING),
        (DataFormat.STRING, DataFormat.BSON),
        (DataFormat.BSON, DataFormat.STRING),
        (DataFormat.JSON, DataFormat.BSON),
        (DataFormat.BSON, DataFormat.JSON),
        (DataFormat.PROTOBUF, DataFormat.APP_OBJECT),
        (DataFormat.APP_OBJECT, DataFormat.PROTOBUF),
    }

    def __init__(self, src: DataFormat, dst: DataFormat):
        if src == dst:
            raise TraceValidationError("transformation must change the format")
        if (src, dst) not in self.SUPPORTED:
            raise TraceValidationError(
                f"the simplified DTE cannot convert {src.value} -> {dst.value}"
            )
        self.src = src
        self.dst = dst

    def __repr__(self) -> str:
        return f"TransformNode({self.src.value} -> {self.dst.value})"

    def __eq__(self, other) -> bool:
        if isinstance(other, TransformNode):
            return (self.src, self.dst) == (other.src, other.dst)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("transform", self.src, self.dst))


class ParallelNode(TraceNode):
    """Fork into concurrently executing arms.

    Exactly one arm may be *critical* (end with a CPU notification); the
    request's latency is that arm's completion. Other arms are
    fire-and-forget (e.g. the DB-cache write-back of trace T6).
    """

    __slots__ = ("arms",)

    def __init__(self, arms: Sequence[Sequence[TraceNode]]):
        if len(arms) < 2:
            raise TraceValidationError("a parallel node needs at least two arms")
        self.arms: List[NodeList] = [list(arm) for arm in arms]

    def __repr__(self) -> str:
        return f"ParallelNode({len(self.arms)} arms)"


class AtmLinkNode(TraceNode):
    """Tail of a trace: the ATM address of the next trace to run.

    Traces are built before ATM addresses exist, so the link is symbolic
    (the name of the follow-on trace); addresses are bound when the
    trace set is installed into a server's ATM.
    """

    __slots__ = ("next_trace",)

    def __init__(self, next_trace: str):
        if not next_trace:
            raise TraceValidationError("ATM link needs a trace name")
        self.next_trace = next_trace

    def __repr__(self) -> str:
        return f"AtmLinkNode(-> {self.next_trace})"


class NotifyNode(TraceNode):
    """Deposit results to memory and notify the initiating CPU core."""

    __slots__ = ("error",)

    def __init__(self, error: bool = False):
        #: True when this notification reports an error/exception to the
        #: user (the error arms of T6/T7/T10).
        self.error = error

    def __repr__(self) -> str:
        return f"NotifyNode(error={self.error})"

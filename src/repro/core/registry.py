"""Trace registry: the per-service catalogue of registered traces.

Services register traces once (from the standard templates or built via
the :mod:`repro.core.builder` API) and invoke them by name with
``run_trace`` (Listing 2). The registry also resolves the symbolic ATM
links between traces and checks the whole set is closed and encodable.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .encoding import TraceNameTable, fits, split_trace
from .templates import standard_trace_set
from .trace import Trace

__all__ = ["TraceRegistry", "TraceError"]


class TraceError(Exception):
    """Raised to the application when trace execution fails.

    Mirrors the exception of Listing 2: the service catches it and runs
    its ``cpu_fallback`` routine.
    """


class TraceRegistry:
    """Named traces of one service, with ATM-link resolution."""

    def __init__(self, traces: Optional[Dict[str, Trace]] = None):
        self._traces: Dict[str, Trace] = {}
        if traces:
            for name, trace in traces.items():
                self.register(trace, name=name)

    @classmethod
    def with_standard_templates(cls) -> "TraceRegistry":
        """A registry preloaded with the paper's T1-T12 catalogue."""
        return cls(standard_trace_set())

    def register(self, trace: Trace, name: Optional[str] = None) -> None:
        """Register ``trace`` (splitting it if it exceeds 8 bytes)."""
        name = name or trace.name
        if name in self._traces:
            raise TraceError(f"trace {name!r} already registered")
        if fits(trace):
            self._traces[name] = trace
            return
        # Too long for the 8-byte hardware trace: store as a chain of
        # ATM-linked subtraces under the original entry name.
        for sub in split_trace(trace):
            sub_name = name if sub.name == trace.name else sub.name
            if sub_name in self._traces:
                raise TraceError(f"subtrace {sub_name!r} collides")
            self._traces[sub_name] = sub

    def get(self, name: str) -> Trace:
        try:
            return self._traces[name]
        except KeyError:
            raise TraceError(
                f"unknown trace {name!r}; registered: {sorted(self._traces)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __len__(self) -> int:
        return len(self._traces)

    def names(self) -> List[str]:
        return sorted(self._traces)

    def traces(self) -> Iterable[Trace]:
        return self._traces.values()

    def validate_closed(self) -> None:
        """Check every ATM link points at a registered trace."""
        for trace in self._traces.values():
            for linked in trace.linked_traces():
                if linked not in self._traces:
                    raise TraceError(
                        f"trace {trace.name!r} links to unregistered {linked!r}"
                    )

    def name_table(self) -> TraceNameTable:
        """A stable name<->id table covering all registered traces."""
        table = TraceNameTable()
        for name in self.names():
            table.id_of(name)
        return table

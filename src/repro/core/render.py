"""Human-readable renderings of traces: ASCII art and Graphviz dot.

The paper presents traces as box-and-arrow diagrams (Figures 2, 4, 7);
these helpers produce the same pictures from :class:`Trace` objects so
examples, docs and debugging sessions can show what a trace does.
"""

from __future__ import annotations

from typing import List

from .nodes import (
    AccelStep,
    AtmLinkNode,
    BranchNode,
    NotifyNode,
    ParallelNode,
    TraceNode,
    TransformNode,
)
from .trace import Trace

__all__ = ["render_ascii", "render_dot"]


def render_ascii(trace: Trace) -> str:
    """One-line-per-node rendering with indented branch/fork arms.

    Example output for Figure 4a's trace::

        trace func_req:
          [TCP] -> [Decr] -> [RPC] -> [Dser]
          ? compressed
            yes: {json->string} -> [Dcmp]
            no : (continue)
          [LdB]
          -> notify CPU
    """
    lines: List[str] = [f"trace {trace.name}:"]
    _render_nodes(trace.nodes, lines, indent=1)
    # The implicit end-of-trace notification applies when execution can
    # fall off the end (the last node is a plain step, not a terminal or
    # a branch whose arms all terminate).
    if isinstance(trace.nodes[-1], (AccelStep, TransformNode)):
        lines.append("  -> notify CPU")
    return "\n".join(lines)


def _render_nodes(nodes: List[TraceNode], lines: List[str], indent: int) -> None:
    pad = "  " * indent
    run: List[str] = []

    def flush():
        if run:
            lines.append(pad + " -> ".join(run))
            run.clear()

    for node in nodes:
        if isinstance(node, AccelStep):
            run.append(f"[{node.kind.value}]")
        elif isinstance(node, TransformNode):
            run.append(f"{{{node.src.value}->{node.dst.value}}}")
        elif isinstance(node, BranchNode):
            flush()
            lines.append(f"{pad}? {node.condition.name}")
            if node.on_true:
                lines.append(f"{pad}  yes:")
                _render_nodes(node.on_true, lines, indent + 2)
            else:
                lines.append(f"{pad}  yes: (continue)")
            if node.on_false:
                lines.append(f"{pad}  no :")
                _render_nodes(node.on_false, lines, indent + 2)
            else:
                lines.append(f"{pad}  no : (continue)")
        elif isinstance(node, ParallelNode):
            flush()
            lines.append(f"{pad}parallel:")
            for index, arm in enumerate(node.arms):
                lines.append(f"{pad}  arm {index + 1}:")
                _render_nodes(arm, lines, indent + 2)
        elif isinstance(node, AtmLinkNode):
            flush()
            lines.append(f"{pad}-> ATM: {node.next_trace} *")
        elif isinstance(node, NotifyNode):
            flush()
            target = "notify CPU (error)" if node.error else "notify CPU"
            lines.append(f"{pad}-> {target}")
    flush()


def render_dot(trace: Trace) -> str:
    """Graphviz dot for the trace's node graph (paste into ``dot -Tpng``)."""
    lines = [
        f'digraph "{trace.name}" {{',
        "  rankdir=LR;",
        '  node [shape=box, fontname="monospace"];',
    ]
    counter = [0]

    def fresh(label: str, shape: str = "box") -> str:
        counter[0] += 1
        node_id = f"n{counter[0]}"
        lines.append(f'  {node_id} [label="{label}", shape={shape}];')
        return node_id

    def walk(nodes: List[TraceNode], prev: str) -> str:
        for node in nodes:
            if isinstance(node, AccelStep):
                current = fresh(node.kind.value)
                lines.append(f"  {prev} -> {current};")
                prev = current
            elif isinstance(node, TransformNode):
                current = fresh(f"{node.src.value}->{node.dst.value}", "ellipse")
                lines.append(f"  {prev} -> {current};")
                prev = current
            elif isinstance(node, BranchNode):
                current = fresh(f"{node.condition.name}?", "diamond")
                lines.append(f"  {prev} -> {current};")
                true_end = walk(node.on_true, current) if node.on_true else current
                false_end = walk(node.on_false, current) if node.on_false else current
                join = fresh("", "point")
                lines.append(f"  {true_end} -> {join};")
                if false_end is not true_end:
                    lines.append(f"  {false_end} -> {join};")
                prev = join
            elif isinstance(node, ParallelNode):
                current = fresh("fork", "trapezium")
                lines.append(f"  {prev} -> {current};")
                for arm in node.arms:
                    walk(arm, current)
                prev = current
            elif isinstance(node, AtmLinkNode):
                current = fresh(f"ATM:{node.next_trace}", "cds")
                lines.append(f"  {prev} -> {current};")
                prev = current
            elif isinstance(node, NotifyNode):
                label = "notify CPU (error)" if node.error else "notify CPU"
                current = fresh(label, "oval")
                lines.append(f"  {prev} -> {current};")
                prev = current
        return prev

    entry = fresh("start", "circle")
    walk(trace.nodes, entry)
    lines.append("}")
    return "\n".join(lines)

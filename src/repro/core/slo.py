"""Soft Service-Level Objectives (Section IV-C).

When a request carries an SLO, the core assigns a *soft deadline* to
each acceleration step as it builds the trace. Deadlines are relative
to the start of execution: a step that finishes early passes its slack
on. :class:`DeadlineAssigner` splits an end-to-end budget across the
steps of a resolved path in proportion to their expected service times;
accelerator input dispatchers then order entries by deadline (the EDF
queue policy of :class:`repro.hw.accelerator.Accelerator`).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..hw.params import AcceleratorKind
from .trace import ResolvedPath

__all__ = ["DeadlineAssigner", "SloTracker"]


class DeadlineAssigner:
    """Distributes an end-to-end latency budget over trace steps."""

    def __init__(self, expected_service_ns: Callable[[AcceleratorKind], float]):
        """``expected_service_ns`` estimates the service time per kind
        (typically from calibration data or a moving average)."""
        self._expected = expected_service_ns

    def assign(
        self, path: ResolvedPath, start_ns: float, budget_ns: float
    ) -> List[float]:
        """Absolute deadline for each step of ``path``.

        The budget is split proportionally to expected service times and
        deadlines are cumulative, so early completion of one step gives
        the following steps more slack automatically.
        """
        if budget_ns <= 0:
            raise ValueError(f"budget must be positive, got {budget_ns}")
        weights = [max(self._expected(step.kind), 1.0) for step in path.steps]
        total = sum(weights)
        deadlines: List[float] = []
        elapsed = 0.0
        for weight in weights:
            elapsed += budget_ns * weight / total
            deadlines.append(start_ns + elapsed)
        return deadlines


class SloTracker:
    """Counts SLO attainment over completed requests."""

    def __init__(self, slo_ns: Optional[float] = None):
        self.slo_ns = slo_ns
        self.completed = 0
        self.violations = 0

    def record(self, latency_ns: float) -> bool:
        """Record one completion; returns True if it met the SLO."""
        self.completed += 1
        if self.slo_ns is not None and latency_ns > self.slo_ns:
            self.violations += 1
            return False
        return True

    @property
    def violation_rate(self) -> float:
        if self.completed == 0:
            return 0.0
        return self.violations / self.completed

    def stats(self) -> Dict[str, float]:
        return {
            "slo_ns": self.slo_ns if self.slo_ns is not None else float("nan"),
            "completed": float(self.completed),
            "violations": float(self.violations),
            "violation_rate": self.violation_rate,
        }

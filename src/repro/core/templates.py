"""The paper's trace catalogue T1-T12 (Table II, Figures 2, 4 and 7).

Each template is a function so that call-site options ("with or without
Cmp") produce distinct concrete traces. Send traces that expect a
network response end in an ATM link to the corresponding receive trace
(the asterisk notation of Figure 2b). The rarely-exercised error arms
of T6/T7/T10 live in a separate trace (``T_ERR``) reached through the
ATM, exactly as Section IV-B prescribes, so that common-case traces
stay small on the wire.
"""

from __future__ import annotations

from typing import Callable, Dict

from .builder import atm_link, branch, notify, parallel, seq, trans
from .trace import Trace

__all__ = [
    "T_ERR",
    "t1_receive_function_request",
    "t2_send_response",
    "t3_send_response_compressed",
    "t4_send_db_cache_read",
    "t5_receive_db_cache_read_response",
    "t6_receive_db_read_response",
    "t7_receive_db_write_response",
    "t8_send_db_write",
    "t9_send_rpc_request",
    "t10_receive_rpc_response",
    "t11_send_http_request",
    "t12_receive_http_response",
    "error_trace",
    "standard_trace_set",
    "TEMPLATE_DESCRIPTIONS",
]

#: Name of the shared error-reporting trace (split out of T6/T7/T10).
T_ERR = "T_err"


def error_trace() -> Trace:
    """Report a function error to the user: Ser, RPC, Encr, TCP."""
    return seq("Ser", "RPC", "Encr", "TCP", notify(error=True), name=T_ERR)


def t1_receive_function_request() -> Trace:
    """T1: receive a function request (Figure 4a).

    TCP -> Decr -> RPC -> Dser, then, if the payload is compressed,
    transform JSON -> string and decompress, and finally pick a core
    with LdB.
    """
    return seq(
        "TCP",
        "Decr",
        "RPC",
        "Dser",
        branch("compressed", on_true=[trans("json", "string"), "Dcmp"], on_false=[]),
        "LdB",
        name="T1",
    )


def t2_send_response() -> Trace:
    """T2: send a function response without compression (Figure 2a)."""
    return seq("Ser", "RPC", "Encr", "TCP", name="T2")


def t3_send_response_compressed() -> Trace:
    """T3: send a function response with compression.

    Like T2 with Cmp first; no branch because the CPU core knows it
    needs to compress.
    """
    return seq("Cmp", "Ser", "RPC", "Encr", "TCP", name="T3")


def t4_send_db_cache_read() -> Trace:
    """T4: send a read request to the DB cache (Figure 2b).

    The TCP tail carries an ATM address (*): the response trace T5 is
    preloaded into the same TCP accelerator's input queue.
    """
    return seq("Ser", "Encr", "TCP", atm_link("T5"), name="T4")


def t5_receive_db_cache_read_response() -> Trace:
    """T5: receive the response of a DB-cache read (Figure 7).

    After Dser, a compressed payload is decompressed; then, on a cache
    hit, LdB forwards to the requesting core; on a miss, a read is sent
    to the actual database (Ser, Encr, TCP with an ATM link to T6).
    """
    return seq(
        "TCP",
        "Decr",
        "Dser",
        branch("compressed", on_true=["Dcmp"], on_false=[]),
        branch(
            "hit",
            on_true=["LdB", notify()],
            on_false=["Ser", "Encr", "TCP", atm_link("T6")],
        ),
        name="T5",
    )


def t6_receive_db_read_response() -> Trace:
    """T6: receive the response of a DB read (Figure 7).

    Data not found -> report the error to the user (separate error
    trace via the ATM). Otherwise optionally decompress, then in
    parallel hand the data to the CPU (LdB) and write it back to the DB
    cache, recompressing if the cache stores compressed data.
    """
    return seq(
        "TCP",
        "Decr",
        "Dser",
        branch("found", on_true=[], on_false=[atm_link(T_ERR)]),
        branch("compressed", on_true=["Dcmp"], on_false=[]),
        parallel(
            ["LdB", notify()],
            [
                branch("c_compressed", on_true=["Cmp"], on_false=[]),
                "Ser",
                "Encr",
                "TCP",
                atm_link("T7"),
            ],
        ),
        name="T6",
    )


def t7_receive_db_write_response() -> Trace:
    """T7: receive the response of a DB(-cache) write (Figure 7).

    An exception in the response is reported straight to the user by
    the ensemble; otherwise LdB notifies the requesting core.
    """
    return seq(
        "TCP",
        "Decr",
        "Dser",
        branch("exception", on_true=[atm_link(T_ERR)], on_false=[]),
        "LdB",
        name="T7",
    )


def t8_send_db_write(with_cmp: bool = False) -> Trace:
    """T8: send a write to the DB cache or DB (with or without Cmp)."""
    nodes = (["Cmp"] if with_cmp else []) + ["Ser", "Encr", "TCP", atm_link("T7")]
    return seq(*nodes, name="T8c" if with_cmp else "T8")


def t9_send_rpc_request(with_cmp: bool = False) -> Trace:
    """T9: send a nested RPC request (with or without Cmp)."""
    nodes = (["Cmp"] if with_cmp else []) + [
        "Ser",
        "RPC",
        "Encr",
        "TCP",
        atm_link("T10"),
    ]
    return seq(*nodes, name="T9c" if with_cmp else "T9")


def t10_receive_rpc_response() -> Trace:
    """T10: receive a nested RPC response.

    Exceptions are handled as in T7; a compressed payload is
    decompressed before LdB hands the result to the core.
    """
    return seq(
        "TCP",
        "Decr",
        "RPC",
        "Dser",
        branch("exception", on_true=[atm_link(T_ERR)], on_false=[]),
        branch("compressed", on_true=["Dcmp"], on_false=[]),
        "LdB",
        name="T10",
    )


def t11_send_http_request(with_cmp: bool = False) -> Trace:
    """T11: send an HTTP request (with or without Cmp)."""
    nodes = (["Cmp"] if with_cmp else []) + ["Ser", "Encr", "TCP", atm_link("T12")]
    return seq(*nodes, name="T11c" if with_cmp else "T11")


def t12_receive_http_response() -> Trace:
    """T12: receive an HTTP response (errors handled by the CPU)."""
    return seq(
        "TCP",
        "Decr",
        "Dser",
        branch("compressed", on_true=["Dcmp"], on_false=[]),
        "LdB",
        name="T12",
    )


_FACTORIES: Dict[str, Callable[[], Trace]] = {
    "T1": t1_receive_function_request,
    "T2": t2_send_response,
    "T3": t3_send_response_compressed,
    "T4": t4_send_db_cache_read,
    "T5": t5_receive_db_cache_read_response,
    "T6": t6_receive_db_read_response,
    "T7": t7_receive_db_write_response,
    "T8": t8_send_db_write,
    "T8c": lambda: t8_send_db_write(with_cmp=True),
    "T9": t9_send_rpc_request,
    "T9c": lambda: t9_send_rpc_request(with_cmp=True),
    "T10": t10_receive_rpc_response,
    "T11": t11_send_http_request,
    "T11c": lambda: t11_send_http_request(with_cmp=True),
    "T12": t12_receive_http_response,
    T_ERR: error_trace,
}

TEMPLATE_DESCRIPTIONS: Dict[str, str] = {
    "T1": "Receive function request (with or without Dcmp)",
    "T2": "Send function response without Cmp",
    "T3": "Send function response with Cmp",
    "T4": "Send read request to DB cache",
    "T5": "Receive response to a read to the DB cache (with or without Dcmp)",
    "T6": "Receive response to a read to the DB (with or without Dcmp or Cmp)",
    "T7": "Receive response to a write to the DB cache or DB",
    "T8": "Send write request to DB cache or DB (with or without Cmp)",
    "T9": "Send RPC request (with or without Cmp)",
    "T10": "Receive RPC response",
    "T11": "Send HTTP request (with or without Cmp)",
    "T12": "Receive HTTP response",
}


def standard_trace_set() -> Dict[str, Trace]:
    """All concrete traces of Table II (plus the shared error trace)."""
    return {name: factory() for name, factory in _FACTORIES.items()}

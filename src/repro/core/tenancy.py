"""Fine-grained accelerator virtualization (Section IV-D).

Queue entries are tagged with a VMM-assigned tenant ID; PEs wipe their
scratchpads between tenants (modeled in the accelerator); and, to stop
a tenant from hoarding the ensemble, at most N traces per tenant may be
in flight at once: trace starts increment a counter, trace ends
decrement it, and a tenant at the limit cannot start new traces.
"""

from __future__ import annotations

from typing import Dict

__all__ = ["TenantManager"]


class TenantManager:
    """Per-tenant concurrent-trace accounting with a hard limit N."""

    def __init__(self, limit: int):
        if limit <= 0:
            raise ValueError(f"limit must be positive, got {limit}")
        self.limit = limit
        self._active: Dict[int, int] = {}
        self.throttled = 0
        self.started = 0

    def active_traces(self, tenant: int) -> int:
        return self._active.get(tenant, 0)

    def try_start(self, tenant: int) -> bool:
        """Attempt to start a trace for ``tenant``.

        Returns False (and counts a throttle) when the tenant already
        has N traces in flight; the caller must defer or fall back.
        """
        count = self._active.get(tenant, 0)
        if count >= self.limit:
            self.throttled += 1
            return False
        self._active[tenant] = count + 1
        self.started += 1
        return True

    def end(self, tenant: int) -> None:
        """Record the completion of one of ``tenant``'s traces."""
        count = self._active.get(tenant, 0)
        if count <= 0:
            raise ValueError(f"tenant {tenant} has no active traces")
        if count == 1:
            del self._active[tenant]
        else:
            self._active[tenant] = count - 1

    @property
    def active_tenants(self) -> int:
        return len(self._active)

    def stats(self) -> Dict[str, float]:
        return {
            "limit": float(self.limit),
            "started": float(self.started),
            "throttled": float(self.throttled),
            "active_tenants": float(self.active_tenants),
        }

"""The Trace: a program over the accelerator ensemble, plus resolution.

A :class:`Trace` owns a list of :class:`~repro.core.nodes.TraceNode`
objects. Because every branch condition is a function of payload fields
fixed when a request is generated, a trace can be *resolved* against a
request's field state into a :class:`ResolvedPath`: the exact sequence
of accelerator steps that will execute, with the branch/transform/ATM
work each output dispatcher performs attached to the step that performs
it. Orchestrators execute resolved paths; the resolution work itself is
charged at the accelerators (on-the-fly semantics preserved).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..hw.params import AcceleratorKind
from .nodes import (
    AccelStep,
    AtmLinkNode,
    BranchNode,
    NotifyNode,
    ParallelNode,
    TraceNode,
    TraceValidationError,
    TransformNode,
)

__all__ = ["Trace", "ResolvedStep", "ResolvedPath"]


class ResolvedStep:
    """One accelerator invocation of a resolved path.

    The ``*_after`` fields describe the work this accelerator's *output
    dispatcher* does once the PE finishes (Figure 8): resolving branch
    conditions, transforming data formats, reading the next trace from
    the ATM, or notifying the initiating CPU core.
    """

    __slots__ = (
        "kind",
        "branches_after",
        "transforms_after",
        "atm_read_after",
        "notify_after",
        "error_notify",
        "fanout",
    )

    def __init__(self, kind: AcceleratorKind):
        self.kind = kind
        self.branches_after = 0
        self.transforms_after = 0
        self.atm_read_after = False
        self.notify_after = False
        self.error_notify = False
        self.fanout: List["ResolvedPath"] = []

    def __repr__(self) -> str:
        extras = []
        if self.branches_after:
            extras.append(f"br={self.branches_after}")
        if self.transforms_after:
            extras.append(f"tr={self.transforms_after}")
        if self.atm_read_after:
            extras.append("atm")
        if self.notify_after:
            extras.append("notify")
        if self.fanout:
            extras.append(f"fanout={len(self.fanout)}")
        suffix = f" [{' '.join(extras)}]" if extras else ""
        return f"<{self.kind.value}{suffix}>"


class ResolvedPath:
    """The concrete accelerator sequence a request will follow."""

    __slots__ = ("steps", "next_trace", "notified", "error")

    def __init__(
        self,
        steps: List[ResolvedStep],
        next_trace: Optional[str],
        notified: bool,
        error: bool,
    ):
        self.steps = steps
        #: Name of the follow-on trace (AtmLink tail), or None.
        self.next_trace = next_trace
        #: True when this path ends by notifying the CPU.
        self.notified = notified
        #: True when the notification reports an error to the user.
        self.error = error

    def kinds(self) -> List[AcceleratorKind]:
        """The accelerator kinds along the main path (fanout excluded)."""
        return [step.kind for step in self.steps]

    def total_accelerators(self) -> int:
        """All accelerator invocations including fanout arms."""
        total = 0
        for step in self.steps:
            total += 1
            for arm in step.fanout:
                total += arm.total_accelerators()
        return total

    def fanout_paths(self) -> List["ResolvedPath"]:
        paths = []
        for step in self.steps:
            paths.extend(step.fanout)
        return paths

    def __repr__(self) -> str:
        chain = "-".join(step.kind.value for step in self.steps)
        tail = f" ->ATM:{self.next_trace}" if self.next_trace else ""
        return f"ResolvedPath({chain}{tail})"


class Trace:
    """A named trace: sequence of accelerators with optional control flow."""

    def __init__(self, name: str, nodes: Sequence[TraceNode]):
        if not nodes:
            raise TraceValidationError(f"trace {name!r} has no nodes")
        if not isinstance(nodes[0], AccelStep):
            raise TraceValidationError(
                f"trace {name!r} must start with an accelerator step; branches "
                "and transforms are resolved by the previous accelerator"
            )
        self.name = name
        self.nodes: List[TraceNode] = list(nodes)
        self._validate(self.nodes, top_level=True)

    # -- validation --------------------------------------------------------
    def _validate(self, nodes: Sequence[TraceNode], top_level: bool) -> None:
        for index, node in enumerate(nodes):
            if isinstance(node, BranchNode):
                self._validate(node.on_true, top_level=False)
                self._validate(node.on_false, top_level=False)
            elif isinstance(node, ParallelNode):
                if index != len(nodes) - 1:
                    raise TraceValidationError(
                        f"trace {self.name!r}: a parallel fork must be terminal"
                    )
                critical_arms = 0
                for arm in node.arms:
                    if not arm:
                        raise TraceValidationError(
                            f"trace {self.name!r}: empty parallel arm"
                        )
                    self._validate(arm, top_level=False)
                    if self._arm_notifies(arm):
                        critical_arms += 1
                if critical_arms > 1:
                    raise TraceValidationError(
                        f"trace {self.name!r}: more than one parallel arm "
                        "notifies the CPU"
                    )
            elif isinstance(node, (AtmLinkNode, NotifyNode)):
                if index != len(nodes) - 1:
                    raise TraceValidationError(
                        f"trace {self.name!r}: {type(node).__name__} must be "
                        "the last node of its sequence"
                    )

    @staticmethod
    def _arm_notifies(arm: Sequence[TraceNode]) -> bool:
        return bool(arm) and isinstance(arm[-1], NotifyNode)

    # -- resolution ----------------------------------------------------------
    def resolve(self, state: Optional[Dict[str, bool]] = None) -> ResolvedPath:
        """Resolve control flow against a request's payload fields."""
        state = state or {}
        steps: List[ResolvedStep] = []
        path = ResolvedPath(steps, next_trace=None, notified=False, error=False)
        ended = self._walk(self.nodes, state, steps, path, attach=None)
        if not ended:
            # Implicit end of trace with no ATM address: the output
            # dispatcher deposits results and notifies the CPU core.
            steps[-1].notify_after = True
            path.notified = True
        return path

    def _walk(
        self,
        nodes: Sequence[TraceNode],
        state: Dict[str, bool],
        steps: List[ResolvedStep],
        path: ResolvedPath,
        attach: Optional[ResolvedStep],
    ) -> bool:
        """Append resolved steps; returns True if the trace ended.

        ``attach`` is the step that pays for branch/transform/ATM work
        occurring before any local accelerator step (used for parallel
        arms, whose leading control flow is resolved by the forking
        accelerator's output dispatcher).
        """

        def current_step() -> ResolvedStep:
            if steps:
                return steps[-1]
            if attach is not None:
                return attach
            raise TraceValidationError(
                f"trace {self.name!r}: control-flow node with no preceding "
                "accelerator to resolve it"
            )

        for node in nodes:
            if isinstance(node, AccelStep):
                steps.append(ResolvedStep(node.kind))
            elif isinstance(node, BranchNode):
                current_step().branches_after += 1
                taken = node.condition.evaluate(state)
                if self._walk(node.arm(taken), state, steps, path, attach):
                    return True
            elif isinstance(node, TransformNode):
                current_step().transforms_after += 1
            elif isinstance(node, ParallelNode):
                fork_origin = current_step()
                for arm in node.arms:
                    arm_steps: List[ResolvedStep] = []
                    arm_path = ResolvedPath(
                        arm_steps, next_trace=None, notified=False, error=False
                    )
                    arm_ended = self._walk(
                        arm, state, arm_steps, arm_path, attach=fork_origin
                    )
                    if not arm_ended and arm_steps:
                        arm_steps[-1].notify_after = True
                        arm_path.notified = True
                    fork_origin.fanout.append(arm_path)
                    if arm_path.notified:
                        path.notified = True
                        path.error = path.error or arm_path.error
                return True
            elif isinstance(node, AtmLinkNode):
                current_step().atm_read_after = True
                path.next_trace = node.next_trace
                return True
            elif isinstance(node, NotifyNode):
                target = current_step()
                target.notify_after = True
                target.error_notify = node.error
                path.notified = True
                path.error = node.error
                return True
            else:  # pragma: no cover - defensive
                raise TraceValidationError(f"unknown node type {type(node).__name__}")
        return False

    # -- static analysis -------------------------------------------------------
    def conditions(self) -> Set[str]:
        """Names of all branch conditions anywhere in the trace."""
        found: Set[str] = set()
        self._collect_conditions(self.nodes, found)
        return found

    def _collect_conditions(
        self, nodes: Sequence[TraceNode], found: Set[str]
    ) -> None:
        for node in nodes:
            if isinstance(node, BranchNode):
                found.add(node.condition.name)
                self._collect_conditions(node.on_true, found)
                self._collect_conditions(node.on_false, found)
            elif isinstance(node, ParallelNode):
                for arm in node.arms:
                    self._collect_conditions(arm, found)

    @property
    def has_branches(self) -> bool:
        return bool(self.conditions())

    def all_paths(self) -> List[Tuple[Dict[str, bool], ResolvedPath]]:
        """Every (state, resolved path) over the trace's conditions."""
        names = sorted(self.conditions())
        results = []
        for combo in itertools.product((False, True), repeat=len(names)):
            state = dict(zip(names, combo))
            results.append((state, self.resolve(state)))
        return results

    def accelerator_pairs(self) -> Set[Tuple[AcceleratorKind, AcceleratorKind]]:
        """All (src, dst) accelerator hand-offs over all paths (Table I)."""
        pairs: Set[Tuple[AcceleratorKind, AcceleratorKind]] = set()
        for _, path in self.all_paths():
            self._collect_pairs(path, pairs)
        return pairs

    def _collect_pairs(
        self,
        path: ResolvedPath,
        pairs: Set[Tuple[AcceleratorKind, AcceleratorKind]],
    ) -> None:
        kinds = path.kinds()
        pairs.update(zip(kinds, kinds[1:]))
        for step in path.steps:
            for arm in step.fanout:
                arm_kinds = arm.kinds()
                if arm_kinds:
                    pairs.add((step.kind, arm_kinds[0]))
                self._collect_pairs(arm, pairs)

    @property
    def first_kind(self) -> AcceleratorKind:
        """The accelerator a core Enqueues this trace into."""
        first = self.nodes[0]
        assert isinstance(first, AccelStep)
        return first.kind

    def max_accelerators(self) -> int:
        return max(path.total_accelerators() for _, path in self.all_paths())

    def linked_traces(self) -> Set[str]:
        """Names of traces this one can chain to through the ATM."""
        names: Set[str] = set()
        for _, path in self.all_paths():
            if path.next_trace:
                names.add(path.next_trace)
            for arm in path.fanout_paths():
                if arm.next_trace:
                    names.add(arm.next_trace)
        return names

    def __repr__(self) -> str:
        return f"Trace({self.name!r}, {len(self.nodes)} nodes)"

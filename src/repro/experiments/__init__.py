"""Per-figure/table experiment harness (the paper's evaluation)."""

from . import (
    char_branches,
    characterization,
    fig01_breakdown,
    fig03_orchestration,
    fig05_datasizes,
    fig11_latency,
    fig12_loads,
    fig13_ablation,
    fig14_throughput,
    fig15_gem5,
    fig16_serverless,
    fig17_components,
    fig18_chiplets,
    fig19_pes,
    fig20_generations,
    fig_campaign,
    fig_cluster,
    fig_faults,
    fig_fluid,
    fig_metastable,
    fig_placement,
    sensitivity,
    table1_connectivity,
    table2_traces,
    table4_paths,
)
from .common import LADDER, MAIN_ARCHITECTURES, SCALES, format_table
from .parallel import ShardedExperiment

#: Experiment id -> callable(scale, seed) returning {..., "table": str}.
EXPERIMENTS = {
    "fig1": fig01_breakdown.run,
    "fig3": fig03_orchestration.run,
    "fig5": fig05_datasizes.run,
    "table1": table1_connectivity.run,
    "table2": table2_traces.run,
    "table4": table4_paths.run,
    "fig11": fig11_latency.run,
    "fig12": fig12_loads.run,
    "fig13": fig13_ablation.run,
    "fig14": fig14_throughput.run,
    "fig15": fig15_gem5.run,
    "fig16": fig16_serverless.run,
    "fig17": fig17_components.run,
    "fig18": fig18_chiplets.run,
    "fig19": fig19_pes.run,
    "fig20": fig20_generations.run,
    "campaign": fig_campaign.run,
    "fig_cluster": fig_cluster.run,
    "fig_faults": fig_faults.run,
    "fig_fluid": fig_fluid.run,
    "fig_metastable": fig_metastable.run,
    "fig_placement": fig_placement.run,
    "sens-interchiplet": sensitivity.run_interchiplet,
    "sens-speedups": sensitivity.run_speedups,
    "sens-adaptive": sensitivity.run_adaptive,
    "char-branches": char_branches.run,
    "char-glue": characterization.run_glue,
    "char-utilization": characterization.run_utilization,
    "char-energy": characterization.run_energy,
    "char-events": characterization.run_events,
}

#: Experiment id -> ShardedExperiment (shard/merge decomposition of the
#: same computation; worker processes resolve shards through this table).
SHARDED = {
    "fig1": fig01_breakdown.SHARDED,
    "fig3": fig03_orchestration.SHARDED,
    "fig5": fig05_datasizes.SHARDED,
    "table1": table1_connectivity.SHARDED,
    "table2": table2_traces.SHARDED,
    "table4": table4_paths.SHARDED,
    "fig11": fig11_latency.SHARDED,
    "fig12": fig12_loads.SHARDED,
    "fig13": fig13_ablation.SHARDED,
    "fig14": fig14_throughput.SHARDED,
    "fig15": fig15_gem5.SHARDED,
    "fig16": fig16_serverless.SHARDED,
    "fig17": fig17_components.SHARDED,
    "fig18": fig18_chiplets.SHARDED,
    "fig19": fig19_pes.SHARDED,
    "fig20": fig20_generations.SHARDED,
    "campaign": fig_campaign.SHARDED,
    "fig_cluster": fig_cluster.SHARDED,
    "fig_faults": fig_faults.SHARDED,
    "fig_fluid": fig_fluid.SHARDED,
    "fig_metastable": fig_metastable.SHARDED,
    "fig_placement": fig_placement.SHARDED,
    "sens-interchiplet": sensitivity.SHARDED_INTERCHIPLET,
    "sens-speedups": sensitivity.SHARDED_SPEEDUPS,
    "sens-adaptive": sensitivity.SHARDED_ADAPTIVE,
    "char-branches": char_branches.SHARDED,
    "char-glue": characterization.SHARDED_GLUE,
    "char-utilization": characterization.SHARDED_UTILIZATION,
    "char-energy": characterization.SHARDED_ENERGY,
    "char-events": characterization.SHARDED_EVENTS,
}


def get_sharded(name: str) -> ShardedExperiment:
    """Resolve an experiment id to its sharded decomposition.

    Worker processes call this to rebuild the ``run_shard`` callable from
    a pickled :class:`~repro.experiments.parallel.Shard` spec.
    """
    try:
        return SHARDED[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {', '.join(sorted(SHARDED))}"
        ) from None


__all__ = [
    "EXPERIMENTS",
    "LADDER",
    "MAIN_ARCHITECTURES",
    "SCALES",
    "SHARDED",
    "format_table",
    "get_sharded",
]

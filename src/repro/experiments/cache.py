"""On-disk result cache for experiment shards.

Every shard of the parallel runner (:mod:`repro.experiments.parallel`)
is a pure function of ``(experiment, scale, shard key, shard params,
shard seed)`` plus the simulator code itself, so its payload can be
memoised on disk. Entries live under ``.accelflow_cache/`` (one pickle
per shard) and are keyed by a SHA-256 digest of the shard identity and
a *code fingerprint* — a hash over every ``repro`` source file — so any
code change, however small, invalidates the whole cache rather than
ever serving stale numbers.

``accelflow-repro`` exposes this via ``--no-cache`` (bypass entirely),
``--refresh`` (recompute and overwrite) and ``--cache-dir``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = [
    "CacheStats",
    "ResultCache",
    "code_fingerprint",
    "fingerprint_manifest",
]

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".accelflow_cache"

_FINGERPRINT_CACHE: dict = {}


def _package_root() -> str:
    import repro

    return os.path.dirname(os.path.abspath(repro.__file__))


def fingerprint_manifest(root: Optional[str] = None) -> List[str]:
    """The relative paths :func:`code_fingerprint` hashes, sorted.

    Every ``.py`` file under ``root`` (default: the installed ``repro``
    package) is covered — new modules are picked up automatically, so
    the fingerprint never silently lags behind the package layout. The
    manifest exists so tests can assert exactly that.
    """
    if root is None:
        root = _package_root()
    paths: List[str] = []
    for dirpath, dirnames, filenames in os.walk(root):
        # Prune in place *before* descent. (A previous version wrapped
        # os.walk in sorted(), which materialized the whole walk first
        # and made this assignment a dead letter.)
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for filename in filenames:
            if filename.endswith(".py"):
                paths.append(
                    os.path.relpath(os.path.join(dirpath, filename), root)
                )
    return sorted(paths)


def code_fingerprint(root: Optional[str] = None) -> str:
    """SHA-256 over every ``repro`` source file (hex digest).

    Computed once per process per root; any edit to the simulator,
    workloads or experiment harness changes the fingerprint and thereby
    invalidates every cached shard. ``root`` overrides the hashed tree
    (tests fingerprint a scratch directory instead of the live package).
    """
    cached = _FINGERPRINT_CACHE.get(root)
    if cached is not None:
        return cached
    base = root if root is not None else _package_root()
    digest = hashlib.sha256()
    for relpath in fingerprint_manifest(base):
        digest.update(relpath.encode())
        with open(os.path.join(base, relpath), "rb") as handle:
            digest.update(handle.read())
    value = digest.hexdigest()
    _FINGERPRINT_CACHE[root] = value
    return value


@dataclass
class CacheStats:
    """Counters for one runner invocation (all experiments combined)."""

    hits: int = 0
    misses: int = 0
    writes: int = 0
    errors: int = 0

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.writes += other.writes
        self.errors += other.errors

    def summary(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"writes={self.writes} errors={self.errors}"
        )


class ResultCache:
    """Pickle-per-shard cache under ``root`` with hit/miss accounting.

    ``refresh=True`` turns every lookup into a miss but still writes the
    recomputed payload back, i.e. it atomically rebuilds the cache.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR, refresh: bool = False):
        self.root = root
        self.refresh = refresh
        self.stats = CacheStats()

    # -- keys --------------------------------------------------------------
    def _digest(self, experiment: str, scale: str, shard) -> str:
        identity: Tuple = (
            experiment,
            scale,
            shard.key,
            tuple(sorted((k, repr(v)) for k, v in shard.params.items())),
            shard.seed,
            code_fingerprint(),
        )
        return hashlib.sha256(repr(identity).encode()).hexdigest()

    def path_for(self, experiment: str, scale: str, shard) -> str:
        digest = self._digest(experiment, scale, shard)
        return os.path.join(self.root, f"{experiment}-{digest[:24]}.pkl")

    # -- lookup ------------------------------------------------------------
    def get(self, experiment: str, scale: str, shard) -> Optional[Tuple[object]]:
        """Cached payload as a 1-tuple (so ``None`` payloads stay
        distinguishable from misses), or ``None`` on a miss."""
        path = self.path_for(experiment, scale, shard)
        if self.refresh or not os.path.exists(path):
            self.stats.misses += 1
            return None
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:
            # Corrupt or unreadable entry: recompute, then overwrite.
            self.stats.errors += 1
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return (payload,)

    def put(self, experiment: str, scale: str, shard, payload: object) -> None:
        os.makedirs(self.root, exist_ok=True)
        path = self.path_for(experiment, scale, shard)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic: concurrent runners never tear
        except Exception:
            self.stats.errors += 1
            if os.path.exists(tmp):
                os.unlink(tmp)
            return
        self.stats.writes += 1

    def entries(self) -> int:
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for name in os.listdir(self.root) if name.endswith(".pkl"))

"""Section III Q2: how common is dynamic control flow in sequences?

The paper: 69.2%, 62.5%, 82.5% and 53.8% of the accelerator sequences
of SocialNetwork, HotelReservation, MediaServices and Train Ticket
contain at least one conditional (some have up to four). We measure the
same statistic over each suite's executed chains: the fraction of trace
executions (along the most common paths, weighted by how often each
trace runs per request) whose trace carries at least one branch
condition, plus the maximum conditionals in a single chain.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import TraceRegistry
from ..workloads import (
    ServiceSpec,
    expand_chain,
    hotel_reservation_services,
    media_services,
    social_network_services,
)
from ..workloads.trainticket import train_ticket_services
from .common import format_table
from .parallel import single_shard

__all__ = ["run", "PAPER_CONDITIONAL_SHARE"]

PAPER_CONDITIONAL_SHARE = {
    "socialnetwork": 0.692,
    "hotel": 0.625,
    "media": 0.825,
    "trainticket": 0.538,
}

_SUITES = {
    "socialnetwork": social_network_services,
    "hotel": hotel_reservation_services,
    "media": media_services,
    "trainticket": train_ticket_services,
}


def _suite_stats(registry: TraceRegistry, services: List[ServiceSpec]):
    """Per *chain* (a CPU-uninterrupted accelerator sequence): the share
    containing at least one conditional, and the max conditionals."""
    chains = 0
    conditional = 0
    max_conditionals = 0
    for spec in services:
        for invocation in spec.trace_invocations():
            chain_conditionals = 0
            for path in expand_chain(registry, invocation):
                branches = sum(s.branches_after for s in path.steps)
                for arm in path.fanout_paths():
                    branches += sum(s.branches_after for s in arm.steps)
                chain_conditionals += branches
            chains += 1
            if chain_conditionals > 0:
                conditional += 1
            max_conditionals = max(max_conditionals, chain_conditionals)
    share = conditional / chains if chains else 0.0
    return share, max_conditionals, chains


def _compute(scale: str = "quick", seed: int = 0) -> Dict:
    registry = TraceRegistry.with_standard_templates()
    rows = []
    shares = {}
    for suite, factory in _SUITES.items():
        share, max_cond, executions = _suite_stats(registry, factory())
        shares[suite] = share
        rows.append(
            [
                suite,
                f"{share * 100:.1f}%",
                f"{PAPER_CONDITIONAL_SHARE[suite] * 100:.1f}%",
                max_cond,
                executions,
            ]
        )
    table = format_table(
        ["Suite", "Conditional chains", "Paper", "Max cond/chain",
         "Chains"],
        rows,
        title="Section III Q2: dynamic control flow in accelerator sequences",
    )
    return {"shares": shares, "table": table}


SHARDED = single_shard("char-branches", _compute)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

"""Section VII.B characterization: glue instructions, utilization,
power/energy and high-overhead events.

* VII.B.2 — output-dispatcher glue instructions: ~15 base, +7/branch,
  12-20 at end of trace, +12/transform; ~18 average, ~50 worst case.
* VII.B.4 — accelerator utilization at peak throughput: TCP 92%,
  (De)Encr 82%, RPC 68%, (De)Ser 73%, (De)Cmp 38%, LdB 71%.
* VII.B.5 — power/energy: AccelFlow cuts server energy by 74% vs
  Non-acc; perf/W 7.2x Non-acc, 2.1x RELIEF.
* VII.B.6 — high-overhead events: overflow-full fallbacks 1.4% of
  invocations (5.9% peak), page faults 0.13/Mi, TCP timeouts 3.2/M
  requests, L1 D-TLB 3.4 MPKI.
"""

from __future__ import annotations

from typing import Dict, List

from ..hw import ACCEL_KINDS
from ..server import (
    RunConfig,
    energy_summary,
    run_dedicated_service,
    run_experiment,
)
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run_glue", "run_utilization", "run_energy", "run_events"]

PAPER_UTILIZATION = {
    "TCP": 0.92,
    "Encr": 0.82,
    "Decr": 0.82,
    "RPC": 0.68,
    "Ser": 0.73,
    "Dser": 0.73,
    "Cmp": 0.38,
    "Dcmp": 0.38,
    "LdB": 0.71,
}


def _alibaba_cell(
    shard: Shard, scale: str, rate_scale: float = 1.0
) -> Dict[str, object]:
    """One dedicated accelflow (service) cell of the alibaba-driven run."""
    spec = pick_service(social_network_services(), shard.params["service"])
    config = RunConfig(
        architecture="accelflow",
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
        rate_scale=rate_scale,
    )
    return run_dedicated_service(spec, config)


def _service_shards(name: str, seed: int) -> List[Shard]:
    return [
        Shard(name, (spec.name,), {"service": spec.name},
              derive_seed(seed, name, spec.name))
        for spec in social_network_services()
    ]


# -- VII.B.2: glue instructions ------------------------------------------

def _glue_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return _service_shards("char-glue", seed)


def _glue_shard(shard: Shard, scale: str) -> Dict:
    cell = _alibaba_cell(shard, scale)
    return cell["orchestrator_stats"]["glue"]


def _glue_merge(payloads: Dict, scale: str, seed: int) -> Dict:
    operations = 0
    instructions = 0
    branches = 0
    transforms = 0
    for glue in payloads.values():
        operations += int(glue["operations"])
        instructions += int(glue["total_instructions"])
        branches += int(glue["branches_resolved"])
        transforms += int(glue["transforms_performed"])
    average = instructions / operations if operations else 0.0
    table = format_table(
        ["Metric", "Measured", "Paper"],
        [
            ["dispatcher operations", operations, "-"],
            ["avg instructions/op", f"{average:.1f}", "18"],
            ["branches resolved", branches, "-"],
            ["transforms performed", transforms, "-"],
        ],
        title="VII.B.2: output-dispatcher glue instructions",
    )
    return {
        "operations": operations,
        "average_instructions": average,
        "branches": branches,
        "transforms": transforms,
        "table": table,
    }


SHARDED_GLUE = ShardedExperiment(
    "char-glue", _glue_shards, _glue_shard, _glue_merge,
)


def run_glue(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """VII.B.2: glue instructions per output-dispatcher operation."""
    return SHARDED_GLUE.run(scale=scale, seed=seed, executor=executor)


# -- VII.B.4: utilization ------------------------------------------------

def _utilization_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return _service_shards("char-utilization", seed)


def _utilization_shard(shard: Shard, scale: str) -> Dict:
    # Push load toward the saturation knee of the busiest accelerator.
    cell = _alibaba_cell(shard, scale, rate_scale=3.5)
    return cell["utilizations"]


def _utilization_merge(payloads: Dict, scale: str, seed: int) -> Dict:
    utilization: Dict[str, float] = {k.value: 0.0 for k in ACCEL_KINDS}
    for per_service in payloads.values():
        for kind, value in per_service.items():
            utilization[kind.value] = max(utilization[kind.value], value)
    rows = [
        [name, f"{value * 100:.0f}%", f"{PAPER_UTILIZATION[name] * 100:.0f}%"]
        for name, value in utilization.items()
    ]
    table = format_table(
        ["Accelerator", "Peak utilization", "Paper"],
        rows,
        title="VII.B.4: accelerator utilization at peak",
    )
    cmp_lowest = (
        utilization["Cmp"] <= min(utilization["TCP"], utilization["Ser"])
        or utilization["Dcmp"] <= min(utilization["TCP"], utilization["Ser"])
    )
    return {"utilization": utilization, "cmp_lowest": cmp_lowest, "table": table}


SHARDED_UTILIZATION = ShardedExperiment(
    "char-utilization", _utilization_shards, _utilization_shard,
    _utilization_merge,
)


def run_utilization(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """VII.B.4: accelerator utilization near peak load."""
    return SHARDED_UTILIZATION.run(scale=scale, seed=seed, executor=executor)


# -- VII.B.5: energy -----------------------------------------------------

_ENERGY_ARCHES = ("non-acc", "relief", "accelflow")


def _energy_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    # Colocated runs (all services share one server) cannot split
    # further; one shard per architecture, sharing a derived seed.
    return [
        Shard("char-energy", (arch,), {"architecture": arch},
              derive_seed(seed, "char-energy"))
        for arch in _ENERGY_ARCHES
    ]


def _energy_shard(shard: Shard, scale: str):
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
        colocated=True,
        rate_scale=0.25,  # colocated: keep the shared server feasible
    )
    return run_experiment(social_network_services(), config)


def _energy_merge(payloads: Dict, scale: str, seed: int) -> Dict:
    summaries = {}
    per_request_j = {}
    perf_per_watt = {}
    for arch in _ENERGY_ARCHES:
        result = payloads[(arch,)]
        energy = energy_summary(result)
        summaries[arch] = energy
        per_request_j[arch] = energy["total_j"] / max(1, result.total_completed())
        perf_per_watt[arch] = energy["perf_per_watt"]
    savings = 100.0 * (1 - per_request_j["accelflow"] / per_request_j["non-acc"])
    ppw_vs_nonacc = perf_per_watt["accelflow"] / perf_per_watt["non-acc"]
    ppw_vs_relief = perf_per_watt["accelflow"] / perf_per_watt["relief"]
    rows = [
        [arch, f"{per_request_j[arch] * 1e6:.1f}", f"{perf_per_watt[arch]:.1f}"]
        for arch in summaries
    ]
    table = format_table(
        ["Architecture", "energy/request (uJ)", "perf/W (RPS/W)"],
        rows,
        title="VII.B.5: energy and performance per watt",
    )
    table += (
        f"\n\nAccelFlow energy/request vs Non-acc: -{savings:.1f}% (paper: -74%)"
        f"\nperf/W: {ppw_vs_nonacc:.1f}x Non-acc (paper 7.2x), "
        f"{ppw_vs_relief:.1f}x RELIEF (paper 2.1x)"
    )
    return {
        "summaries": summaries,
        "per_request_j": per_request_j,
        "energy_savings_pct": savings,
        "ppw_vs_nonacc": ppw_vs_nonacc,
        "ppw_vs_relief": ppw_vs_relief,
        "table": table,
    }


SHARDED_ENERGY = ShardedExperiment(
    "char-energy", _energy_shards, _energy_shard, _energy_merge,
)


def run_energy(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """VII.B.5: energy and performance-per-watt comparison."""
    return SHARDED_ENERGY.run(scale=scale, seed=seed, executor=executor)


# -- VII.B.6: high-overhead events ---------------------------------------

def _events_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return _service_shards("char-events", seed)


def _events_shard(shard: Shard, scale: str) -> Dict:
    cell = _alibaba_cell(shard, scale)
    return {
        "hardware": cell["hardware_stats"],
        "orchestrator": cell["orchestrator_stats"],
        "completed": cell["service"].completed,
    }


def _events_merge(payloads: Dict, scale: str, seed: int) -> Dict:
    total_ops = 0
    overflow = 0
    rejected = 0
    tlb_accesses = tlb_misses = page_faults = 0.0
    timeouts = 0
    completed = 0
    for cell in payloads.values():
        hw = cell["hardware"]
        for accel_stats in hw["accelerators"].values():
            total_ops += int(accel_stats["ops_completed"])
            overflow += int(accel_stats["overflow_admissions"])
            rejected += int(accel_stats["ops_rejected"])
        tlb = hw["tlb"]
        tlb_accesses += tlb["accesses"]
        tlb_misses += tlb["misses"]
        page_faults += tlb["page_faults"]
        timeouts += int(cell["orchestrator"]["tcp_timeouts"])
        completed += cell["completed"]
    rows = [
        ["overflow admissions / invocation",
         f"{overflow / max(1, total_ops) * 100:.2f}%", "1.4% (peak 5.9%)"],
        ["queue-full fallbacks / invocation",
         f"{rejected / max(1, total_ops) * 100:.3f}%", "(rare)"],
        ["TLB miss rate", f"{tlb_misses / max(1, tlb_accesses) * 100:.2f}%",
         "~2% (3.4 MPKI)"],
        ["page faults / M ops", f"{page_faults / max(1, total_ops) * 1e6:.1f}",
         "0.13 / M instr"],
        ["TCP timeouts / M requests", f"{timeouts / max(1, completed) * 1e6:.1f}",
         "3.2 / M requests"],
    ]
    table = format_table(
        ["Event", "Measured", "Paper"],
        rows,
        title="VII.B.6: frequency of high-overhead events",
    )
    return {
        "total_ops": total_ops,
        "overflow_admissions": overflow,
        "rejected": rejected,
        "tlb_miss_rate": tlb_misses / max(1, tlb_accesses),
        "page_faults": page_faults,
        "tcp_timeouts": timeouts,
        "table": table,
    }


SHARDED_EVENTS = ShardedExperiment(
    "char-events", _events_shards, _events_shard, _events_merge,
)


def run_events(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """VII.B.6: frequency of high-overhead events."""
    return SHARDED_EVENTS.run(scale=scale, seed=seed, executor=executor)

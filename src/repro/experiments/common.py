"""Shared utilities for the per-figure experiment harness.

Every experiment module exposes ``run(scale=...) -> dict`` returning the
figure's data plus a preformatted ``"table"`` string that prints the
same rows/series the paper reports. The ``scale`` knob trades accuracy
for runtime:

* ``"smoke"`` — seconds; CI-sized sanity runs.
* ``"quick"`` — tens of seconds; the default for the benchmark suite.
* ``"full"``  — minutes; tighter tails for EXPERIMENTS.md numbers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

__all__ = [
    "SCALES",
    "requests_for",
    "format_table",
    "pct_reduction",
    "pick_service",
    "MAIN_ARCHITECTURES",
    "LADDER",
]

#: Requests per service at each scale.
SCALES: Dict[str, int] = {"smoke": 60, "quick": 200, "full": 600}

#: The five systems of Figure 11 (plus Ideal where a figure uses it).
MAIN_ARCHITECTURES = ["non-acc", "cpu-centric", "relief", "cohort", "accelflow"]

#: The Figure 13 ablation ladder, in cumulative order.
LADDER = ["relief", "per-acc-type-q", "direct", "cntrflow", "accelflow"]


def requests_for(scale: str) -> int:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(f"unknown scale {scale!r}; choose from {sorted(SCALES)}") from None


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render a fixed-width text table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    # rstrip: padding the last column with trailing spaces breaks naive
    # snapshot diffs (editors strip them from committed golden files).
    return "\n".join(line.rstrip() for line in lines)


def pick_service(services: Sequence, name: str):
    """The :class:`~repro.workloads.spec.ServiceSpec` called ``name``.

    Shard workers ship service *names* (small and picklable) and
    re-resolve the spec on their side of the process boundary.
    """
    for spec in services:
        if spec.name == name:
            return spec
    raise KeyError(
        f"unknown service {name!r}; known: {[s.name for s in services]}"
    )


def _cell(value: object) -> str:
    if isinstance(value, float):
        # Non-finite values get explicit markers instead of riding the
        # numeric format paths ("nan" formatted as ",.0f" is confusing
        # next to real numbers).
        if value != value:
            return "-"
        if value == float("inf"):
            return "inf"
        if value == float("-inf"):
            return "-inf"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def pct_reduction(baseline: float, improved: float) -> float:
    """Percentage reduction of ``improved`` relative to ``baseline``."""
    if baseline <= 0:
        return 0.0
    return 100.0 * (1.0 - improved / baseline)

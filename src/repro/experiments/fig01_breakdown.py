"""Figure 1: execution-time breakdown of SocialNetwork services.

The paper profiles each service on a Xeon server and splits its time
into AppLogic and the six tax categories; bars are normalized and the
absolute execution times sit on top. Here the breakdown comes from the
calibrated service models, cross-checked against a measured software-
only (Non-acc) run whose CPU time must match the configured totals.
"""

from __future__ import annotations

from typing import Dict

from ..server import run_unloaded
from ..workloads import TaxCategory, social_network_services
from .common import format_table

__all__ = ["run"]


def run(scale: str = "quick", seed: int = 0) -> Dict:
    services = social_network_services()
    rows = []
    data = {}
    for spec in services:
        fractions = {c: spec.fractions[c] for c in TaxCategory.ALL}
        measured = run_unloaded("non-acc", spec, requests=10, seed=seed)
        data[spec.name] = {
            "total_us": spec.total_time_ns / 1000.0,
            "fractions": fractions,
            "measured_mean_us": measured.mean_ns() / 1000.0,
        }
        rows.append(
            [
                spec.name,
                spec.total_time_ns / 1000.0,
                f"{fractions[TaxCategory.APP_LOGIC] * 100:.1f}%",
                f"{fractions[TaxCategory.TCP] * 100:.1f}%",
                f"{fractions[TaxCategory.ENCRYPTION] * 100:.1f}%",
                f"{fractions[TaxCategory.RPC] * 100:.1f}%",
                f"{fractions[TaxCategory.SERIALIZATION] * 100:.1f}%",
                f"{fractions[TaxCategory.COMPRESSION] * 100:.1f}%",
                f"{fractions[TaxCategory.LOAD_BALANCING] * 100:.1f}%",
            ]
        )
    count = len(services)
    averages = {
        c: sum(d["fractions"][c] for d in data.values()) / count
        for c in TaxCategory.ALL
    }
    rows.append(
        [
            "Average",
            sum(d["total_us"] for d in data.values()) / count,
        ]
        + [f"{averages[c] * 100:.1f}%" for c in TaxCategory.ALL]
    )
    table = format_table(
        ["Service", "Time(us)", "AppLogic", "TCP", "(De)Encr", "RPC",
         "(De)Ser", "(De)Cmp", "LdB"],
        rows,
        title="Fig 1: Execution-time breakdown of SocialNetwork services",
    )
    return {"services": data, "averages": averages, "table": table}

"""Figure 1: execution-time breakdown of SocialNetwork services.

The paper profiles each service on a Xeon server and splits its time
into AppLogic and the six tax categories; bars are normalized and the
absolute execution times sit on top. Here the breakdown comes from the
calibrated service models, cross-checked against a measured software-
only (Non-acc) run whose CPU time must match the configured totals.
"""

from __future__ import annotations

from typing import Dict, List

from ..server import run_unloaded
from ..sim import derive_seed
from ..workloads import TaxCategory, social_network_services
from .common import format_table, pick_service
from .parallel import Shard, ShardedExperiment

__all__ = ["run"]


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        Shard("fig1", (spec.name,), {"service": spec.name},
              derive_seed(seed, "fig1", spec.name))
        for spec in social_network_services()
    ]


def run_shard(shard: Shard, scale: str) -> float:
    """Measured software-only mean latency (us) for one service."""
    spec = pick_service(social_network_services(), shard.params["service"])
    measured = run_unloaded("non-acc", spec, requests=10, seed=shard.seed)
    return measured.mean_ns() / 1000.0


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    services = social_network_services()
    rows = []
    data = {}
    for spec in services:
        fractions = {c: spec.fractions[c] for c in TaxCategory.ALL}
        data[spec.name] = {
            "total_us": spec.total_time_ns / 1000.0,
            "fractions": fractions,
            "measured_mean_us": payloads[(spec.name,)],
        }
        rows.append(
            [
                spec.name,
                spec.total_time_ns / 1000.0,
                f"{fractions[TaxCategory.APP_LOGIC] * 100:.1f}%",
                f"{fractions[TaxCategory.TCP] * 100:.1f}%",
                f"{fractions[TaxCategory.ENCRYPTION] * 100:.1f}%",
                f"{fractions[TaxCategory.RPC] * 100:.1f}%",
                f"{fractions[TaxCategory.SERIALIZATION] * 100:.1f}%",
                f"{fractions[TaxCategory.COMPRESSION] * 100:.1f}%",
                f"{fractions[TaxCategory.LOAD_BALANCING] * 100:.1f}%",
            ]
        )
    count = len(services)
    averages = {
        c: sum(d["fractions"][c] for d in data.values()) / count
        for c in TaxCategory.ALL
    }
    rows.append(
        [
            "Average",
            sum(d["total_us"] for d in data.values()) / count,
        ]
        + [f"{averages[c] * 100:.1f}%" for c in TaxCategory.ALL]
    )
    table = format_table(
        ["Service", "Time(us)", "AppLogic", "TCP", "(De)Encr", "RPC",
         "(De)Ser", "(De)Cmp", "LdB"],
        rows,
        title="Fig 1: Execution-time breakdown of SocialNetwork services",
    )
    return {"services": data, "averages": averages, "table": table}


SHARDED = ShardedExperiment("fig1", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

"""Figure 3: orchestration overhead vs. load.

The paper simulates CPU-Centric, HW-Manager (RELIEF) and Direct
orchestration and reports the orchestration overhead as a fraction of
total service execution time, averaged across services, as the load
sweeps up to 15 kRPS. The headline shape: Direct << HW-Manager <
CPU-Centric, with the latter two growing rapidly with load (25% and
15% at 15 kRPS).
"""

from __future__ import annotations

from typing import Dict, List

from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "APPROACHES", "LOADS_KRPS"]

APPROACHES = ["cpu-centric", "relief", "direct"]
LOADS_KRPS = [2.5, 5.0, 10.0, 15.0]


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    # All approaches at one load share a derived seed: common random
    # numbers keep the cross-approach comparison tight.
    return [
        Shard("fig3", (arch, load), {"architecture": arch, "load_krps": load},
              derive_seed(seed, "fig3", load))
        for arch in APPROACHES
        for load in LOADS_KRPS
    ]


def run_shard(shard: Shard, scale: str) -> float:
    """Orchestration fraction for one (approach, load) cell."""
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="poisson",
        rate_rps=shard.params["load_krps"] * 1000.0,
    )
    result = run_experiment(social_network_services(), config)
    return result.orchestration_fraction()


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    data: Dict[str, Dict[float, float]] = {
        arch: {load: payloads[(arch, load)] for load in LOADS_KRPS}
        for arch in APPROACHES
    }
    rows: List[List[object]] = []
    label = {"cpu-centric": "CPU-Centric", "relief": "HW-Manager", "direct": "Direct"}
    for arch in APPROACHES:
        rows.append(
            [label[arch]]
            + [f"{data[arch][load] * 100:.1f}%" for load in LOADS_KRPS]
        )
    table = format_table(
        ["Approach"] + [f"{load:g} kRPS" for load in LOADS_KRPS],
        rows,
        title="Fig 3: Orchestration overhead fraction vs load",
    )
    return {"fractions": data, "loads_krps": LOADS_KRPS, "table": table}


SHARDED = ShardedExperiment("fig3", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

"""Figure 3: orchestration overhead vs. load.

The paper simulates CPU-Centric, HW-Manager (RELIEF) and Direct
orchestration and reports the orchestration overhead as a fraction of
total service execution time, averaged across services, as the load
sweeps up to 15 kRPS. The headline shape: Direct << HW-Manager <
CPU-Centric, with the latter two growing rapidly with load (25% and
15% at 15 kRPS).
"""

from __future__ import annotations

from typing import Dict, List

from ..server import RunConfig, run_experiment
from ..workloads import social_network_services
from .common import format_table, requests_for

__all__ = ["run", "APPROACHES", "LOADS_KRPS"]

APPROACHES = ["cpu-centric", "relief", "direct"]
LOADS_KRPS = [2.5, 5.0, 10.0, 15.0]


def run(scale: str = "quick", seed: int = 0) -> Dict:
    requests = requests_for(scale)
    services = social_network_services()
    data: Dict[str, Dict[float, float]] = {arch: {} for arch in APPROACHES}
    for arch in APPROACHES:
        for load in LOADS_KRPS:
            config = RunConfig(
                architecture=arch,
                requests_per_service=requests,
                seed=seed,
                arrival_mode="poisson",
                rate_rps=load * 1000.0,
            )
            result = run_experiment(services, config)
            data[arch][load] = result.orchestration_fraction()
    rows: List[List[object]] = []
    label = {"cpu-centric": "CPU-Centric", "relief": "HW-Manager", "direct": "Direct"}
    for arch in APPROACHES:
        rows.append(
            [label[arch]]
            + [f"{data[arch][load] * 100:.1f}%" for load in LOADS_KRPS]
        )
    table = format_table(
        ["Approach"] + [f"{load:g} kRPS" for load in LOADS_KRPS],
        rows,
        title="Fig 3: Orchestration overhead fraction vs load",
    )
    return {"fractions": data, "loads_krps": LOADS_KRPS, "table": table}

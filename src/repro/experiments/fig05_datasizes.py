"""Figure 5: input/output data sizes of each accelerator.

The paper reports per-accelerator max/median/min payload sizes: medians
of a few KB with a long tail to tens of KB, and no bar for LdB (it
carries no data). Reproduced by sampling the payload model across the
SocialNetwork services' wire-size distributions.
"""

from __future__ import annotations

from typing import Dict

from ..hw import ACCEL_KINDS, AcceleratorKind
from ..sim import RandomStreams, percentile
from ..workloads import PayloadModel, social_network_services
from .common import format_table
from .parallel import single_shard

__all__ = ["run"]

_SAMPLES_PER_SERVICE = 2000


def _compute(scale: str = "quick", seed: int = 0) -> Dict:
    streams = RandomStreams(seed)
    services = social_network_services()
    sizes: Dict[AcceleratorKind, Dict[str, list]] = {
        kind: {"in": [], "out": []} for kind in ACCEL_KINDS
    }
    for spec in services:
        model = PayloadModel(
            streams.stream(f"fig5/{spec.name}"), median_bytes=spec.wire_median_bytes
        )
        for _ in range(_SAMPLES_PER_SERVICE):
            wire = model.sample_wire_size()
            for kind in ACCEL_KINDS:
                data_in, data_out = PayloadModel.sizes_for(kind, wire)
                sizes[kind]["in"].append(data_in)
                sizes[kind]["out"].append(data_out)

    rows = []
    stats = {}
    for kind in ACCEL_KINDS:
        if kind is AcceleratorKind.LDB:
            continue  # no LdB bar in the paper: it carries no data
        in_sorted = sorted(sizes[kind]["in"])
        out_sorted = sorted(sizes[kind]["out"])
        entry = {
            "in": {
                "min": in_sorted[0],
                "median": percentile(in_sorted, 50.0),
                "max": in_sorted[-1],
            },
            "out": {
                "min": out_sorted[0],
                "median": percentile(out_sorted, 50.0),
                "max": out_sorted[-1],
            },
        }
        stats[kind.value] = entry
        rows.append(
            [
                kind.value,
                f"{entry['in']['min'] / 1024:.2f}",
                f"{entry['in']['median'] / 1024:.2f}",
                f"{entry['in']['max'] / 1024:.1f}",
                f"{entry['out']['min'] / 1024:.2f}",
                f"{entry['out']['median'] / 1024:.2f}",
                f"{entry['out']['max'] / 1024:.1f}",
            ]
        )
    table = format_table(
        ["Accel", "In min(KB)", "In med(KB)", "In max(KB)",
         "Out min(KB)", "Out med(KB)", "Out max(KB)"],
        rows,
        title="Fig 5: Input/output data sizes per accelerator",
    )
    return {"sizes": stats, "table": table}


SHARDED = single_shard("fig5", _compute)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

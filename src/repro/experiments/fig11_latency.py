"""Figure 11: P99 tail and average latency under production-like load.

Five architectures x eight SocialNetwork services driven by the
Alibaba-trace-like arrival model (average 13.4K RPS per service).
The paper's headline: AccelFlow shortest tail in every service,
followed by RELIEF/Cohort, then CPU-Centric, then Non-acc; average
reductions 90.7% / 81.2% / 68.8% / 70.1% (P99) and 77.2% / 53.9% /
40.7% / 37.9% (mean).
"""

from __future__ import annotations

from typing import Dict, List

from ..server import RunConfig, combine_dedicated, run_dedicated_service
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import MAIN_ARCHITECTURES, format_table, pct_reduction, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "PAPER_P99_REDUCTIONS", "PAPER_MEAN_REDUCTIONS"]

PAPER_P99_REDUCTIONS = {
    "non-acc": 90.7,
    "cpu-centric": 81.2,
    "relief": 68.8,
    "cohort": 70.1,
}
PAPER_MEAN_REDUCTIONS = {
    "non-acc": 77.2,
    "cpu-centric": 53.9,
    "relief": 40.7,
    "cohort": 37.9,
}


def make_shards(scale: str = "quick", seed: int = 0, architectures=None) -> List[Shard]:
    architectures = architectures or MAIN_ARCHITECTURES
    # Architectures measuring the same service share a derived seed
    # (common random numbers across the comparison axis).
    return [
        Shard("fig11", (arch, spec.name),
              {"architecture": arch, "service": spec.name},
              derive_seed(seed, "fig11", spec.name))
        for arch in architectures
        for spec in social_network_services()
    ]


def run_shard(shard: Shard, scale: str) -> Dict:
    """One dedicated-mode (architecture, service) measurement cell."""
    spec = pick_service(social_network_services(), shard.params["service"])
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
    )
    return run_dedicated_service(spec, config)


def merge(payloads: Dict, scale: str, seed: int, architectures=None) -> Dict:
    architectures = architectures or MAIN_ARCHITECTURES
    services = social_network_services()
    results = {
        arch: combine_dedicated(
            arch, {spec.name: payloads[(arch, spec.name)] for spec in services}
        )
        for arch in architectures
    }

    rows = []
    for spec in services:
        row = [spec.name]
        for arch in architectures:
            row.append(results[arch].p99_ns(spec.name) / 1000.0)
        rows.append(row)
    mean_row = ["MEAN-P99"]
    for arch in architectures:
        mean_row.append(results[arch].mean_p99_ns() / 1000.0)
    rows.append(mean_row)
    avg_row = ["MEAN-AVG"]
    for arch in architectures:
        avg_row.append(results[arch].mean_latency_ns() / 1000.0)
    rows.append(avg_row)
    table = format_table(
        ["Service"] + list(architectures),
        rows,
        title="Fig 11: P99 tail latency (us) per service and architecture",
    )
    from ..analysis import bar_chart

    table += "\n\n" + bar_chart(
        {arch: results[arch].mean_p99_ns() / 1000.0 for arch in architectures},
        title="mean P99 (us)",
        unit=" us",
    )

    reductions = {}
    if "accelflow" in results:
        accelflow = results["accelflow"]
        for arch in architectures:
            if arch == "accelflow":
                continue
            reductions[arch] = {
                "p99": pct_reduction(
                    results[arch].mean_p99_ns(), accelflow.mean_p99_ns()
                ),
                "mean": pct_reduction(
                    results[arch].mean_latency_ns(), accelflow.mean_latency_ns()
                ),
                "paper_p99": PAPER_P99_REDUCTIONS.get(arch),
                "paper_mean": PAPER_MEAN_REDUCTIONS.get(arch),
            }
        summary_rows = [
            [arch, f"-{r['p99']:.1f}%", f"-{r['paper_p99']}%",
             f"-{r['mean']:.1f}%", f"-{r['paper_mean']}%"]
            for arch, r in reductions.items()
        ]
        table += "\n\n" + format_table(
            ["AccelFlow vs", "P99", "paper P99", "mean", "paper mean"],
            summary_rows,
            title="AccelFlow latency reductions",
        )
    return {
        "results": results,
        "reductions": reductions,
        "table": table,
    }


SHARDED = ShardedExperiment("fig11", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, architectures=None, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(
        scale=scale, seed=seed, executor=executor, architectures=architectures
    )

"""Figure 12: P99 tail latency under 5K/10K/15K RPS Poisson loads.

DeathStarBench applications (SocialNetwork plus HotelReservation and
MediaServices) at three uniform per-service loads. The paper's shape:
AccelFlow wins at every load and its advantage grows with load (tail
reduction over RELIEF: 55.1% / 60.9% / 68.3% at 5/10/15K RPS).
"""

from __future__ import annotations

from typing import Dict, List

from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import (
    hotel_reservation_services,
    media_services,
    social_network_services,
)
from .common import MAIN_ARCHITECTURES, format_table, pct_reduction, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "LOADS_RPS"]

LOADS_RPS = [5000.0, 10000.0, 15000.0]


def _services(include_extra_suites: bool):
    services = social_network_services()
    if include_extra_suites:
        services = services + hotel_reservation_services() + media_services()
    return services


def make_shards(
    scale: str = "quick",
    seed: int = 0,
    include_extra_suites: bool = True,
    architectures=None,
) -> List[Shard]:
    architectures = architectures or MAIN_ARCHITECTURES
    return [
        Shard("fig12", (arch, load),
              {"architecture": arch, "load_rps": load,
               "extra_suites": include_extra_suites},
              derive_seed(seed, "fig12", load))
        for arch in architectures
        for load in LOADS_RPS
    ]


def run_shard(shard: Shard, scale: str) -> float:
    """Mean P99 (ns) for one (architecture, load) cell."""
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="poisson",
        rate_rps=shard.params["load_rps"],
    )
    result = run_experiment(_services(shard.params["extra_suites"]), config)
    return result.mean_p99_ns()


def merge(
    payloads: Dict,
    scale: str,
    seed: int,
    include_extra_suites: bool = True,
    architectures=None,
) -> Dict:
    architectures = architectures or MAIN_ARCHITECTURES
    data: Dict[str, Dict[float, float]] = {
        arch: {load: payloads[(arch, load)] for load in LOADS_RPS}
        for arch in architectures
    }

    rows = []
    for arch in architectures:
        rows.append([arch] + [data[arch][load] / 1000.0 for load in LOADS_RPS])
    table = format_table(
        ["Architecture"] + [f"{load / 1000:g}K RPS" for load in LOADS_RPS],
        rows,
        title="Fig 12: mean P99 tail latency (us) vs load",
    )
    from ..analysis import series_chart

    table += "\n\n" + series_chart(
        {arch: [data[arch][load] / 1000.0 for load in LOADS_RPS]
         for arch in architectures},
        x_labels=[f"{load / 1000:g}K" for load in LOADS_RPS],
        title="P99 (us) vs load",
    )
    gains_vs_relief = {}
    if "accelflow" in data and "relief" in data:
        gains_vs_relief = {
            load: pct_reduction(data["relief"][load], data["accelflow"][load])
            for load in LOADS_RPS
        }
        table += "\n\nAccelFlow P99 reduction over RELIEF: " + ", ".join(
            f"{load / 1000:g}K={gain:.1f}%" for load, gain in gains_vs_relief.items()
        ) + "  (paper: 5K=55.1%, 10K=60.9%, 15K=68.3%)"
    return {"p99_ns": data, "gains_vs_relief": gains_vs_relief, "table": table}


SHARDED = ShardedExperiment("fig12", make_shards, run_shard, merge)


def run(
    scale: str = "quick",
    seed: int = 0,
    include_extra_suites: bool = True,
    architectures=None,
    executor=None,
) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(
        scale=scale,
        seed=seed,
        executor=executor,
        include_extra_suites=include_extra_suites,
        architectures=architectures,
    )

"""Figure 13: the AccelFlow technique ladder.

Starting from RELIEF (single centralized queue + manager), techniques
are added cumulatively: PerAccTypeQ (a queue per accelerator type),
Direct (traces + direct accelerator-to-accelerator transfers), CntrFlow
(dispatchers resolve branches), and full AccelFlow (dispatchers also
transform data and handle large payloads). The paper's cumulative mean
tail-latency reductions: 6.8% / 32.7% / 55.1% / 68.7%.
"""

from __future__ import annotations

from typing import Dict, List

from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import LADDER, format_table, pct_reduction, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "PAPER_CUMULATIVE_REDUCTIONS"]

PAPER_CUMULATIVE_REDUCTIONS = {
    "per-acc-type-q": 6.8,
    "direct": 32.7,
    "cntrflow": 55.1,
    "accelflow": 68.7,
}


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    # Every rung replays the identical workload (one shared derived
    # seed): the ladder is a controlled experiment on the architecture.
    return [
        Shard("fig13", (arch,), {"architecture": arch},
              derive_seed(seed, "fig13"))
        for arch in LADDER
    ]


def run_shard(shard: Shard, scale: str) -> Dict:
    """Mean and per-service P99 (ns) for one ladder rung."""
    services = social_network_services()
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
    )
    result = run_experiment(services, config)
    return {
        "mean_p99_ns": result.mean_p99_ns(),
        "per_service_p99_ns": {
            spec.name: result.p99_ns(spec.name) for spec in services
        },
    }


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    p99 = {arch: payloads[(arch,)]["mean_p99_ns"] for arch in LADDER}
    per_service = {
        arch: payloads[(arch,)]["per_service_p99_ns"] for arch in LADDER
    }

    baseline = p99[LADDER[0]]
    rows = []
    reductions = {}
    for arch in LADDER:
        reduction = pct_reduction(baseline, p99[arch])
        reductions[arch] = reduction
        rows.append(
            [
                arch,
                p99[arch] / 1000.0,
                f"-{reduction:.1f}%",
                f"-{PAPER_CUMULATIVE_REDUCTIONS.get(arch, 0.0)}%",
            ]
        )
    table = format_table(
        ["Rung", "mean P99 (us)", "vs RELIEF", "paper"],
        rows,
        title="Fig 13: cumulative effect of AccelFlow techniques",
    )
    return {
        "p99_ns": p99,
        "per_service_p99_ns": per_service,
        "reductions": reductions,
        "table": table,
    }


SHARDED = ShardedExperiment("fig13", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

"""Figure 13: the AccelFlow technique ladder.

Starting from RELIEF (single centralized queue + manager), techniques
are added cumulatively: PerAccTypeQ (a queue per accelerator type),
Direct (traces + direct accelerator-to-accelerator transfers), CntrFlow
(dispatchers resolve branches), and full AccelFlow (dispatchers also
transform data and handle large payloads). The paper's cumulative mean
tail-latency reductions: 6.8% / 32.7% / 55.1% / 68.7%.
"""

from __future__ import annotations

from typing import Dict

from ..server import RunConfig, run_experiment
from ..workloads import social_network_services
from .common import LADDER, format_table, pct_reduction, requests_for

__all__ = ["run", "PAPER_CUMULATIVE_REDUCTIONS"]

PAPER_CUMULATIVE_REDUCTIONS = {
    "per-acc-type-q": 6.8,
    "direct": 32.7,
    "cntrflow": 55.1,
    "accelflow": 68.7,
}


def run(scale: str = "quick", seed: int = 0) -> Dict:
    requests = requests_for(scale)
    services = social_network_services()
    p99: Dict[str, float] = {}
    per_service: Dict[str, Dict[str, float]] = {}
    for arch in LADDER:
        config = RunConfig(
            architecture=arch,
            requests_per_service=requests,
            seed=seed,
            arrival_mode="alibaba",
        )
        result = run_experiment(services, config)
        p99[arch] = result.mean_p99_ns()
        per_service[arch] = {
            spec.name: result.p99_ns(spec.name) for spec in services
        }

    baseline = p99[LADDER[0]]
    rows = []
    reductions = {}
    for arch in LADDER:
        reduction = pct_reduction(baseline, p99[arch])
        reductions[arch] = reduction
        rows.append(
            [
                arch,
                p99[arch] / 1000.0,
                f"-{reduction:.1f}%",
                f"-{PAPER_CUMULATIVE_REDUCTIONS.get(arch, 0.0)}%",
            ]
        )
    table = format_table(
        ["Rung", "mean P99 (us)", "vs RELIEF", "paper"],
        rows,
        title="Fig 13: cumulative effect of AccelFlow techniques",
    )
    return {
        "p99_ns": p99,
        "per_service_p99_ns": per_service,
        "reductions": reductions,
        "table": table,
    }

"""Figure 14: maximum throughput under the SLO.

Per service, the highest load whose P99 stays within the SLO (5x the
unloaded latency on that architecture, after [15], [58]), including the
Ideal system. The paper reports AccelFlow at 8.3x Non-acc, 2.2x RELIEF,
within 8% of Ideal, and an extra 1.6x from deadline-aware (EDF)
scheduling (Section IV-C).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..hw import QueuePolicy
from ..server import max_throughput_search, run_unloaded
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run"]

DEFAULT_ARCHITECTURES = ["non-acc", "cpu-centric", "relief", "cohort",
                         "accelflow", "ideal"]
#: Services used at the quick scale (the cheapest to probe).
QUICK_SERVICES = ["UniqId", "StoreP", "CUrls"]
#: Service mix for the deadline-aware (EDF) scheduling study: a short
#: latency-critical service colocated with heavy ones, so that deadline
#: priority actually has something to reorder.
EDF_MIX = ["UniqId", "CPost", "StoreP"]


def _iterations(scale: str) -> int:
    return {"smoke": 3, "quick": 5, "full": 7}.get(scale, 5)


def _fig14_services(scale: str):
    services = social_network_services()
    if scale != "full":
        services = [s for s in services if s.name in QUICK_SERVICES]
    return services


def _edf_mixed_gain(scale: str, seed: int, iterations: int) -> float:
    """Throughput gain from deadline-priority scheduling (Section IV-C).

    Colocates the EDF service mix and binary-searches, per queue policy,
    the largest load multiplier at which *every* service still meets its
    SLO (5x unloaded). The gain is the EDF/FIFO ratio of those maxima.
    """
    from ..server import RunConfig, run_experiment

    services = [
        s for s in social_network_services() if s.name in EDF_MIX
    ]
    refs = {
        spec.name: run_unloaded("accelflow", spec, requests=10, seed=seed).mean_ns()
        for spec in services
    }
    probe_requests = max(150, requests_for(scale))

    def violates(rate_scale: float, policy: str) -> bool:
        config = RunConfig(
            architecture="accelflow",
            requests_per_service=probe_requests,
            seed=seed,
            arrival_mode="poisson",
            rate_scale=rate_scale,
            colocated=True,
            queue_policy=policy,
            unloaded_reference_ns=refs,
        )
        result = run_experiment(services, config)
        if result.total_censored() > 0:
            return True
        return any(
            result.p99_ns(spec.name) > 5.0 * refs[spec.name] for spec in services
        )

    def max_scale(policy: str) -> float:
        lo, hi = 0.5, 8.0
        if violates(lo, policy):
            return lo
        for _ in range(iterations):
            mid = (lo + hi) / 2.0
            if violates(mid, policy):
                hi = mid
            else:
                lo = mid
        return lo

    fifo = max_scale(QueuePolicy.FIFO)
    edf = max_scale(QueuePolicy.EDF)
    return edf / fifo if fifo > 0 else 1.0


def make_shards(
    scale: str = "quick",
    seed: int = 0,
    architectures: Optional[List[str]] = None,
    include_edf: bool = True,
) -> List[Shard]:
    architectures = architectures or DEFAULT_ARCHITECTURES
    shards = [
        Shard("fig14", (arch, spec.name),
              {"architecture": arch, "service": spec.name},
              derive_seed(seed, "fig14", spec.name))
        for arch in architectures
        for spec in _fig14_services(scale)
    ]
    if include_edf and "accelflow" in architectures:
        shards.append(
            Shard("fig14", ("edf",), {"edf": True},
                  derive_seed(seed, "fig14", "edf"))
        )
    return shards


def run_shard(shard: Shard, scale: str):
    """One SLO-bounded throughput search (or the EDF colocation study)."""
    iterations = _iterations(scale)
    if shard.params.get("edf"):
        return _edf_mixed_gain(scale, shard.seed, iterations)
    requests = requests_for(scale)
    arch = shard.params["architecture"]
    spec = pick_service(social_network_services(), shard.params["service"])
    unloaded = run_unloaded(arch, spec, requests=12, seed=shard.seed).mean_ns()
    slo_ns = 5.0 * unloaded
    throughput = max_throughput_search(
        arch,
        spec,
        slo_ns=slo_ns,
        requests=max(120, requests // 2),
        seed=shard.seed,
        iterations=iterations,
        probe_cap=max(400, requests * 2),
    )
    return {"slo_ns": slo_ns, "throughput_rps": throughput}


def merge(
    payloads: Dict,
    scale: str,
    seed: int,
    architectures: Optional[List[str]] = None,
    include_edf: bool = True,
) -> Dict:
    architectures = architectures or DEFAULT_ARCHITECTURES
    services = _fig14_services(scale)
    throughput: Dict[str, Dict[str, float]] = {a: {} for a in architectures}
    slo: Dict[str, Dict[str, float]] = {a: {} for a in architectures}
    for arch in architectures:
        for spec in services:
            cell = payloads[(arch, spec.name)]
            slo[arch][spec.name] = cell["slo_ns"]
            throughput[arch][spec.name] = cell["throughput_rps"]
    edf_gain = payloads.get(("edf",))

    rows = []
    for spec in services:
        rows.append(
            [spec.name]
            + [throughput[arch][spec.name] / 1000.0 for arch in architectures]
        )
    means = {
        arch: sum(throughput[arch].values()) / len(services)
        for arch in architectures
    }
    rows.append(["MEAN"] + [means[arch] / 1000.0 for arch in architectures])
    table = format_table(
        ["Service"] + architectures,
        rows,
        title="Fig 14: max throughput under SLO (kRPS)",
    )
    ratios = {}
    if "accelflow" in means:
        for arch in architectures:
            if arch != "accelflow" and means[arch] > 0:
                ratios[arch] = means["accelflow"] / means[arch]
        paper = {"non-acc": 8.3, "relief": 2.2}
        table += "\n\nAccelFlow throughput ratios: " + ", ".join(
            f"{arch}={ratio:.2f}x" + (f" (paper {paper[arch]}x)" if arch in paper else "")
            for arch, ratio in ratios.items()
        )
        if "ideal" in means and means["ideal"] > 0:
            gap = 100.0 * (1 - means["accelflow"] / means["ideal"])
            table += f"\nAccelFlow within {gap:.1f}% of Ideal (paper: 8.0%)"
    if edf_gain is not None:
        table += f"\nEDF scheduling throughput gain: {edf_gain:.2f}x (paper: 1.6x)"
    return {
        "throughput_rps": throughput,
        "means_rps": means,
        "slo_ns": slo,
        "ratios": ratios,
        "edf_gain": edf_gain,
        "table": table,
    }


SHARDED = ShardedExperiment("fig14", make_shards, run_shard, merge)


def run(
    scale: str = "quick",
    seed: int = 0,
    architectures: Optional[List[str]] = None,
    include_edf: bool = True,
    executor=None,
) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(
        scale=scale,
        seed=seed,
        executor=executor,
        architectures=architectures,
        include_edf=include_edf,
    )

"""Figure 15: coarse-grained image-processing / RNN applications.

The paper validates AccelFlow on the gem5-based simulator released with
RELIEF, running its image/RNN benchmark suite; AccelFlow achieves 1.8x
RELIEF's maximum throughput on average. Substituted here with the
coarse-accelerator suite of :mod:`repro.workloads.relief_suite` (see
DESIGN.md): branch-free chains of tens-of-microsecond kernels over
single-instance accelerators, where RELIEF pays a manager round trip
and through-memory data staging on every hand-off while AccelFlow
chains directly. Maximum throughput is SLO-bounded (5x unloaded), as in
Figure 14.
"""

from __future__ import annotations

from typing import Dict, List

from ..server import max_throughput_search, run_unloaded
from ..sim import derive_seed
from ..workloads import (
    coarse_machine_params,
    relief_suite_registry,
    relief_suite_services,
)
from .common import format_table, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run"]

ARCHITECTURES = ["relief", "accelflow"]


def _apps(scale: str):
    apps = relief_suite_services()
    if scale == "smoke":
        apps = apps[:4]
    return apps


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        Shard("fig15", (arch, spec.name),
              {"architecture": arch, "app": spec.name},
              derive_seed(seed, "fig15", spec.name))
        for arch in ARCHITECTURES
        for spec in _apps(scale)
    ]


def run_shard(shard: Shard, scale: str) -> float:
    """SLO-bounded max throughput (RPS) for one (arch, app) cell."""
    requests = max(100, requests_for(scale) // 2)
    iterations = {"smoke": 4, "quick": 5, "full": 7}.get(scale, 5)
    registry = relief_suite_registry()
    params = coarse_machine_params()
    arch = shard.params["architecture"]
    spec = pick_service(relief_suite_services(), shard.params["app"])
    unloaded = run_unloaded(
        arch, spec, requests=10, seed=shard.seed,
        machine_params=params, registry=registry,
    ).mean_ns()
    return max_throughput_search(
        arch,
        spec,
        slo_ns=5.0 * unloaded,
        requests=requests,
        seed=shard.seed,
        iterations=iterations,
        machine_params=params,
        registry=registry,
        probe_cap=max(400, requests * 2),
    )


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    apps = _apps(scale)
    throughput: Dict[str, Dict[str, float]] = {
        arch: {spec.name: payloads[(arch, spec.name)] for spec in apps}
        for arch in ARCHITECTURES
    }

    rows = []
    speedups = {}
    for spec in apps:
        relief_tput = throughput["relief"][spec.name]
        accelflow_tput = throughput["accelflow"][spec.name]
        speedup = accelflow_tput / relief_tput if relief_tput > 0 else 0.0
        speedups[spec.name] = speedup
        rows.append(
            [spec.name, relief_tput, accelflow_tput, f"{speedup:.2f}x"]
        )
    mean_speedup = sum(speedups.values()) / len(speedups)
    rows.append(["MEAN", "", "", f"{mean_speedup:.2f}x"])
    table = format_table(
        ["Application", "RELIEF (RPS)", "AccelFlow (RPS)", "Speedup"],
        rows,
        title="Fig 15: max throughput, coarse image/RNN apps (paper mean: 1.8x)",
    )
    return {
        "throughput_rps": throughput,
        "speedups": speedups,
        "mean_speedup": mean_speedup,
        "table": table,
    }


SHARDED = ShardedExperiment("fig15", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

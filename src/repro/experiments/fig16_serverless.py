"""Figure 16: serverless functions under Azure-like traces.

FunctionBench-style functions colocated on one server, driven by the
spiky Azure arrival model. The paper reports per-function P99 for
Non-acc, RELIEF and AccelFlow, with AccelFlow reducing P99 by 37% over
RELIEF on average — the largest wins on short functions like ImgRot.
"""

from __future__ import annotations

from typing import Dict, List

from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import serverless_functions
from .common import format_table, pct_reduction, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "ARCHITECTURES"]

ARCHITECTURES = ["non-acc", "relief", "accelflow"]


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    # Colocated runs cannot split per function (they share one server);
    # one shard per architecture, all replaying the same arrivals.
    return [
        Shard("fig16", (arch,), {"architecture": arch},
              derive_seed(seed, "fig16"))
        for arch in ARCHITECTURES
    ]


def run_shard(shard: Shard, scale: str):
    """One colocated serverless run; the full result ships back."""
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="azure",
        colocated=True,
    )
    return run_experiment(serverless_functions(), config)


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    functions = serverless_functions()
    results = {arch: payloads[(arch,)] for arch in ARCHITECTURES}

    rows = []
    for spec in functions:
        rows.append(
            [spec.name]
            + [results[arch].p99_ns(spec.name) / 1000.0 for arch in ARCHITECTURES]
        )
    rows.append(
        ["MEAN"] + [results[arch].mean_p99_ns() / 1000.0 for arch in ARCHITECTURES]
    )
    reduction = pct_reduction(
        results["relief"].mean_p99_ns(), results["accelflow"].mean_p99_ns()
    )
    table = format_table(
        ["Function"] + ARCHITECTURES,
        rows,
        title="Fig 16: serverless P99 tail latency (us)",
    )
    table += (
        f"\n\nAccelFlow P99 reduction over RELIEF: {reduction:.1f}% (paper: 37%)"
    )
    return {"results": results, "reduction_vs_relief": reduction, "table": table}


SHARDED = ShardedExperiment("fig16", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

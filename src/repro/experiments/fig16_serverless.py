"""Figure 16: serverless functions under Azure-like traces.

FunctionBench-style functions colocated on one server, driven by the
spiky Azure arrival model. The paper reports per-function P99 for
Non-acc, RELIEF and AccelFlow, with AccelFlow reducing P99 by 37% over
RELIEF on average — the largest wins on short functions like ImgRot.
"""

from __future__ import annotations

from typing import Dict

from ..server import RunConfig, run_experiment
from ..workloads import serverless_functions
from .common import format_table, pct_reduction, requests_for

__all__ = ["run", "ARCHITECTURES"]

ARCHITECTURES = ["non-acc", "relief", "accelflow"]


def run(scale: str = "quick", seed: int = 0) -> Dict:
    requests = requests_for(scale)
    functions = serverless_functions()
    results = {}
    for arch in ARCHITECTURES:
        config = RunConfig(
            architecture=arch,
            requests_per_service=requests,
            seed=seed,
            arrival_mode="azure",
            colocated=True,
        )
        results[arch] = run_experiment(functions, config)

    rows = []
    for spec in functions:
        rows.append(
            [spec.name]
            + [results[arch].p99_ns(spec.name) / 1000.0 for arch in ARCHITECTURES]
        )
    rows.append(
        ["MEAN"] + [results[arch].mean_p99_ns() / 1000.0 for arch in ARCHITECTURES]
    )
    reduction = pct_reduction(
        results["relief"].mean_p99_ns(), results["accelflow"].mean_p99_ns()
    )
    table = format_table(
        ["Function"] + ARCHITECTURES,
        rows,
        title="Fig 16: serverless P99 tail latency (us)",
    )
    table += (
        f"\n\nAccelFlow P99 reduction over RELIEF: {reduction:.1f}% (paper: 37%)"
    )
    return {"results": results, "reduction_vs_relief": reduction, "table": table}

"""Figure 17: components of a service's execution time under AccelFlow.

Unloaded runs (one request at a time) decomposed into CPU, accelerator
compute, orchestration (dispatcher) and communication time. The paper:
accelerator time dominates and orchestration averages only 2.2% (vs
~10% for RELIEF). Remote-dependency waits are reported separately
(they are not part of the on-server execution the paper decomposes).
"""

from __future__ import annotations

from typing import Dict, List

from ..server import run_unloaded
from ..sim import derive_seed
from ..workloads import Buckets, social_network_services
from .common import format_table, pick_service
from .parallel import Shard, ShardedExperiment

__all__ = ["run"]

_FIG17_BUCKETS = (
    Buckets.CPU,
    Buckets.ACCEL,
    Buckets.ORCHESTRATION,
    Buckets.COMMUNICATION,
    Buckets.QUEUE,
)


def make_shards(
    scale: str = "quick", seed: int = 0, architecture: str = "accelflow"
) -> List[Shard]:
    return [
        Shard("fig17", (spec.name,),
              {"service": spec.name, "architecture": architecture},
              derive_seed(seed, "fig17", spec.name))
        for spec in social_network_services()
    ]


def run_shard(shard: Shard, scale: str) -> Dict:
    """Component sums of one unloaded per-service run."""
    spec = pick_service(social_network_services(), shard.params["service"])
    result = run_unloaded(
        shard.params["architecture"], spec, requests=15, seed=shard.seed
    )
    return dict(result.component_sums)


def merge(
    payloads: Dict, scale: str, seed: int, architecture: str = "accelflow"
) -> Dict:
    services = social_network_services()
    rows = []
    data = {}
    orchestration_fractions = []
    for spec in services:
        sums = payloads[(spec.name,)]
        on_server = sum(sums[b] for b in _FIG17_BUCKETS)
        fractions = {
            b: (sums[b] / on_server if on_server > 0 else 0.0)
            for b in _FIG17_BUCKETS
        }
        data[spec.name] = {
            "fractions": fractions,
            "remote_ns": sums[Buckets.REMOTE],
        }
        orchestration_fractions.append(fractions[Buckets.ORCHESTRATION])
        rows.append(
            [
                spec.name,
                f"{fractions[Buckets.CPU] * 100:.1f}%",
                f"{fractions[Buckets.ACCEL] * 100:.1f}%",
                f"{fractions[Buckets.ORCHESTRATION] * 100:.1f}%",
                f"{fractions[Buckets.COMMUNICATION] * 100:.1f}%",
                f"{fractions[Buckets.QUEUE] * 100:.1f}%",
            ]
        )
    mean_orchestration = sum(orchestration_fractions) / len(orchestration_fractions)
    table = format_table(
        ["Service", "CPU", "Accelerators", "Orchestration", "Communication",
         "Queueing"],
        rows,
        title=f"Fig 17: execution-time components ({architecture})",
    )
    table += (
        f"\n\nMean orchestration fraction: {mean_orchestration * 100:.1f}% "
        "(paper: 2.2% for AccelFlow, ~10% for RELIEF)"
    )
    return {
        "services": data,
        "mean_orchestration_fraction": mean_orchestration,
        "table": table,
    }


SHARDED = ShardedExperiment("fig17", make_shards, run_shard, merge)


def run(
    scale: str = "quick",
    seed: int = 0,
    architecture: str = "accelflow",
    executor=None,
) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(
        scale=scale, seed=seed, executor=executor, architecture=architecture
    )

"""Figure 18: P99 tail latency vs. chiplet organization.

AccelFlow with the accelerators packed into 1/2/3/4/6 chiplets (Section
VII.C.1 layouts). More chiplets mean more inter-chiplet crossings per
trace; the paper measures +14% average tail latency from 2 to 6
chiplets.
"""

from __future__ import annotations

from typing import Dict, List

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "CHIPLET_COUNTS"]

CHIPLET_COUNTS = [1, 2, 3, 4, 6]


def make_shards(
    scale: str = "quick", seed: int = 0, architecture: str = "accelflow"
) -> List[Shard]:
    # Layouts share one derived seed: the sweep varies only the hardware.
    return [
        Shard("fig18", (chiplets,),
              {"chiplets": chiplets, "architecture": architecture},
              derive_seed(seed, "fig18"))
        for chiplets in CHIPLET_COUNTS
    ]


def run_shard(shard: Shard, scale: str) -> float:
    """Mean P99 (ns) for one chiplet layout."""
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
        machine_params=MachineParams().with_layout(shard.params["chiplets"]),
    )
    return run_experiment(social_network_services(), config).mean_p99_ns()


def merge(
    payloads: Dict, scale: str, seed: int, architecture: str = "accelflow"
) -> Dict:
    p99 = {chiplets: payloads[(chiplets,)] for chiplets in CHIPLET_COUNTS}

    rows = [
        [f"{chiplets}-chiplet", p99[chiplets] / 1000.0,
         f"{-pct_reduction(p99[2], p99[chiplets]):+.1f}%"]
        for chiplets in CHIPLET_COUNTS
    ]
    table = format_table(
        ["Organization", "mean P99 (us)", "vs 2-chiplet"],
        rows,
        title="Fig 18: tail latency vs chiplet organization "
              "(paper: 2->6 chiplets +14%)",
    )
    increase_2_to_6 = -pct_reduction(p99[2], p99[6])
    return {"p99_ns": p99, "increase_2_to_6_pct": increase_2_to_6, "table": table}


SHARDED = ShardedExperiment("fig18", make_shards, run_shard, merge)


def run(
    scale: str = "quick",
    seed: int = 0,
    architecture: str = "accelflow",
    executor=None,
) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(
        scale=scale, seed=seed, executor=executor, architecture=architecture
    )

"""Figure 18: P99 tail latency vs. chiplet organization.

AccelFlow with the accelerators packed into 1/2/3/4/6 chiplets (Section
VII.C.1 layouts). More chiplets mean more inter-chiplet crossings per
trace; the paper measures +14% average tail latency from 2 to 6
chiplets.
"""

from __future__ import annotations

from typing import Dict

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for

__all__ = ["run", "CHIPLET_COUNTS"]

CHIPLET_COUNTS = [1, 2, 3, 4, 6]


def run(scale: str = "quick", seed: int = 0, architecture: str = "accelflow") -> Dict:
    requests = requests_for(scale)
    services = social_network_services()
    p99: Dict[int, float] = {}
    for chiplets in CHIPLET_COUNTS:
        config = RunConfig(
            architecture=architecture,
            requests_per_service=requests,
            seed=seed,
            arrival_mode="alibaba",
            machine_params=MachineParams().with_layout(chiplets),
        )
        result = run_experiment(services, config)
        p99[chiplets] = result.mean_p99_ns()

    rows = [
        [f"{chiplets}-chiplet", p99[chiplets] / 1000.0,
         f"{-pct_reduction(p99[2], p99[chiplets]):+.1f}%"]
        for chiplets in CHIPLET_COUNTS
    ]
    table = format_table(
        ["Organization", "mean P99 (us)", "vs 2-chiplet"],
        rows,
        title="Fig 18: tail latency vs chiplet organization "
              "(paper: 2->6 chiplets +14%)",
    )
    increase_2_to_6 = -pct_reduction(p99[2], p99[6])
    return {"p99_ns": p99, "increase_2_to_6_pct": increase_2_to_6, "table": table}

"""Figure 19: P99 tail latency vs. PEs per accelerator.

AccelFlow with 2/4/8 PEs per accelerator. Fewer PEs force CPU fallback
(full queues + overflow); the paper measures +20.0% / +35.7% tail
latency with 4 / 2 PEs and rising fallback rates (up to 39% of Encr
requests with 2 PEs).
"""

from __future__ import annotations

from typing import Dict

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for

__all__ = ["run", "PE_COUNTS"]

PE_COUNTS = [2, 4, 8]


def run(scale: str = "quick", seed: int = 0, architecture: str = "accelflow") -> Dict:
    requests = requests_for(scale)
    services = social_network_services()
    p99: Dict[int, float] = {}
    fallback_fraction: Dict[int, float] = {}
    for pes in PE_COUNTS:
        config = RunConfig(
            architecture=architecture,
            requests_per_service=requests,
            seed=seed,
            arrival_mode="alibaba",
            machine_params=MachineParams().with_pes(pes),
        )
        result = run_experiment(services, config)
        p99[pes] = result.mean_p99_ns()
        total = result.total_completed()
        fell_back = sum(s.fallback_requests for s in result.services.values())
        fallback_fraction[pes] = fell_back / total if total else 0.0

    rows = [
        [
            f"{pes} PEs",
            p99[pes] / 1000.0,
            f"{-pct_reduction(p99[8], p99[pes]):+.1f}%",
            f"{fallback_fraction[pes] * 100:.1f}%",
        ]
        for pes in PE_COUNTS
    ]
    table = format_table(
        ["Config", "mean P99 (us)", "vs 8 PEs", "fallback requests"],
        rows,
        title="Fig 19: tail latency vs PEs per accelerator "
              "(paper: 4 PEs +20.0%, 2 PEs +35.7%)",
    )
    return {
        "p99_ns": p99,
        "fallback_fraction": fallback_fraction,
        "increase_4_pct": -pct_reduction(p99[8], p99[4]),
        "increase_2_pct": -pct_reduction(p99[8], p99[2]),
        "table": table,
    }

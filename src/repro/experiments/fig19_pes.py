"""Figure 19: P99 tail latency vs. PEs per accelerator.

AccelFlow with 2/4/8 PEs per accelerator. Fewer PEs force CPU fallback
(full queues + overflow); the paper measures +20.0% / +35.7% tail
latency with 4 / 2 PEs and rising fallback rates (up to 39% of Encr
requests with 2 PEs).
"""

from __future__ import annotations

from typing import Dict, List

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "PE_COUNTS"]

PE_COUNTS = [2, 4, 8]


def make_shards(
    scale: str = "quick", seed: int = 0, architecture: str = "accelflow"
) -> List[Shard]:
    return [
        Shard("fig19", (pes,), {"pes": pes, "architecture": architecture},
              derive_seed(seed, "fig19"))
        for pes in PE_COUNTS
    ]


def run_shard(shard: Shard, scale: str) -> Dict:
    """Mean P99 and fallback fraction for one PE provisioning."""
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
        machine_params=MachineParams().with_pes(shard.params["pes"]),
    )
    result = run_experiment(social_network_services(), config)
    total = result.total_completed()
    fell_back = sum(s.fallback_requests for s in result.services.values())
    return {
        "mean_p99_ns": result.mean_p99_ns(),
        "fallback_fraction": fell_back / total if total else 0.0,
    }


def merge(
    payloads: Dict, scale: str, seed: int, architecture: str = "accelflow"
) -> Dict:
    p99 = {pes: payloads[(pes,)]["mean_p99_ns"] for pes in PE_COUNTS}
    fallback_fraction = {
        pes: payloads[(pes,)]["fallback_fraction"] for pes in PE_COUNTS
    }

    rows = [
        [
            f"{pes} PEs",
            p99[pes] / 1000.0,
            f"{-pct_reduction(p99[8], p99[pes]):+.1f}%",
            f"{fallback_fraction[pes] * 100:.1f}%",
        ]
        for pes in PE_COUNTS
    ]
    table = format_table(
        ["Config", "mean P99 (us)", "vs 8 PEs", "fallback requests"],
        rows,
        title="Fig 19: tail latency vs PEs per accelerator "
              "(paper: 4 PEs +20.0%, 2 PEs +35.7%)",
    )
    return {
        "p99_ns": p99,
        "fallback_fraction": fallback_fraction,
        "increase_4_pct": -pct_reduction(p99[8], p99[4]),
        "increase_2_pct": -pct_reduction(p99[8], p99[2]),
        "table": table,
    }


SHARDED = ShardedExperiment("fig19", make_shards, run_shard, merge)


def run(
    scale: str = "quick",
    seed: int = 0,
    architecture: str = "accelflow",
    executor=None,
) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(
        scale=scale, seed=seed, executor=executor, architecture=architecture
    )

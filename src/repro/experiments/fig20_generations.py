"""Figure 20: tail latency across processor generations.

Non-acc, RELIEF and AccelFlow on Haswell / Skylake / Ice Lake /
Sapphire Rapids / Emerald Rapids core models. Newer cores speed
AppLogic more than tax, so the relative advantage of AccelFlow *grows*
with newer CPUs: the paper's AccelFlow-over-RELIEF P99 reduction rises
from 68.8% (Ice Lake) to 71.7% (Emerald Rapids).
"""

from __future__ import annotations

from typing import Dict, List

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "GENERATIONS", "ARCHITECTURES"]

GENERATIONS = ["haswell", "skylake", "icelake", "sapphire-rapids", "emerald-rapids"]
ARCHITECTURES = ["non-acc", "relief", "accelflow"]


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    # One derived seed for the whole grid: every (generation, arch)
    # cell replays the same workload.
    return [
        Shard("fig20", (generation, arch),
              {"generation": generation, "architecture": arch},
              derive_seed(seed, "fig20"))
        for generation in GENERATIONS
        for arch in ARCHITECTURES
    ]


def run_shard(shard: Shard, scale: str) -> float:
    """Mean P99 (ns) for one (generation, architecture) cell."""
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
        machine_params=MachineParams().with_generation(
            shard.params["generation"]
        ),
    )
    return run_experiment(social_network_services(), config).mean_p99_ns()


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    p99: Dict[str, Dict[str, float]] = {
        arch: {gen: payloads[(gen, arch)] for gen in GENERATIONS}
        for arch in ARCHITECTURES
    }

    rows = []
    for arch in ARCHITECTURES:
        rows.append(
            [arch] + [p99[arch][gen] / 1000.0 for gen in GENERATIONS]
        )
    reductions = {
        gen: pct_reduction(p99["relief"][gen], p99["accelflow"][gen])
        for gen in GENERATIONS
    }
    rows.append(
        ["AccelFlow vs RELIEF"]
        + [f"-{reductions[gen]:.1f}%" for gen in GENERATIONS]
    )
    table = format_table(
        ["Architecture"] + GENERATIONS,
        rows,
        title="Fig 20: mean P99 (us) across processor generations "
              "(paper: reduction grows 68.8% -> 71.7%)",
    )
    return {"p99_ns": p99, "reductions_vs_relief": reductions, "table": table}


SHARDED = ShardedExperiment("fig20", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

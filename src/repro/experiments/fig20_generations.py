"""Figure 20: tail latency across processor generations.

Non-acc, RELIEF and AccelFlow on Haswell / Skylake / Ice Lake /
Sapphire Rapids / Emerald Rapids core models. Newer cores speed
AppLogic more than tax, so the relative advantage of AccelFlow *grows*
with newer CPUs: the paper's AccelFlow-over-RELIEF P99 reduction rises
from 68.8% (Ice Lake) to 71.7% (Emerald Rapids).
"""

from __future__ import annotations

from typing import Dict

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for

__all__ = ["run", "GENERATIONS", "ARCHITECTURES"]

GENERATIONS = ["haswell", "skylake", "icelake", "sapphire-rapids", "emerald-rapids"]
ARCHITECTURES = ["non-acc", "relief", "accelflow"]


def run(scale: str = "quick", seed: int = 0) -> Dict:
    requests = requests_for(scale)
    services = social_network_services()
    p99: Dict[str, Dict[str, float]] = {arch: {} for arch in ARCHITECTURES}
    for generation in GENERATIONS:
        params = MachineParams().with_generation(generation)
        for arch in ARCHITECTURES:
            config = RunConfig(
                architecture=arch,
                requests_per_service=requests,
                seed=seed,
                arrival_mode="alibaba",
                machine_params=params,
            )
            result = run_experiment(services, config)
            p99[arch][generation] = result.mean_p99_ns()

    rows = []
    for arch in ARCHITECTURES:
        rows.append(
            [arch] + [p99[arch][gen] / 1000.0 for gen in GENERATIONS]
        )
    reductions = {
        gen: pct_reduction(p99["relief"][gen], p99["accelflow"][gen])
        for gen in GENERATIONS
    }
    rows.append(
        ["AccelFlow vs RELIEF"]
        + [f"-{reductions[gen]:.1f}%" for gen in GENERATIONS]
    )
    table = format_table(
        ["Architecture"] + GENERATIONS,
        rows,
        title="Fig 20: mean P99 (us) across processor generations "
              "(paper: reduction grows 68.8% -> 71.7%)",
    )
    return {"p99_ns": p99, "reductions_vs_relief": reductions, "table": table}

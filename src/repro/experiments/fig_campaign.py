"""Chaos-campaign experiment: the fleet resilience scorecard.

Thin sharded wrapper around :mod:`repro.faults.campaign`: every
(scenario, architecture, replica) grid cell is one shard, run through
the standard parallel runner, and the merge step renders the
scorecard — availability, P99 inflation, telemetry-observed MTTR and
retry-amplification factor per scenario and architecture, averaged
over the replicas. CI runs this at smoke scale and diffs the table
against its golden fixture: a regression in any recovery path, the
gray-fault plane, or the alert plane moves a cell.
"""

from __future__ import annotations

from typing import Dict

from ..faults import campaign
from ..sim import derive_seed
from .common import format_table, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run"]


def make_shards(scale: str = "quick", seed: int = 0):
    return [
        # Replica seeds depend on (scenario, replica) only: both
        # architectures in one cell replay identical arrivals, request
        # bodies and injection schedules (CRN).
        Shard(
            "campaign",
            (scenario, architecture, replica),
            {
                "scenario": scenario,
                "architecture": architecture,
                "replica": replica,
            },
            derive_seed(seed, "campaign", scenario, str(replica)),
        )
        for scenario in campaign.SCENARIO_ORDER
        for architecture in campaign.ARCHITECTURES
        for replica in range(campaign.REPLICAS)
    ]


def run_shard(shard: Shard, scale: str) -> Dict[str, float]:
    return campaign.run_cell(
        shard.params["architecture"],
        shard.params["scenario"],
        shard.seed,
        requests_for(scale),
    )


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    scorecard: Dict[str, Dict[str, Dict[str, float]]] = {}
    for scenario in campaign.SCENARIO_ORDER:
        scorecard[scenario] = {}
        for architecture in campaign.ARCHITECTURES:
            cells = [
                payloads[(scenario, architecture, replica)]
                for replica in range(campaign.REPLICAS)
            ]
            scorecard[scenario][architecture] = campaign.aggregate(cells)

    rows = []
    for scenario in campaign.SCENARIO_ORDER:
        for architecture in campaign.ARCHITECTURES:
            cell = scorecard[scenario][architecture]
            rows.append(
                [
                    scenario,
                    architecture,
                    100.0 * cell["availability"],
                    cell["p99_inflation"],
                    cell["mttr_ns"] / 1e6,
                    cell["amplification"],
                    cell["alerts_fired"],
                    cell["injected"],
                ]
            )
    table = format_table(
        [
            "Scenario",
            "Arch",
            "Avail%",
            "P99x",
            "MTTR(ms)",
            "Amplif",
            "Alerts",
            "Injected",
        ],
        rows,
        title=(
            "Chaos campaign: resilience scorecard "
            f"({campaign.SERVICE} @ {campaign.RATE_RPS:g} RPS, "
            f"{campaign.REPLICAS} replicas/cell; SLO = "
            f"{campaign.SLO_MULTIPLIER:g}x clean mean; MTTR from "
            "burn-rate alert lifecycles)"
        ),
    )

    # Fleet-level reduction: the worst cell availability is the
    # campaign's headline number (a resilient fleet has no weak cell).
    worst = min(
        scorecard[scenario][architecture]["availability"]
        for scenario in campaign.SCENARIO_ORDER
        for architecture in campaign.ARCHITECTURES
    )
    table += f"\n\nWorst-cell availability: {100.0 * worst:.1f}%"
    return {"scorecard": scorecard, "worst_availability": worst, "table": table}


SHARDED = ShardedExperiment("campaign", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

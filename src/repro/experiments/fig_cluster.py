"""Cluster experiment: balancing policies across MMPP burst loads.

Beyond-paper experiment: a heterogeneous three-machine fleet (one
server per processor generation, oldest to newest) serves three
SocialNetwork services under bursty MMPP arrivals whose regime dwells
are scaled to the run horizon. Each cell is one (policy, load) cluster
run; shards for different policies at the same load share a derived
seed, so the arrival sequence and request bodies are common random
numbers and the policies differ only in routing.

Expected shape: the state-blind round-robin baseline overloads the
weakest machine during bursts, so every occupancy-driven policy beats
it on fleet P99, with the gap growing as the load approaches fleet
saturation (~20K RPS/service per average machine). ``accel-aware``
(global minimum over local pressure + LdB occupancy) and
``power-of-two`` (two random probes of the same pressure signal) track
each other closely; ``least-outstanding`` trails them because the
client-side outstanding counter is washed out by remote waits.
"""

from __future__ import annotations

from typing import Dict, List

from ..cluster import POLICY_ORDER, ClusterConfig, run_cluster
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pct_reduction, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "LOADS_RPS", "SERVICES", "GENERATIONS", "MACHINES"]

#: Cluster-wide per-service offered load (RPS).
LOADS_RPS = [60000.0, 70000.0, 80000.0]

#: The three services the fleet serves (one accel-light, two with
#: heavy payloads and remote waits).
SERVICES = ("UniqId", "StoreP", "Login")

#: Processor generation of machine i — a deliberately skewed fleet.
GENERATIONS = ("haswell", "skylake", "emerald-rapids")

#: Fleet size (fixed; the autoscaler is exercised by its own tests).
MACHINES = 3


def _services():
    all_services = social_network_services()
    return [pick_service(all_services, name) for name in SERVICES]


def make_shards(scale: str = "quick", seed: int = 0, policies=None) -> List[Shard]:
    policies = policies or POLICY_ORDER
    return [
        # Seed depends on the load only: all policies at one load see
        # the same arrivals and requests (common random numbers).
        Shard("fig_cluster", (policy, load), {"policy": policy, "load_rps": load},
              derive_seed(seed, "fig_cluster", load))
        for policy in policies
        for load in LOADS_RPS
    ]


def run_shard(shard: Shard, scale: str) -> Dict[str, float]:
    """Fleet-wide latency stats for one (policy, load) cell."""
    config = ClusterConfig(
        policy=shard.params["policy"],
        machines=MACHINES,
        generations=GENERATIONS,
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="mmpp",
        rate_rps=shard.params["load_rps"],
    )
    result = run_cluster(_services(), config)
    return {
        "p99_ns": result.p99_ns(),
        "mean_ns": result.mean_ns(),
        "completed": float(result.completed),
        "censored": float(result.total_censored()),
    }


def merge(payloads: Dict, scale: str, seed: int, policies=None) -> Dict:
    policies = policies or POLICY_ORDER
    p99: Dict[str, Dict[float, float]] = {
        policy: {load: payloads[(policy, load)]["p99_ns"] for load in LOADS_RPS}
        for policy in policies
    }

    rows = []
    for policy in policies:
        rows.append([policy] + [p99[policy][load] / 1000.0 for load in LOADS_RPS])
    table = format_table(
        ["Policy"] + [f"{load / 1000:g}K RPS" for load in LOADS_RPS],
        rows,
        title=(
            "Cluster: fleet P99 (us) by balancing policy vs per-service load\n"
            f"({MACHINES} machines: {', '.join(GENERATIONS)}; MMPP bursts)"
        ),
    )
    from ..analysis import series_chart

    table += "\n\n" + series_chart(
        {policy: [p99[policy][load] / 1000.0 for load in LOADS_RPS]
         for policy in policies},
        x_labels=[f"{load / 1000:g}K" for load in LOADS_RPS],
        title="Fleet P99 (us) vs load",
    )
    gains: Dict[str, Dict[float, float]] = {}
    if "round-robin" in p99:
        for policy in policies:
            if policy == "round-robin":
                continue
            gains[policy] = {
                load: pct_reduction(p99["round-robin"][load], p99[policy][load])
                for load in LOADS_RPS
            }
            table += f"\n\n{policy} P99 reduction over round-robin: " + ", ".join(
                f"{load / 1000:g}K={gain:.1f}%"
                for load, gain in gains[policy].items()
            )
    return {"p99_ns": p99, "gains_vs_round_robin": gains, "table": table}


SHARDED = ShardedExperiment("fig_cluster", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, policies=None, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor, policies=policies)

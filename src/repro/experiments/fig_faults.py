"""Chaos experiment: availability under injected hardware faults.

Beyond-paper experiment: every architecture serves the same StoreP
open-loop Poisson arrival sequence (common random numbers per scenario)
while the fault plane injects a scenario-specific fault mix. Each cell
first measures a fault-free run at the same seed to establish the SLO
(``SLO_MULTIPLIER`` x clean mean latency), then replays the arrivals
with faults enabled. A request counts as *available* when it completed
with no error, no fatal remote timeout, and a latency within the SLO;
censored (unfinished) requests count against availability.

Scenarios:

* ``clean``      — no faults; calibrates the availability ceiling.
* ``transient``  — soft PE errors + DMA stalls/corruption; recovered by
  bounded step retries and DMA retries.
* ``wear``       — wedged PEs (watchdog territory), stuck-at PE drains,
  NoC link flaps; recovered by watchdogs, breakers and CPU fallback.
* ``mgr-outage`` — the centralized hardware manager goes dark for long
  windows (plus mild transients everywhere). Decentralized
  orchestrators have no manager to lose, so this scenario isolates the
  fault-tolerance benefit of AccelFlow's per-accelerator dispatchers
  over RELIEF's single hardware unit.

Expected shape: all architectures stay near 100% on ``clean`` and
recover well from ``transient``; ``wear`` costs some availability to
watchdog latency; under ``mgr-outage`` RELIEF's availability collapses
(every submission, completion and retirement queues behind the dark
manager) while AccelFlow is only grazed by the background transients.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..faults import FaultConfig
from ..server.machine import SimulatedServer
from ..sim import LatencyRecorder, derive_seed
from ..workloads import social_network_services
from ..workloads.arrivals import make_arrivals
from .common import MAIN_ARCHITECTURES, format_table, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "SCENARIOS", "SERVICE", "RATE_RPS", "SLO_MULTIPLIER"]

#: The measured service (heavy accelerator path, remote waits).
SERVICE = "StoreP"

#: Offered load (RPS): well under every architecture's capacity so that
#: availability loss is attributable to faults, not saturation.
RATE_RPS = 2000.0

#: SLO = multiplier x the architecture's own fault-free mean latency.
SLO_MULTIPLIER = 5.0

#: Simulated drain budget past the last arrival (ns).
DRAIN_NS = 100e6

#: Scenario name -> fault mix (None = fault-free baseline). Injector
#: budgets (``*_max``) are sized for the ``full`` scale horizon; the
#: run simply stops at its own horizon on smaller scales.
SCENARIOS: Dict[str, Optional[FaultConfig]] = {
    "clean": None,
    "transient": FaultConfig(
        pe_transient_rate=0.05,
        dma_stall_rate=0.05,
        dma_stall_ns=5e4,
        dma_corruption_rate=0.01,
    ),
    "wear": FaultConfig(
        pe_wedge_rate=0.01,
        pe_wedge_ns=8e6,  # past the watchdog: forces timeout + retry
        pe_stuck_mtbf_ns=2e7,
        pe_repair_ns=5e6,
        pe_stuck_max=32,
        noc_flap_interval_ns=5e6,
        noc_flap_down_ns=2e4,
        noc_flap_max=128,
        noc_degraded_factor=1.1,
    ),
    "mgr-outage": FaultConfig(
        pe_transient_rate=0.02,
        manager_outage_interval_ns=2e6,
        manager_outage_ns=3e6,
        manager_outage_max=256,
    ),
}

#: Render order (clean first, harshest last).
SCENARIO_ORDER = ["clean", "transient", "wear", "mgr-outage"]


def _measure(architecture, spec, faults, seed, n_requests):
    """One open-loop run; returns the live request list and the server."""
    server = SimulatedServer(architecture, seed=seed, faults=faults)
    env = server.env
    arrivals = make_arrivals(
        "poisson", RATE_RPS, server.streams.stream(f"arrivals/{spec.name}")
    )
    in_flight: List = []

    def source(env):
        for _ in range(n_requests):
            yield env.timeout(arrivals.next_gap_ns())
            request = server.make_request(spec)
            in_flight.append((request, server.submit(request)))

    src = env.process(source(env), name="chaos-src")

    def watch(env):
        yield src
        yield env.all_of([process for _, process in in_flight])

    watcher = env.process(watch(env), name="chaos-watch")
    horizon_ns = n_requests / RATE_RPS * 1e9 + DRAIN_NS
    env.run(until=env.any_of([watcher, env.timeout(horizon_ns)]))
    return in_flight, server


def _summarize(in_flight, server, slo_ns) -> Dict[str, float]:
    recorder = LatencyRecorder()
    available = 0
    errors = timeouts = censored = 0
    for request, _process in in_flight:
        if not request.completed:
            censored += 1
            recorder.record(server.env.now - request.arrival_ns)
            continue
        recorder.record(request.latency_ns)
        if request.error:
            errors += 1
        if request.timed_out:
            timeouts += 1
        if (
            not request.error
            and not request.timed_out
            and request.latency_ns <= slo_ns
        ):
            available += 1
    stats = server.orchestrator.stats()
    recovery = stats.get("recovery", {})
    plane = server.fault_plane
    return {
        "availability": available / len(in_flight) if in_flight else 0.0,
        "p99_ns": recorder.p99() if len(recorder) else 0.0,
        "mean_ns": recorder.mean() if len(recorder) else 0.0,
        "completed": float(len(in_flight) - censored),
        "censored": float(censored),
        "errors": float(errors),
        "timeouts": float(timeouts),
        "fallbacks": float(stats.get("fallbacks", 0.0)),
        "injected": float(plane.total_injected()) if plane is not None else 0.0,
        "watchdog_timeouts": float(recovery.get("watchdog_timeouts", 0.0)),
        "step_retries": float(recovery.get("step_retries", 0.0)),
        "degraded_to_cpu": float(recovery.get("degraded_to_cpu", 0.0)),
        "breaker_trips": float(recovery.get("breaker_trips", 0.0)),
    }


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        # Seed depends on the scenario only: all architectures in one
        # scenario see identical arrivals and request bodies (CRN).
        Shard(
            "fig_faults",
            (scenario, architecture),
            {"scenario": scenario, "architecture": architecture},
            derive_seed(seed, "fig_faults", scenario),
        )
        for scenario in SCENARIO_ORDER
        for architecture in MAIN_ARCHITECTURES
    ]


def run_shard(shard: Shard, scale: str) -> Dict[str, float]:
    """Availability + latency metrics for one (scenario, arch) cell."""
    scenario = shard.params["scenario"]
    architecture = shard.params["architecture"]
    spec = pick_service(social_network_services(), SERVICE)
    n_requests = requests_for(scale)

    # Fault-free reference at the same seed pins the SLO per cell, so
    # availability measures fault damage, not architecture speed.
    clean_flight, clean_server = _measure(
        architecture, spec, None, shard.seed, n_requests
    )
    clean_latencies = [r.latency_ns for r, _ in clean_flight if r.completed]
    if not clean_latencies:
        raise RuntimeError(
            f"fault-free reference run completed nothing "
            f"({architecture}, seed {shard.seed})"
        )
    slo_ns = SLO_MULTIPLIER * (sum(clean_latencies) / len(clean_latencies))

    faults = SCENARIOS[scenario]
    if faults is None:
        payload = _summarize(clean_flight, clean_server, slo_ns)
    else:
        in_flight, server = _measure(
            architecture, spec, faults, shard.seed, n_requests
        )
        payload = _summarize(in_flight, server, slo_ns)
    payload["slo_ns"] = slo_ns
    return payload


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    availability = {
        scenario: {
            arch: payloads[(scenario, arch)]["availability"]
            for arch in MAIN_ARCHITECTURES
        }
        for scenario in SCENARIO_ORDER
    }
    p99 = {
        scenario: {
            arch: payloads[(scenario, arch)]["p99_ns"]
            for arch in MAIN_ARCHITECTURES
        }
        for scenario in SCENARIO_ORDER
    }

    rows = [
        [scenario]
        + [100.0 * availability[scenario][arch] for arch in MAIN_ARCHITECTURES]
        for scenario in SCENARIO_ORDER
    ]
    table = format_table(
        ["Scenario"] + MAIN_ARCHITECTURES,
        rows,
        title=(
            "Chaos: availability (%) under injected hardware faults\n"
            f"({SERVICE} @ {RATE_RPS:g} RPS; SLO = {SLO_MULTIPLIER:g}x "
            "fault-free mean; censored/errored/late = unavailable)"
        ),
    )
    rows = [
        [scenario]
        + [p99[scenario][arch] / 1000.0 for arch in MAIN_ARCHITECTURES]
        for scenario in SCENARIO_ORDER
    ]
    table += "\n\n" + format_table(
        ["Scenario"] + MAIN_ARCHITECTURES,
        rows,
        title="Chaos: P99 latency (us) per scenario",
    )

    recovery_rows = []
    for arch in MAIN_ARCHITECTURES:
        cell = payloads[("wear", arch)]
        recovery_rows.append(
            [
                arch,
                cell["injected"],
                cell["watchdog_timeouts"],
                cell["step_retries"],
                cell["degraded_to_cpu"],
                cell["breaker_trips"],
            ]
        )
    table += "\n\n" + format_table(
        ["Arch", "Injected", "Watchdogs", "Retries", "ToCPU", "Trips"],
        recovery_rows,
        title="Chaos: recovery-plane activity under the wear scenario",
    )

    accelflow = availability["mgr-outage"]["accelflow"]
    relief = availability["mgr-outage"]["relief"]
    verdict = "CONFIRMED" if accelflow > relief else "NOT CONFIRMED"
    table += (
        "\n\nDecentralization under manager outage: accelflow "
        f"{100.0 * accelflow:.1f}% vs relief {100.0 * relief:.1f}% "
        f"availability -> {verdict}"
    )
    return {
        "availability": availability,
        "p99_ns": p99,
        "decentralization_confirmed": accelflow > relief,
        "table": table,
    }


SHARDED = ShardedExperiment("fig_faults", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

"""Fluid-tier experiment: accuracy and speedup vs the exact DES.

Beyond-paper experiment validating the hybrid fluid/DES engine
(:mod:`repro.cluster.fluid`): a homogeneous four-machine fleet serves
two SocialNetwork services at each load, once with every request
simulated exactly and once with half the fleet running the fluid tier
(static policy, per-request arrivals so both runs see identical CRN
arrival streams). Each (mode, load) cell shares a derived seed with
its counterpart, so the comparison isolates the approximation itself.

Reported per load: exact vs fluid-merged mean latency with the
relative error, completed-work conservation, and the scheduled-event
reduction — a deterministic, machine-independent proxy for the
wall-clock speedup (the measured wall-clock ratio lives in
``BENCH_kernel.json`` and ``docs/performance.md``, where machine
variance belongs). Expected shape: errors well inside the
:data:`~repro.cluster.fluid.FLUID_TOLERANCES` bands and event
reductions growing with load, since absorbed requests cost O(1) events
instead of a full orchestration lifecycle.
"""

from __future__ import annotations

from typing import Dict, List

from ..cluster import FLUID_TOLERANCES, ClusterConfig, FluidConfig, run_cluster
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pick_service, requests_for

from .parallel import Shard, ShardedExperiment

__all__ = ["run", "LOADS_RPS", "SERVICES", "MACHINES", "FLUID_MACHINES", "MODES"]

#: Cluster-wide per-service offered load (RPS).
LOADS_RPS = [30000.0, 50000.0]

#: Two services: one accel-light, one payload/remote-heavy.
SERVICES = ("UniqId", "StoreP")

MACHINES = 4

#: Machines pinned fluid in fluid mode (half the fleet; the other half
#: stays exact and feeds calibration).
FLUID_MACHINES = (2, 3)

MODES = ("exact", "fluid")


def _services():
    all_services = social_network_services()
    return [pick_service(all_services, name) for name in SERVICES]


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        # Seed depends on the load only: the exact and fluid cells at
        # one load see identical arrivals and request bodies (common
        # random numbers), so differences are pure approximation error.
        Shard("fig_fluid", (mode, load), {"mode": mode, "load_rps": load},
              derive_seed(seed, "fig_fluid", load))
        for mode in MODES
        for load in LOADS_RPS
    ]


def run_shard(shard: Shard, scale: str) -> Dict[str, float]:
    """One (mode, load) cell: exact or half-fluid fleet."""
    fluid = None
    if shard.params["mode"] == "fluid":
        fluid = FluidConfig(
            policy="static",
            fluid_machines=FLUID_MACHINES,
            calibrate_requests=20,
        )
    config = ClusterConfig(
        policy="round-robin",
        machines=MACHINES,
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="poisson",
        rate_rps=shard.params["load_rps"],
        warmup_fraction=0.0,
        fluid=fluid,
    )
    result = run_cluster(_services(), config)
    stats = result.fluid_stats or {}
    return {
        "mean_ns": result.merged_mean_ns(),
        "completed": result.merged_completed(),
        "jobs_integral_ns": result.jobs_integral_ns(),
        "events": float(result.cluster.env.scheduled_events),
        "fluid_fraction": float(stats.get("mean_fluid_fraction", 0.0)),
        "absorbed": float(stats.get("absorbed", 0.0)),
    }


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    cells = {
        mode: {load: payloads[(mode, load)] for load in LOADS_RPS}
        for mode in MODES
    }
    rows = []
    errors: Dict[float, float] = {}
    reductions: Dict[float, float] = {}
    for load in LOADS_RPS:
        exact = cells["exact"][load]
        fluid = cells["fluid"][load]
        mean_err = (fluid["mean_ns"] - exact["mean_ns"]) / exact["mean_ns"]
        work_err = (fluid["completed"] - exact["completed"]) / exact["completed"]
        reduction = exact["events"] / fluid["events"]
        errors[load] = mean_err
        reductions[load] = reduction
        rows.append([
            f"{load / 1000:g}K",
            exact["mean_ns"] / 1000.0,
            fluid["mean_ns"] / 1000.0,
            f"{100.0 * mean_err:+.1f}%",
            f"{100.0 * work_err:+.2f}%",
            f"{100.0 * fluid['fluid_fraction']:.0f}%",
            f"{reduction:.2f}x",
        ])
    table = format_table(
        ["Load", "Exact mean (us)", "Fluid mean (us)", "Mean err",
         "Work err", "Fluid share", "Event cut"],
        rows,
        title=(
            "Fluid tier vs exact DES: accuracy and event reduction\n"
            f"({MACHINES} machines, {len(FLUID_MACHINES)} fluid; "
            f"CRN arrivals per load; tolerance "
            f"{FLUID_TOLERANCES['mean_latency']:.0%} on mean latency)"
        ),
    )
    worst = max(abs(err) for err in errors.values())
    table += (
        f"\n\nWorst mean-latency error {100.0 * worst:.1f}% "
        f"(band {FLUID_TOLERANCES['mean_latency']:.0%}); scheduled-event "
        "reduction " + ", ".join(
            f"{load / 1000:g}K={reductions[load]:.2f}x" for load in LOADS_RPS
        )
    )
    return {
        "cells": cells,
        "mean_errors": errors,
        "event_reductions": reductions,
        "worst_mean_error": worst,
        "table": table,
    }


SHARDED = ShardedExperiment("fig_fluid", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

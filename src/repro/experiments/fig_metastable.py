"""Metastable-failure experiment: fixed retries vs retry budgets.

Beyond-paper experiment reproducing the *metastable failure* pattern
(Bronson et al., HotOS'21; Huang et al., OSDI'22) on the accelerator
ensemble: a short gray-failure trigger (intermittent slowdowns on one
accelerator instance, :mod:`repro.faults.gray`) pushes queue waits past
the step watchdog, the watchdog abandons attempts whose work is already
admitted to the accelerator, and each retry *duplicates* that work. The
sustaining feedback loop is load amplification: duplicated work keeps
queue waits above the watchdog, which keeps duplicating work — long
after the trigger itself has cleared.

Two arms share the same seed (CRN: identical arrivals, identical
trigger schedule):

* ``fixed-retry``  — the legacy recovery config: every watchdog timeout
  earns up to ``step_max_retries`` fresh attempts, unconditionally.
* ``retry-budget`` — identical, plus a per-service retry *budget*
  (token bucket, :class:`repro.faults.recovery.RetryBudget`). While
  the storm rages the bucket drains, further retries are denied, and
  denied requests degrade to the CPU fallback path instead of
  re-entering the accelerator queue — quenching the amplification.

Each arm first replays the same arrivals fault-free to pin the SLO
(``SLO_MULTIPLIER`` x clean mean), then runs with the trigger enabled
and reports the fraction of requests breaching the SLO per time window.
Expected shape: both arms breach during the trigger (window 1); the
fixed-retry arm then *stays* breached to the end of the run while the
retry-budget arm returns to ~0 within a window or two.

Circuit breakers are deliberately defanged here (huge failure
threshold): breakers tripping on watchdog failures would halve capacity
for the breaker cooldown in *both* arms and mask the mechanism under
test. The experiment isolates retry amplification as the sustaining
loop and the budget as the cure.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from ..faults import FaultConfig
from ..server.machine import SimulatedServer
from ..sim import derive_seed
from ..workloads import social_network_services
from ..workloads.arrivals import make_arrivals
from .common import format_table, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "ARMS", "ARM_ORDER", "SERVICE", "RATE_RPS", "WINDOWS"]

#: The measured service: a light, accelerator-heavy path whose clean
#: latency is dominated by one accelerator kind, so a slowdown on one
#: instance of that kind moves the whole distribution.
SERVICE = "UniqId"

#: The measured architecture (the trigger needs multiple instances per
#: accelerator kind for a *single-instance* slowdown to be partial).
ARCHITECTURE = "accelflow"

#: Offered load (RPS): ~65% of the architecture's capacity for this
#: service. High enough that duplicated work saturates the ensemble,
#: low enough that the baseline (and the budget arm's CPU-degraded
#: remainder) has headroom to drain.
RATE_RPS = 170_000.0

#: Requests per run = this multiplier x the scale's request budget, so
#: the run spans enough windows to see the post-trigger regime.
N_MULT = 40

#: Time windows the run is cut into for the breach-fraction series.
WINDOWS = 8

#: SLO = multiplier x the same-seed fault-free mean latency.
SLO_MULTIPLIER = 5.0

#: Simulated drain budget past the last arrival (ns).
DRAIN_NS = 50e6

#: The gray-failure trigger: short intermittent slowdowns scoped to the
#: TCP accelerator (the bottleneck kind for this service — 34% of the
#: UniqId path), confined to the first run window. The tight watchdog
#: converts the resulting queue waits into abandoned attempts (whose
#: admitted work still executes) plus duplicated retries.
_TRIGGER = dict(
    gray_slowdown_interval_ns=5e4,
    gray_slowdown_ns=3e5,
    gray_slowdown_factor=10.0,
    gray_slowdown_max=6,
    gray_slowdown_kind="TCP",
)

#: Arm name -> fault config. Same trigger, same watchdog, same retry
#: ceiling; the only difference is the retry budget. Breakers are
#: defanged in both arms (see module docstring).
_FIXED = FaultConfig(
    **_TRIGGER,
    watchdog_timeout_ns=1.5e5,
    step_max_retries=8,
    breaker_failure_threshold=100_000,
)
ARMS: Dict[str, FaultConfig] = {
    "fixed-retry": _FIXED,
    "retry-budget": replace(
        _FIXED,
        retry_budget_tokens=40.0,
        retry_budget_refill_per_s=2000.0,
    ),
}

#: Render order (legacy config first, cure second).
ARM_ORDER = ["fixed-retry", "retry-budget"]


def _measure(spec, faults: Optional[FaultConfig], seed: int, n_requests: int):
    """One open-loop run; returns (in_flight, server, arrival_span_ns)."""
    server = SimulatedServer(ARCHITECTURE, seed=seed, faults=faults)
    env = server.env
    arrivals = make_arrivals(
        "poisson", RATE_RPS, server.streams.stream(f"arrivals/{spec.name}")
    )
    in_flight: List = []

    def source(env):
        for _ in range(n_requests):
            yield env.timeout(arrivals.next_gap_ns())
            request = server.make_request(spec)
            in_flight.append((request, server.submit(request)))

    src = env.process(source(env), name="metastable-src")

    def watch(env):
        yield src
        yield env.all_of([process for _, process in in_flight])

    watcher = env.process(watch(env), name="metastable-watch")
    span_ns = n_requests / RATE_RPS * 1e9
    env.run(until=env.any_of([watcher, env.timeout(span_ns + DRAIN_NS)]))
    return in_flight, server, span_ns


def _breach_series(in_flight, span_ns: float, slo_ns: float) -> List[float]:
    """Per-window fraction of requests breaching the SLO.

    Completed requests are windowed by completion time; censored
    (unfinished) requests count as breaches in their arrival window.
    """
    totals = [0] * WINDOWS
    breaches = [0] * WINDOWS
    for request, _process in in_flight:
        if request.completed:
            t_ns = request.complete_ns
            breached = request.latency_ns > slo_ns or request.error
        else:
            t_ns = request.arrival_ns
            breached = True
        index = min(int(t_ns / span_ns * WINDOWS), WINDOWS - 1)
        totals[index] += 1
        if breached:
            breaches[index] += 1
    return [
        breaches[i] / totals[i] if totals[i] else 0.0 for i in range(WINDOWS)
    ]


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        # The seed is arm-independent: both arms replay identical
        # arrivals and an identical trigger schedule (CRN), so any
        # post-trigger divergence is the retry policy's doing.
        Shard(
            "fig_metastable",
            (arm,),
            {"arm": arm},
            derive_seed(seed, "fig_metastable"),
        )
        for arm in ARM_ORDER
    ]


def run_shard(shard: Shard, scale: str) -> Dict[str, object]:
    """Windowed breach series + recovery counters for one arm."""
    arm = shard.params["arm"]
    spec = pick_service(social_network_services(), SERVICE)
    n_requests = N_MULT * requests_for(scale)

    # Fault-free reference at the same seed pins the SLO, so the breach
    # series measures storm damage, not steady-state queueing.
    clean_flight, _clean_server, span_ns = _measure(
        spec, None, shard.seed, n_requests
    )
    clean_latencies = [r.latency_ns for r, _ in clean_flight if r.completed]
    if not clean_latencies:
        raise RuntimeError(
            f"fault-free reference run completed nothing (seed {shard.seed})"
        )
    slo_ns = SLO_MULTIPLIER * (sum(clean_latencies) / len(clean_latencies))

    in_flight, server, span_ns = _measure(
        spec, ARMS[arm], shard.seed, n_requests
    )
    recovery = server.orchestrator.stats().get("recovery", {})
    censored = sum(1 for r, _ in in_flight if not r.completed)
    return {
        "breach": _breach_series(in_flight, span_ns, slo_ns),
        "slo_ns": slo_ns,
        "censored": float(censored),
        "watchdog_timeouts": float(recovery.get("watchdog_timeouts", 0.0)),
        "step_retries": float(recovery.get("step_retries", 0.0)),
        "degraded_to_cpu": float(recovery.get("degraded_to_cpu", 0.0)),
        "budget_denials": float(recovery.get("budget_denials", 0.0)),
        "breaker_trips": float(recovery.get("breaker_trips", 0.0)),
    }


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    breach = {arm: payloads[(arm,)]["breach"] for arm in ARM_ORDER}

    rows = [
        [arm] + [100.0 * fraction for fraction in breach[arm]]
        for arm in ARM_ORDER
    ]
    table = format_table(
        ["Arm"] + [f"W{i + 1}" for i in range(WINDOWS)],
        rows,
        title=(
            "Metastable failure: % of requests breaching the SLO per "
            f"window\n({SERVICE} on {ARCHITECTURE} @ {RATE_RPS:g} RPS; "
            f"SLO = {SLO_MULTIPLIER:g}x clean mean; gray trigger "
            "confined to W1)"
        ),
    )

    recovery_rows = [
        [
            arm,
            payloads[(arm,)]["watchdog_timeouts"],
            payloads[(arm,)]["step_retries"],
            payloads[(arm,)]["degraded_to_cpu"],
            payloads[(arm,)]["budget_denials"],
            payloads[(arm,)]["censored"],
        ]
        for arm in ARM_ORDER
    ]
    table += "\n\n" + format_table(
        ["Arm", "Watchdogs", "Retries", "ToCPU", "Denied", "Censored"],
        recovery_rows,
        title="Metastable failure: recovery-plane activity per arm",
    )

    # The claim: after the trigger clears (W1), the fixed-retry arm
    # stays breached to the end of the run while the budget arm
    # recovers. Judge on the final window.
    fixed_final = breach["fixed-retry"][-1]
    budget_final = breach["retry-budget"][-1]
    metastable = fixed_final > 0.5 and budget_final < 0.1
    verdict = "CONFIRMED" if metastable else "NOT CONFIRMED"
    table += (
        "\n\nSustained degradation after the trigger cleared: fixed-retry "
        f"{100.0 * fixed_final:.1f}% vs retry-budget "
        f"{100.0 * budget_final:.1f}% breached in the final window "
        f"-> {verdict}"
    )
    return {
        "breach": breach,
        "metastable_confirmed": metastable,
        "table": table,
    }


SHARDED = ShardedExperiment("fig_metastable", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

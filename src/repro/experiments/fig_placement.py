"""Placement study: the five architectures across the five placements.

Beyond-paper experiment: the paper argues for an *on-package* ensemble,
while the related work puts the very same accelerators behind a PCIe
link (RPCAcc), on the SmartNIC (Dagger), beside the LLC (Arcalis), or
across the network as a remote service. This experiment makes that a
measured comparison: every orchestration architecture serves the same
StoreP open-loop Poisson arrival sequence (one seed for the whole grid,
so every cell is common-random-number aligned) while the whole
accelerator ensemble is relocated to each
:class:`~repro.hw.placement.Placement` in turn.

Each cell reports tail/mean latency plus the placement fabric's hop
activity (crossings and bytes over the host link). The headline claim:
for microservice requests built from fine-grained accelerator ops,
keeping the ensemble on-package beats the PCIe/NIC/remote
disaggregation points on P99 latency under *every* orchestration
architecture — orchestration cleverness does not buy back the hop tax.
``non-acc`` never touches an accelerator, so it must come out
placement-invariant (a built-in control: if it moves, the fabric is
leaking cost into non-accelerator paths).
"""

from __future__ import annotations

from typing import Dict, List

from ..hw.params import MachineParams
from ..hw.placement import PLACEMENTS
from ..server.driver import RunConfig, run_dedicated_service
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import MAIN_ARCHITECTURES, format_table, pick_service, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run", "SERVICE", "RATE_RPS", "PLACEMENT_ORDER", "CLAIM_PLACEMENTS"]

#: The measured service (heavy accelerator path: the hop tax bites).
SERVICE = "StoreP"

#: Offered load (RPS): matches fig_faults — busy but unsaturated, so
#: latency differences come from transfer paths, not queue collapse.
RATE_RPS = 2000.0

#: Render order: the package first, then increasingly distant sites.
PLACEMENT_ORDER = [p.value for p in PLACEMENTS]

#: The disaggregation points the headline claim compares against
#: (near_cache is reported but not claimed: it is close enough that
#: queueing noise can reorder it by microseconds).
CLAIM_PLACEMENTS = ["pcie", "nic", "remote"]

#: Architectures that actually use accelerators (the claim set);
#: ``non-acc`` is the placement-invariance control.
ACCELERATED = [a for a in MAIN_ARCHITECTURES if a != "non-acc"]


def make_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        # One seed for the *whole* grid: every cell replays identical
        # arrivals and request bodies (CRN), so cross-cell latency
        # deltas are attributable to placement and architecture alone.
        Shard(
            "fig_placement",
            (placement.value, architecture),
            {"placement": placement.value, "architecture": architecture},
            derive_seed(seed, "fig_placement"),
        )
        for placement in PLACEMENTS
        for architecture in MAIN_ARCHITECTURES
    ]


def run_shard(shard: Shard, scale: str) -> Dict[str, float]:
    """Latency + hop metrics for one (placement, architecture) cell."""
    placement = shard.params["placement"]
    architecture = shard.params["architecture"]
    spec = pick_service(social_network_services(), SERVICE)
    config = RunConfig(
        architecture,
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="poisson",
        rate_rps=RATE_RPS,
        machine_params=MachineParams().with_placement(placement),
    )
    cell = run_dedicated_service(spec, config)
    service = cell["service"]
    net = cell["hardware_stats"]["network"]
    hops = net.get("hops", {})
    return {
        "p99_ns": service.p99_ns(),
        "mean_ns": service.mean_ns(),
        "completed": float(service.completed),
        "censored": float(service.censored),
        "hop_transfers": sum(h["transfers"] for h in hops.values()),
        "hop_bytes": sum(h["bytes"] for h in hops.values()),
        "local_site_transfers": float(net.get("local_site_transfers", 0.0)),
    }


def merge(payloads: Dict, scale: str, seed: int) -> Dict:
    p99 = {
        placement: {
            arch: payloads[(placement, arch)]["p99_ns"]
            for arch in MAIN_ARCHITECTURES
        }
        for placement in PLACEMENT_ORDER
    }
    mean = {
        placement: {
            arch: payloads[(placement, arch)]["mean_ns"]
            for arch in MAIN_ARCHITECTURES
        }
        for placement in PLACEMENT_ORDER
    }

    table = format_table(
        ["Placement"] + MAIN_ARCHITECTURES,
        [
            [placement]
            + [p99[placement][arch] / 1000.0 for arch in MAIN_ARCHITECTURES]
            for placement in PLACEMENT_ORDER
        ],
        title=(
            "Placement: P99 latency (us) per accelerator placement\n"
            f"({SERVICE} @ {RATE_RPS:g} RPS Poisson; whole ensemble "
            "relocated per row; one CRN seed for the grid)"
        ),
    )
    table += "\n\n" + format_table(
        ["Placement"] + MAIN_ARCHITECTURES,
        [
            [placement]
            + [mean[placement][arch] / 1000.0 for arch in MAIN_ARCHITECTURES]
            for placement in PLACEMENT_ORDER
        ],
        title="Placement: mean latency (us) per accelerator placement",
    )
    table += "\n\n" + format_table(
        ["Placement", "Hop xfers", "Hop MB", "Site-local"],
        [
            [
                placement,
                payloads[(placement, "accelflow")]["hop_transfers"],
                payloads[(placement, "accelflow")]["hop_bytes"] / 1e6,
                payloads[(placement, "accelflow")]["local_site_transfers"],
            ]
            for placement in PLACEMENT_ORDER
        ],
        title="Placement: fabric hop activity (accelflow column)",
    )

    # Headline claim: on-package beats every distant disaggregation
    # point at P99 for every architecture that uses accelerators.
    failures = [
        f"{arch}@{placement}"
        for arch in ACCELERATED
        for placement in CLAIM_PLACEMENTS
        if not p99["on_package"][arch] < p99[placement][arch]
    ]
    claim_ok = not failures
    # Control: non-acc never issues an accelerator transfer, so moving
    # the (unused) ensemble must not change its latency at all.
    invariant_ok = all(
        p99[placement]["non-acc"] == p99["on_package"]["non-acc"]
        and mean[placement]["non-acc"] == mean["on_package"]["non-acc"]
        for placement in PLACEMENT_ORDER
    )
    verdict = "CONFIRMED" if claim_ok else "NOT CONFIRMED"
    table += (
        "\n\nOn-package beats pcie/nic/remote at P99 for all "
        f"accelerated architectures -> {verdict}"
    )
    if failures:
        table += f" (failing cells: {', '.join(failures)})"
    table += (
        "\nnon-acc placement-invariant (control) -> "
        + ("CONFIRMED" if invariant_ok else "NOT CONFIRMED")
    )
    return {
        "p99_ns": p99,
        "mean_ns": mean,
        "placement_claim_confirmed": claim_ok,
        "non_acc_invariant": invariant_ok,
        "table": table,
    }


SHARDED = ShardedExperiment("fig_placement", make_shards, run_shard, merge)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

"""Sharded experiment execution: serial, parallel and cached.

The paper's evaluation is an embarrassingly parallel grid of
independent (architecture x load x seed) design points. Each experiment
module therefore exposes three pieces instead of one opaque loop:

* ``make_shards(scale, seed, **kw)`` — the design points, as a list of
  picklable :class:`Shard` specs. Every shard carries its own seed,
  derived through :func:`repro.sim.derive_seed` from the experiment
  seed and the design point's *workload identity*, so a shard's result
  depends only on what it measures — never on worker count, scheduling
  order, or the shards that ran before it. Design points that differ
  only in the system under test (e.g. the same service on five
  architectures) deliberately share a derived seed: common random
  numbers keep cross-architecture comparisons tight.
* ``run_shard(shard, scale)`` — one design point, pure and picklable.
* ``merge(payloads, scale, seed, **kw)`` — folds the ``{shard.key:
  payload}`` mapping (always in ``make_shards`` order) into the
  experiment's result dict, including its ``"table"`` string.

:class:`ShardExecutor` runs the shards — in-process when ``jobs=1``,
else on a persistent ``multiprocessing`` pool — consults the on-disk
:class:`~repro.experiments.cache.ResultCache` before dispatching, and
reports progress/ETA plus a shard-duration sparkline (reusing
:func:`repro.obs.metrics.sparkline_row`). Like AccelFlow itself, the
coordinator stays out of the inner loop: workers execute pre-compiled
work descriptions and only the merge step is centralized.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .cache import ResultCache

__all__ = [
    "Shard",
    "ShardedExperiment",
    "ShardExecutor",
    "ProgressReporter",
    "default_jobs",
    "single_shard",
]


def default_jobs() -> int:
    """Default worker count for ``--jobs``: one per CPU."""
    return os.cpu_count() or 1


@dataclass(frozen=True, eq=False)
class Shard:
    """One picklable design point of an experiment.

    ``key`` uniquely identifies the shard within its experiment and is
    the merge/cache identity; ``params`` are the keyword arguments its
    ``run_shard`` needs; ``seed`` is the derived per-shard seed.
    """

    experiment: str
    key: Tuple
    params: Dict = field(default_factory=dict)
    seed: int = 0

    def label(self) -> str:
        return "/".join(str(part) for part in self.key)


class ShardedExperiment:
    """An experiment decomposed into shards plus a pure merge step."""

    def __init__(
        self,
        name: str,
        make_shards: Callable[..., List[Shard]],
        run_shard: Callable[[Shard, str], object],
        merge: Callable[..., Dict],
    ):
        self.name = name
        self.make_shards = make_shards
        self.run_shard = run_shard
        self.merge = merge

    def shards(self, scale: str = "quick", seed: int = 0, **kw) -> List[Shard]:
        shards = self.make_shards(scale=scale, seed=seed, **kw)
        keys = [shard.key for shard in shards]
        if len(set(keys)) != len(keys):
            raise ValueError(f"{self.name}: duplicate shard keys in {keys}")
        return shards

    def run(
        self,
        scale: str = "quick",
        seed: int = 0,
        executor: Optional["ShardExecutor"] = None,
        **kw,
    ) -> Dict:
        """Execute all shards (serially unless ``executor`` says
        otherwise) and merge; the result is identical for every worker
        count, byte for byte."""
        shards = self.shards(scale=scale, seed=seed, **kw)
        if executor is None:
            executor = ShardExecutor(jobs=1)
        payloads = executor.execute(self, shards, scale)
        return self.merge(payloads, scale=scale, seed=seed, **kw)


def single_shard(name: str, compute: Callable[..., Dict]) -> ShardedExperiment:
    """Wrap a monolithic (cheap or indivisible) experiment as one shard.

    ``compute`` keeps the classic ``(scale, seed, **kw) -> result``
    shape; it still gains result caching and the uniform executor path.
    """

    def make_shards(scale: str = "quick", seed: int = 0, **kw) -> List[Shard]:
        return [Shard(name, ("all",), dict(kw), seed)]

    def run_shard(shard: Shard, scale: str):
        return compute(scale=scale, seed=shard.seed, **shard.params)

    def merge(payloads, scale: str, seed: int, **kw) -> Dict:
        return payloads[("all",)]

    return ShardedExperiment(name, make_shards, run_shard, merge)


def _run_shard_task(item: Tuple[str, Shard, str]):
    """Top-level (hence picklable) pool task: run one shard."""
    name, shard, scale = item
    from . import get_sharded

    start = time.perf_counter()
    payload = get_sharded(name).run_shard(shard, scale)
    return shard.key, payload, time.perf_counter() - start


class ProgressReporter:
    """Shard progress/ETA lines plus a final duration sparkline."""

    def __init__(self, stream=None, min_interval_s: float = 1.0):
        self.stream = stream
        self.min_interval_s = min_interval_s
        self._last_print = 0.0

    def begin(self, name: str, total: int, cached: int, jobs: int) -> None:
        if self.stream is None:
            return
        line = f"[{name}] {total} shard{'s' if total != 1 else ''}"
        if cached:
            line += f", {cached} cached"
        if total - cached:
            line += f", jobs={jobs}"
        print(line, file=self.stream, flush=True)
        self._last_print = 0.0

    def update(self, name: str, done: int, total: int, started: float) -> None:
        if self.stream is None:
            return
        now = time.perf_counter()
        if done < total and now - self._last_print < self.min_interval_s:
            return
        self._last_print = now
        elapsed = now - started
        eta = elapsed / done * (total - done) if done else float("inf")
        print(
            f"[{name}] {done}/{total} shards, "
            f"elapsed {elapsed:.1f}s, eta {eta:.1f}s",
            file=self.stream,
            flush=True,
        )

    def finish(
        self, name: str, durations: List[float], elapsed: float, jobs: int
    ) -> None:
        if self.stream is None or not durations:
            return
        from ..obs.metrics import sparkline_row

        row = sparkline_row(f"[{name}] shard seconds", durations, width=40)
        print(
            f"{row}  ({len(durations)} run in {elapsed:.1f}s, jobs={jobs})",
            file=self.stream,
            flush=True,
        )


class ShardExecutor:
    """Runs shards for any number of experiments over one worker pool.

    * ``jobs=1`` (default) — in-process, no multiprocessing at all.
    * ``jobs>1`` — a persistent pool of that many workers, shared by
      every ``execute`` call (the runner's ``all`` mode reuses it
      across experiments instead of re-forking 24 times).
    * ``cache`` — optional :class:`ResultCache`; hits skip execution
      entirely and merged results remain byte-identical.

    Use as a context manager (or call :meth:`close`) to reap the pool.
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressReporter] = None,
    ):
        self.jobs = max(1, int(jobs)) if jobs else 1
        self.cache = cache
        self.progress = progress or ProgressReporter(stream=None)
        self._pool = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self):
        if self._pool is None:
            methods = multiprocessing.get_all_start_methods()
            context = multiprocessing.get_context(
                "fork" if "fork" in methods else None
            )
            self._pool = context.Pool(processes=self.jobs)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- execution ---------------------------------------------------------
    def execute(
        self, experiment: ShardedExperiment, shards: List[Shard], scale: str
    ) -> Dict[Tuple, object]:
        """Run (or recall) every shard; returns ``{key: payload}`` in
        ``shards`` order regardless of completion order."""
        name = experiment.name
        results: Dict[Tuple, object] = {}
        pending: List[Shard] = []
        for shard in shards:
            hit = self.cache.get(name, scale, shard) if self.cache else None
            if hit is not None:
                results[shard.key] = hit[0]
            else:
                pending.append(shard)

        jobs = min(self.jobs, len(pending)) if pending else 0
        self.progress.begin(name, len(shards), len(shards) - len(pending), jobs)
        started = time.perf_counter()
        durations: List[float] = []
        by_key = {shard.key: shard for shard in pending}

        def _store(key, payload, duration):
            results[key] = payload
            durations.append(duration)
            if self.cache is not None:
                self.cache.put(name, scale, by_key[key], payload)
            self.progress.update(name, len(durations), len(pending), started)

        if jobs <= 1:
            for shard in pending:
                t0 = time.perf_counter()
                payload = experiment.run_shard(shard, scale)
                _store(shard.key, payload, time.perf_counter() - t0)
        else:
            pool = self._ensure_pool()
            tasks = [(name, shard, scale) for shard in pending]
            for key, payload, duration in pool.imap_unordered(
                _run_shard_task, tasks, chunksize=1
            ):
                _store(key, payload, duration)

        self.progress.finish(
            name, durations, time.perf_counter() - started, jobs
        )
        return {shard.key: results[shard.key] for shard in shards}

"""Command-line entry point: regenerate any table or figure.

Usage::

    accelflow-repro list
    accelflow-repro fig11 --scale quick --seed 0
    accelflow-repro all --scale smoke --jobs 4

Experiments are decomposed into independent shards (one per design
point) that run across ``--jobs`` worker processes and land in an
on-disk result cache, so re-runs after an interruption or a seed/scale
revisit are served from disk. Results are byte-identical for any
``--jobs`` value.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS, SCALES
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .parallel import ProgressReporter, ShardExecutor, default_jobs

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="accelflow-repro",
        description="Reproduce the tables and figures of the AccelFlow paper "
        "(HPCA 2026).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig11, table4, char-glue), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=sorted(SCALES),
        help="run size: smoke (seconds), quick (default), full (minutes)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for shard execution "
        "(default: number of CPUs; 1 disables multiprocessing)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk shard result cache",
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="recompute every shard, overwriting any cached results",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"shard cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-shard progress reporting on stderr",
    )
    parser.add_argument(
        "--dashboard",
        action="store_true",
        help="after the experiment, run a small telemetry-enabled cell "
        "and print its live-dashboard snapshot (fig_faults/fig_cluster)",
    )
    return parser


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    jobs = default_jobs() if args.jobs is None else max(1, args.jobs)
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir, refresh=args.refresh)
    progress = None if args.quiet else ProgressReporter(stream=sys.stderr)

    with ShardExecutor(jobs=jobs, cache=cache, progress=progress) as executor:
        for name in names:
            start = time.time()
            result = EXPERIMENTS[name](
                scale=args.scale, seed=args.seed, executor=executor
            )
            elapsed = time.time() - start
            print(result["table"])
            print(f"\n[{name} completed in {elapsed:.1f}s at scale={args.scale}]\n")
            if args.dashboard:
                from ..obs.dashboard import preview

                snapshot = preview(name, scale=args.scale, seed=args.seed)
                if snapshot is None:
                    print(f"[no dashboard preview for {name}]\n")
                else:
                    print(snapshot + "\n")
    if cache is not None:
        print(f"[cache {cache.stats.summary()} dir={args.cache_dir}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line entry point: regenerate any table or figure.

Usage::

    accelflow-repro list
    accelflow-repro fig11 --scale quick --seed 0
    accelflow-repro all --scale smoke
"""

from __future__ import annotations

import argparse
import sys
import time

from . import EXPERIMENTS, SCALES

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="accelflow-repro",
        description="Reproduce the tables and figures of the AccelFlow paper "
        "(HPCA 2026).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (e.g. fig11, table4, char-glue), 'all', or 'list'",
    )
    parser.add_argument(
        "--scale",
        default="quick",
        choices=sorted(SCALES),
        help="run size: smoke (seconds), quick (default), full (minutes)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"known: {', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2

    for name in names:
        start = time.time()
        result = EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        elapsed = time.time() - start
        print(result["table"])
        print(f"\n[{name} completed in {elapsed:.1f}s at scale={args.scale}]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

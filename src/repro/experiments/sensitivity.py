"""Section VII.C sensitivity studies beyond the numbered figures.

* Inter-chiplet latency (VII.C.2): 20-100 cycles, for 2- and 6-chiplet
  organizations; the paper reports +45% average tail latency going from
  60 to 100 cycles on 6-chiplet systems.
* Accelerator speedups (VII.C.5): all speedups scaled by 0.25x-4x; the
  faster the accelerators, the more orchestration matters, so the
  AccelFlow-over-RELIEF gain grows from 1.4x (0.25x) through 2.2x (1x)
  to 3.9x (4x).
"""

from __future__ import annotations

from typing import Dict

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for

__all__ = ["run_interchiplet", "run_speedups", "run_adaptive",
           "INTER_CHIPLET_CYCLES", "SPEEDUP_SCALES", "ADAPTIVE_SCALES"]

INTER_CHIPLET_CYCLES = [20.0, 60.0, 100.0]
SPEEDUP_SCALES = [0.25, 0.5, 1.0, 2.0, 4.0]


def run_interchiplet(scale: str = "quick", seed: int = 0) -> Dict:
    requests = requests_for(scale)
    services = social_network_services()
    p99: Dict[int, Dict[float, float]] = {}
    for chiplets in (2, 6):
        p99[chiplets] = {}
        for cycles in INTER_CHIPLET_CYCLES:
            params = (
                MachineParams()
                .with_layout(chiplets)
                .with_inter_chiplet_cycles(cycles)
            )
            config = RunConfig(
                architecture="accelflow",
                requests_per_service=requests,
                seed=seed,
                arrival_mode="alibaba",
                machine_params=params,
            )
            p99[chiplets][cycles] = run_experiment(services, config).mean_p99_ns()
    rows = []
    for chiplets in (2, 6):
        rows.append(
            [f"{chiplets}-chiplet"]
            + [p99[chiplets][c] / 1000.0 for c in INTER_CHIPLET_CYCLES]
        )
    increase = -pct_reduction(p99[6][60.0], p99[6][100.0])
    table = format_table(
        ["Organization"] + [f"{c:g} cyc" for c in INTER_CHIPLET_CYCLES],
        rows,
        title="VII.C.2: mean P99 (us) vs inter-chiplet latency",
    )
    table += (
        f"\n\n6-chiplet, 60 -> 100 cycles: {increase:+.1f}% (paper: +45%)"
    )
    return {"p99_ns": p99, "increase_6c_60_to_100_pct": increase, "table": table}


def run_speedups(scale: str = "quick", seed: int = 0) -> Dict:
    requests = requests_for(scale)
    services = social_network_services()
    gains: Dict[float, float] = {}
    p99: Dict[float, Dict[str, float]] = {}
    for speedup_scale in SPEEDUP_SCALES:
        params = MachineParams().with_speedup_scale(speedup_scale)
        p99[speedup_scale] = {}
        for arch in ("relief", "accelflow"):
            config = RunConfig(
                architecture=arch,
                requests_per_service=requests,
                seed=seed,
                arrival_mode="alibaba",
                machine_params=params,
            )
            p99[speedup_scale][arch] = run_experiment(services, config).mean_p99_ns()
        gains[speedup_scale] = (
            p99[speedup_scale]["relief"] / p99[speedup_scale]["accelflow"]
        )
    rows = [
        [f"{s:g}x", p99[s]["relief"] / 1000.0, p99[s]["accelflow"] / 1000.0,
         f"{gains[s]:.2f}x"]
        for s in SPEEDUP_SCALES
    ]
    table = format_table(
        ["Speedup scale", "RELIEF P99 (us)", "AccelFlow P99 (us)", "Gain"],
        rows,
        title="VII.C.5: AccelFlow gain vs accelerator speedups "
              "(paper: 1.4x @0.25x, 2.2x @1x, 3.9x @4x)",
    )
    return {"p99_ns": p99, "gains": gains, "table": table}


ADAPTIVE_SCALES = [1.0, 4.0, 7.0]


def run_adaptive(scale: str = "quick", seed: int = 0) -> Dict:
    """Future work (Section IX): load-adaptive offload decisions.

    Compares stock AccelFlow against the adaptive variant that bypasses
    congested accelerators to software, across load multipliers. The
    expected shape: identical at light load (no bypasses), adaptive
    ahead once accelerator queues build.
    """
    requests = requests_for(scale)
    services = [
        s for s in social_network_services() if s.name in ("UniqId", "StoreP")
    ]
    p99: Dict[str, Dict[float, float]] = {"accelflow": {}, "accelflow-adaptive": {}}
    bypass: Dict[float, float] = {}
    for rate_scale in ADAPTIVE_SCALES:
        for arch in p99:
            config = RunConfig(
                architecture=arch,
                requests_per_service=requests,
                seed=seed,
                arrival_mode="poisson",
                rate_scale=rate_scale,
            )
            result = run_experiment(services, config)
            p99[arch][rate_scale] = result.mean_p99_ns()
            if arch == "accelflow-adaptive":
                stats = result.orchestrator_stats["per_service"]
                bypass[rate_scale] = sum(
                    s["bypass_fraction"] for s in stats.values()
                ) / len(stats)
    rows = []
    for rate_scale in ADAPTIVE_SCALES:
        rows.append(
            [
                f"{rate_scale:g}x load",
                p99["accelflow"][rate_scale] / 1000.0,
                p99["accelflow-adaptive"][rate_scale] / 1000.0,
                f"{bypass[rate_scale] * 100:.1f}%",
            ]
        )
    table = format_table(
        ["Load", "AccelFlow P99 (us)", "Adaptive P99 (us)", "Bypassed ops"],
        rows,
        title="Section IX future work: load-adaptive software bypass",
    )
    return {"p99_ns": p99, "bypass_fraction": bypass, "table": table}

"""Section VII.C sensitivity studies beyond the numbered figures.

* Inter-chiplet latency (VII.C.2): 20-100 cycles, for 2- and 6-chiplet
  organizations; the paper reports +45% average tail latency going from
  60 to 100 cycles on 6-chiplet systems.
* Accelerator speedups (VII.C.5): all speedups scaled by 0.25x-4x; the
  faster the accelerators, the more orchestration matters, so the
  AccelFlow-over-RELIEF gain grows from 1.4x (0.25x) through 2.2x (1x)
  to 3.9x (4x).
"""

from __future__ import annotations

from typing import Dict, List

from ..hw import MachineParams
from ..server import RunConfig, run_experiment
from ..sim import derive_seed
from ..workloads import social_network_services
from .common import format_table, pct_reduction, requests_for
from .parallel import Shard, ShardedExperiment

__all__ = ["run_interchiplet", "run_speedups", "run_adaptive",
           "INTER_CHIPLET_CYCLES", "SPEEDUP_SCALES", "ADAPTIVE_SCALES"]

INTER_CHIPLET_CYCLES = [20.0, 60.0, 100.0]
SPEEDUP_SCALES = [0.25, 0.5, 1.0, 2.0, 4.0]


# -- VII.C.2: inter-chiplet latency --------------------------------------

def _interchiplet_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        Shard("sens-interchiplet", (chiplets, cycles),
              {"chiplets": chiplets, "cycles": cycles},
              derive_seed(seed, "sens-interchiplet"))
        for chiplets in (2, 6)
        for cycles in INTER_CHIPLET_CYCLES
    ]


def _interchiplet_shard(shard: Shard, scale: str) -> float:
    params = (
        MachineParams()
        .with_layout(shard.params["chiplets"])
        .with_inter_chiplet_cycles(shard.params["cycles"])
    )
    config = RunConfig(
        architecture="accelflow",
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
        machine_params=params,
    )
    return run_experiment(social_network_services(), config).mean_p99_ns()


def _interchiplet_merge(payloads: Dict, scale: str, seed: int) -> Dict:
    p99: Dict[int, Dict[float, float]] = {
        chiplets: {
            cycles: payloads[(chiplets, cycles)]
            for cycles in INTER_CHIPLET_CYCLES
        }
        for chiplets in (2, 6)
    }
    rows = []
    for chiplets in (2, 6):
        rows.append(
            [f"{chiplets}-chiplet"]
            + [p99[chiplets][c] / 1000.0 for c in INTER_CHIPLET_CYCLES]
        )
    increase = -pct_reduction(p99[6][60.0], p99[6][100.0])
    table = format_table(
        ["Organization"] + [f"{c:g} cyc" for c in INTER_CHIPLET_CYCLES],
        rows,
        title="VII.C.2: mean P99 (us) vs inter-chiplet latency",
    )
    table += (
        f"\n\n6-chiplet, 60 -> 100 cycles: {increase:+.1f}% (paper: +45%)"
    )
    return {"p99_ns": p99, "increase_6c_60_to_100_pct": increase, "table": table}


SHARDED_INTERCHIPLET = ShardedExperiment(
    "sens-interchiplet", _interchiplet_shards, _interchiplet_shard,
    _interchiplet_merge,
)


def run_interchiplet(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED_INTERCHIPLET.run(scale=scale, seed=seed, executor=executor)


# -- VII.C.5: accelerator speedups ---------------------------------------

def _speedups_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        Shard("sens-speedups", (speedup_scale, arch),
              {"speedup_scale": speedup_scale, "architecture": arch},
              derive_seed(seed, "sens-speedups"))
        for speedup_scale in SPEEDUP_SCALES
        for arch in ("relief", "accelflow")
    ]


def _speedups_shard(shard: Shard, scale: str) -> float:
    params = MachineParams().with_speedup_scale(shard.params["speedup_scale"])
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="alibaba",
        machine_params=params,
    )
    return run_experiment(social_network_services(), config).mean_p99_ns()


def _speedups_merge(payloads: Dict, scale: str, seed: int) -> Dict:
    p99: Dict[float, Dict[str, float]] = {
        s: {arch: payloads[(s, arch)] for arch in ("relief", "accelflow")}
        for s in SPEEDUP_SCALES
    }
    gains = {s: p99[s]["relief"] / p99[s]["accelflow"] for s in SPEEDUP_SCALES}
    rows = [
        [f"{s:g}x", p99[s]["relief"] / 1000.0, p99[s]["accelflow"] / 1000.0,
         f"{gains[s]:.2f}x"]
        for s in SPEEDUP_SCALES
    ]
    table = format_table(
        ["Speedup scale", "RELIEF P99 (us)", "AccelFlow P99 (us)", "Gain"],
        rows,
        title="VII.C.5: AccelFlow gain vs accelerator speedups "
              "(paper: 1.4x @0.25x, 2.2x @1x, 3.9x @4x)",
    )
    return {"p99_ns": p99, "gains": gains, "table": table}


SHARDED_SPEEDUPS = ShardedExperiment(
    "sens-speedups", _speedups_shards, _speedups_shard, _speedups_merge,
)


def run_speedups(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED_SPEEDUPS.run(scale=scale, seed=seed, executor=executor)


# -- Section IX: load-adaptive offload -----------------------------------

ADAPTIVE_SCALES = [1.0, 4.0, 7.0]

_ADAPTIVE_ARCHES = ("accelflow", "accelflow-adaptive")
_ADAPTIVE_SERVICES = ("UniqId", "StoreP")


def _adaptive_shards(scale: str = "quick", seed: int = 0) -> List[Shard]:
    return [
        Shard("sens-adaptive", (rate_scale, arch),
              {"rate_scale": rate_scale, "architecture": arch},
              derive_seed(seed, "sens-adaptive", rate_scale))
        for rate_scale in ADAPTIVE_SCALES
        for arch in _ADAPTIVE_ARCHES
    ]


def _adaptive_shard(shard: Shard, scale: str) -> Dict:
    services = [
        s for s in social_network_services() if s.name in _ADAPTIVE_SERVICES
    ]
    config = RunConfig(
        architecture=shard.params["architecture"],
        requests_per_service=requests_for(scale),
        seed=shard.seed,
        arrival_mode="poisson",
        rate_scale=shard.params["rate_scale"],
    )
    result = run_experiment(services, config)
    payload = {"mean_p99_ns": result.mean_p99_ns(), "bypass_fraction": None}
    if shard.params["architecture"] == "accelflow-adaptive":
        stats = result.orchestrator_stats["per_service"]
        payload["bypass_fraction"] = sum(
            s["bypass_fraction"] for s in stats.values()
        ) / len(stats)
    return payload


def _adaptive_merge(payloads: Dict, scale: str, seed: int) -> Dict:
    p99: Dict[str, Dict[float, float]] = {arch: {} for arch in _ADAPTIVE_ARCHES}
    bypass: Dict[float, float] = {}
    for rate_scale in ADAPTIVE_SCALES:
        for arch in _ADAPTIVE_ARCHES:
            cell = payloads[(rate_scale, arch)]
            p99[arch][rate_scale] = cell["mean_p99_ns"]
            if arch == "accelflow-adaptive":
                bypass[rate_scale] = cell["bypass_fraction"]
    rows = []
    for rate_scale in ADAPTIVE_SCALES:
        rows.append(
            [
                f"{rate_scale:g}x load",
                p99["accelflow"][rate_scale] / 1000.0,
                p99["accelflow-adaptive"][rate_scale] / 1000.0,
                f"{bypass[rate_scale] * 100:.1f}%",
            ]
        )
    table = format_table(
        ["Load", "AccelFlow P99 (us)", "Adaptive P99 (us)", "Bypassed ops"],
        rows,
        title="Section IX future work: load-adaptive software bypass",
    )
    return {"p99_ns": p99, "bypass_fraction": bypass, "table": table}


SHARDED_ADAPTIVE = ShardedExperiment(
    "sens-adaptive", _adaptive_shards, _adaptive_shard, _adaptive_merge,
)


def run_adaptive(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Future work (Section IX): load-adaptive offload decisions.

    Compares stock AccelFlow against the adaptive variant that bypasses
    congested accelerators to software, across load multipliers. The
    expected shape: identical at light load (no bypasses), adaptive
    ahead once accelerator queues build.
    """
    return SHARDED_ADAPTIVE.run(scale=scale, seed=seed, executor=executor)

"""Table I: source/destination accelerators of each accelerator.

Derived statically from the trace catalogue: for every hand-off (src,
dst) on any path of any trace (including CPU/network boundaries), the
src appears in dst's source set and vice versa. The paper's point —
connections must be flexible because each accelerator talks to several
others — shows as multi-entry rows.
"""

from __future__ import annotations

from typing import Dict, Set

from ..core import TraceRegistry
from ..hw import ACCEL_KINDS, AcceleratorKind
from .common import format_table
from .parallel import single_shard

__all__ = ["run", "connectivity"]


def connectivity(registry: TraceRegistry = None) -> Dict[str, Dict[str, Set[str]]]:
    """(sources, destinations) per accelerator across the catalogue."""
    registry = registry or TraceRegistry.with_standard_templates()
    sources: Dict[AcceleratorKind, Set[str]] = {k: set() for k in ACCEL_KINDS}
    destinations: Dict[AcceleratorKind, Set[str]] = {k: set() for k in ACCEL_KINDS}
    for trace in registry.traces():
        for src, dst in trace.accelerator_pairs():
            destinations[src].add(dst.value)
            sources[dst].add(src.value)
        for state, path in trace.all_paths():
            kinds = path.kinds()
            if not kinds:
                continue
            first, last = kinds[0], kinds[-1]
            # Chains starting at a non-TCP accelerator are fed by a core;
            # TCP entry points are fed by the network/its own send side.
            if first is not AcceleratorKind.TCP:
                sources[first].add("CPU")
            if path.notified:
                destinations[last].add("CPU")
    return {
        kind.value: {
            "sources": sources[kind],
            "destinations": destinations[kind],
        }
        for kind in ACCEL_KINDS
    }


def _compute(scale: str = "quick", seed: int = 0) -> Dict:
    table_data = connectivity()
    rows = []
    for name, entry in table_data.items():
        rows.append(
            [
                name,
                ", ".join(sorted(entry["sources"])) or "-",
                ", ".join(sorted(entry["destinations"])) or "-",
            ]
        )
    table = format_table(
        ["Accelerator", "Src Accelerators", "Dst Accelerators"],
        rows,
        title="Table I: source/destination accelerators",
    )
    return {"connectivity": table_data, "table": table}


SHARDED = single_shard("table1", _compute)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

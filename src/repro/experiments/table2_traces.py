"""Table II: the trace catalogue used by the services.

Lists every registered trace with its description, branch conditions,
accelerator-slot usage and whether it fits the 8-byte hardware budget
(all of the paper's traces do; none require splitting).
"""

from __future__ import annotations

from typing import Dict

from ..core import TraceRegistry, fits
from ..core.encoding import accel_slots
from ..core.templates import TEMPLATE_DESCRIPTIONS
from .common import format_table
from .parallel import single_shard

__all__ = ["run"]


def _compute(scale: str = "quick", seed: int = 0) -> Dict:
    registry = TraceRegistry.with_standard_templates()
    registry.validate_closed()
    rows = []
    data = {}
    for name in registry.names():
        trace = registry.get(name)
        base_name = name.rstrip("c")
        description = TEMPLATE_DESCRIPTIONS.get(
            base_name, "Report a function error to the user"
        )
        entry = {
            "description": description,
            "conditions": sorted(trace.conditions()),
            "accel_slots": accel_slots(trace.nodes),
            "fits_8_bytes": fits(trace),
            "links": sorted(trace.linked_traces()),
        }
        data[name] = entry
        rows.append(
            [
                name,
                description[:52],
                ",".join(entry["conditions"]) or "-",
                entry["accel_slots"],
                "yes" if entry["fits_8_bytes"] else "NO",
            ]
        )
    table = format_table(
        ["Trace", "Explanation", "Conditions", "Slots", "Fits"],
        rows,
        title="Table II: trace catalogue",
    )
    return {"traces": data, "table": table}


SHARDED = single_shard("table2", _compute)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

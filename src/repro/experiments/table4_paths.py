"""Table IV: most-common execution path and accelerator count per service.

Renders each SocialNetwork service's path (trace sequence with CPU
segments and parallel groups) and the total accelerator invocations per
request, which must reproduce the paper's counts exactly: CPost 87,
ReadH 28, StoreP 18, Follow 30, Login 29, CUrls 19, UniqId 9, RegUsr 25.
"""

from __future__ import annotations

from typing import Dict, List

from ..core import TraceRegistry
from ..workloads import (
    CpuSegment,
    ParallelInvocations,
    ServiceSpec,
    TraceInvocation,
    expand_chain,
    social_network_services,
    total_accelerators,
)
from .common import format_table
from .parallel import single_shard

__all__ = ["run", "PAPER_COUNTS", "path_string"]

PAPER_COUNTS = {
    "CPost": 87,
    "ReadH": 28,
    "StoreP": 18,
    "Follow": 30,
    "Login": 29,
    "CUrls": 19,
    "UniqId": 9,
    "RegUsr": 25,
}


def _chain_names(registry: TraceRegistry, invocation: TraceInvocation) -> str:
    """Trace names along one chain, fanout continuations included."""
    chain = [invocation.entry]
    seen = {invocation.entry}
    for path in expand_chain(registry, invocation):
        followers = [path.next_trace]
        followers.extend(arm.next_trace for arm in path.fanout_paths())
        for name in followers:
            if name and name not in seen:
                chain.append(name)
                seen.add(name)
    return "-".join(chain)


def path_string(registry: TraceRegistry, spec: ServiceSpec) -> str:
    """Render the Table IV path notation for one service."""
    parts: List[str] = []
    for step in spec.path:
        if isinstance(step, CpuSegment):
            parts.append("CPU")
        elif isinstance(step, TraceInvocation):
            parts.append(_chain_names(registry, step))
        elif isinstance(step, ParallelInvocations):
            inner = _chain_names(registry, step.invocations[0])
            parts.append(f"{len(step.invocations)}x({inner})")
    return "-".join(parts)


def _compute(scale: str = "quick", seed: int = 0) -> Dict:
    registry = TraceRegistry.with_standard_templates()
    rows = []
    data = {}
    for spec in social_network_services():
        path = path_string(registry, spec)
        count = total_accelerators(registry, spec)
        data[spec.name] = {
            "path": path,
            "accelerators": count,
            "paper": PAPER_COUNTS[spec.name],
            "match": count == PAPER_COUNTS[spec.name],
        }
        rows.append([spec.name, path, count, PAPER_COUNTS[spec.name]])
    table = format_table(
        ["Service", "Most Common Execution Path", "#", "Paper #"],
        rows,
        title="Table IV: execution paths and accelerator counts",
    )
    return {"services": data, "table": table}


SHARDED = single_shard("table4", _compute)


def run(scale: str = "quick", seed: int = 0, executor=None) -> Dict:
    """Classic entry point; delegates to the sharded executor path."""
    return SHARDED.run(scale=scale, seed=seed, executor=executor)

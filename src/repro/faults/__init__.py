"""Hardware fault injection and recovery (the resilience plane).

AccelFlow's decentralization argument is ultimately a *fault-tolerance*
argument: a system whose orchestration logic is replicated across nine
output dispatchers keeps serving requests through conditions that stall
a centralized hardware manager. This package makes that claim testable:

* :class:`FaultConfig` — a frozen, all-zeroes-by-default description of
  which faults to inject and how aggressively to recover,
* :class:`FaultPlane` — the deterministic, seeded injector threaded
  through the accelerator PEs, the A-DMA pool, the NoC links and the
  ATM (plus the RELIEF manager via the orchestrator),
* :class:`RecoveryPolicy` / :class:`CircuitBreaker` — the dispatcher
  watchdog + bounded-retry + health-tracking machinery installed on
  every orchestrator when a fault plane is present.

When no fault plane is installed (the default), none of the hooks draw
random numbers or change any code path, so all experiment outputs stay
byte-identical to the fault-free simulator.
"""

from .config import FaultConfig
from .gray import GrayFaults
from .plane import FaultPlane
from .recovery import CircuitBreaker, RecoveryPolicy, RetryBudget

__all__ = [
    "CircuitBreaker",
    "FaultConfig",
    "FaultPlane",
    "GrayFaults",
    "RecoveryPolicy",
    "RetryBudget",
]

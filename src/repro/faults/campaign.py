"""Chaos campaigns: a scenario x architecture x seed resilience grid.

A *campaign* runs a fixed grid of fault scenarios against a fixed set
of architectures, several seeds (replicas) per cell, and reduces every
cell to the same four-number resilience scorecard:

* **availability** — fraction of requests that completed without error
  or fatal timeout within the SLO (censored requests count against it);
* **P99 inflation** — faulty-run P99 over the clean-run P99 at the
  same seed (CRN: identical arrivals and request bodies, so the ratio
  is fault damage, not sampling noise);
* **MTTR** — mean time to recovery measured from *telemetry*, not from
  ground truth: each cell attaches a burn-rate :class:`~repro.obs.slo.
  SLOMonitor` and MTTR is the mean firing->resolved span of its alert
  lifecycles (still-firing alerts are charged up to the end of the
  run). A scenario the alert plane never notices has MTTR 0 — the
  scorecard measures the *observed* incident, which is what an
  on-call rotation experiences;
* **retry amplification** — total accelerator ops executed in the
  faulty run over the clean run. Recovery that re-executes work
  (watchdog retries, duplicated abandoned attempts) pushes this above
  1; degradation to the CPU pulls it down.

The grid cells are independent and embarrassingly parallel; the
``campaign`` experiment (:mod:`repro.experiments.fig_campaign`) shards
them through the standard parallel runner and renders the scorecard
table that CI diffs against its golden fixture.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..obs import ObsConfig
from ..obs.slo import SLOMonitorConfig, SLOTarget
from ..server.machine import SimulatedServer
from ..sim import LatencyRecorder
from ..workloads.arrivals import make_arrivals
from .config import FaultConfig

__all__ = [
    "ARCHITECTURES",
    "REPLICAS",
    "SCENARIOS",
    "SCENARIO_ORDER",
    "SERVICE",
    "RATE_RPS",
    "SLO_MULTIPLIER",
    "run_cell",
    "aggregate",
]

#: The measured service: the heaviest accelerator path (4 kinds plus
#: two remote waits), so every fault category has something to hit.
SERVICE = "StoreP"

#: Offered load (RPS): light enough that damage is attributable to the
#: scenario, not to saturation.
RATE_RPS = 2000.0

#: SLO = multiplier x the same-seed clean mean latency.
SLO_MULTIPLIER = 5.0

#: Simulated drain budget past the last arrival (ns).
DRAIN_NS = 100e6

#: Campaign grid: the paper's centralized baseline vs its proposal.
ARCHITECTURES = ["relief", "accelflow"]

#: Seeds per cell; replica r of every (scenario, architecture) cell
#: shares one derived seed, so architectures stay CRN-aligned.
REPLICAS = 3

#: Scenario name -> fault mix. Fail-stop mixes mirror ``fig_faults``;
#: the gray scenarios exercise :mod:`repro.faults.gray`.
SCENARIOS: Dict[str, FaultConfig] = {
    "transient": FaultConfig(
        pe_transient_rate=0.05,
        dma_stall_rate=0.05,
        dma_stall_ns=5e4,
        dma_corruption_rate=0.01,
    ),
    "wear": FaultConfig(
        pe_wedge_rate=0.01,
        pe_wedge_ns=8e6,  # past the watchdog: forces timeout + retry
        pe_stuck_mtbf_ns=2e7,
        pe_repair_ns=5e6,
        pe_stuck_max=32,
        noc_flap_interval_ns=5e6,
        noc_flap_down_ns=2e4,
        noc_flap_max=128,
        noc_degraded_factor=1.1,
    ),
    "gray-limp": FaultConfig(
        # Probability 1: *this* machine limps — the campaign scores the
        # blast radius of a limping server, not the odds of having one.
        gray_limp_probability=1.0,
        gray_limp_factor=2.0,
    ),
    "gray-slowdown": FaultConfig(
        gray_slowdown_interval_ns=2e6,
        gray_slowdown_ns=2e6,
        gray_slowdown_factor=6.0,
        gray_slowdown_max=16,
    ),
}

#: Render order (fail-stop first, gray last).
SCENARIO_ORDER = ["transient", "wear", "gray-limp", "gray-slowdown"]

#: SLO-monitor geometry for the MTTR signal: a fast window of a few
#: dozen arrivals at RATE_RPS, an availability objective of 95% (the
#: campaign *wants* alerts at run scale — a 99.9% objective would
#: need far longer runs to distinguish burn from noise), and both
#: windows burning at 2x budget (10% bad) before the alert fires.
#: Calibrated so fail-stop incidents (the wear scenario's wedge
#: pile-ups) reliably fire while the gray scenarios stay silent —
#: which is the point the scorecard makes: gray failures inflate P99
#: without ever tripping burn-rate alerting.
_FAST_WINDOW_NS = 10e6
_SLOW_WINDOW_NS = 20e6
_AVAILABILITY = 0.95
_BURN_THRESHOLD = 2.0


def _slo_obs(slo_ns: float) -> ObsConfig:
    return ObsConfig(
        slo=SLOMonitorConfig(
            targets=(
                SLOTarget(
                    SERVICE, availability=_AVAILABILITY, latency_ns=slo_ns
                ),
            ),
            fast_window_ns=_FAST_WINDOW_NS,
            slow_window_ns=_SLOW_WINDOW_NS,
            burn_threshold=_BURN_THRESHOLD,
        )
    )


def _measure(
    architecture: str,
    spec,
    faults: Optional[FaultConfig],
    seed: int,
    n_requests: int,
    obs: Optional[ObsConfig] = None,
):
    """One open-loop run; returns (in_flight, server)."""
    server = SimulatedServer(architecture, seed=seed, faults=faults, obs=obs)
    env = server.env
    arrivals = make_arrivals(
        "poisson", RATE_RPS, server.streams.stream(f"arrivals/{spec.name}")
    )
    in_flight: List = []

    def source(env):
        for _ in range(n_requests):
            yield env.timeout(arrivals.next_gap_ns())
            request = server.make_request(spec)
            in_flight.append((request, server.submit(request)))

    src = env.process(source(env), name="campaign-src")

    def watch(env):
        yield src
        yield env.all_of([process for _, process in in_flight])

    watcher = env.process(watch(env), name="campaign-watch")
    horizon_ns = n_requests / RATE_RPS * 1e9 + DRAIN_NS
    env.run(until=env.any_of([watcher, env.timeout(horizon_ns)]))
    return in_flight, server


def _total_ops(server: SimulatedServer) -> float:
    return float(
        sum(a.ops_completed for a in server.hardware.all_accelerators())
    )


def _p99(in_flight, env_now: float) -> float:
    recorder = LatencyRecorder()
    for request, _process in in_flight:
        if request.completed:
            recorder.record(request.latency_ns)
        else:
            recorder.record(env_now - request.arrival_ns)
    return recorder.p99() if len(recorder) else 0.0


def run_cell(
    architecture: str, scenario: str, seed: int, n_requests: int
) -> Dict[str, float]:
    """One campaign cell: clean CRN reference + faulty run + scorecard."""
    from ..workloads import social_network_services

    spec = next(
        s for s in social_network_services() if s.name == SERVICE
    )
    clean_flight, clean_server = _measure(
        architecture, spec, None, seed, n_requests
    )
    clean_latencies = [r.latency_ns for r, _ in clean_flight if r.completed]
    if not clean_latencies:
        raise RuntimeError(
            f"clean reference completed nothing ({architecture}, seed {seed})"
        )
    slo_ns = SLO_MULTIPLIER * (sum(clean_latencies) / len(clean_latencies))
    clean_p99 = _p99(clean_flight, clean_server.env.now)
    clean_ops = _total_ops(clean_server)

    obs = _slo_obs(slo_ns)
    in_flight, server = _measure(
        architecture, spec, SCENARIOS[scenario], seed, n_requests, obs=obs
    )

    available = censored = 0
    for request, _process in in_flight:
        if not request.completed:
            censored += 1
            continue
        if (
            not request.error
            and not request.timed_out
            and request.latency_ns <= slo_ns
        ):
            available += 1

    # MTTR from the alert plane: firing -> resolved per lifecycle;
    # alerts still firing at the end of the run are charged up to now.
    monitor = obs.slo_monitor
    end_ns = server.env.now
    spans = [
        (alert.resolved_at_ns if alert.resolved_at_ns is not None else end_ns)
        - alert.fired_at_ns
        for alert in monitor.fired_ever()
        if alert.fired_at_ns is not None
    ]
    mttr_ns = sum(spans) / len(spans) if spans else 0.0

    faulty_ops = _total_ops(server)
    plane = server.fault_plane
    return {
        "availability": available / len(in_flight) if in_flight else 0.0,
        "p99_inflation": _p99(in_flight, end_ns) / clean_p99
        if clean_p99 > 0
        else 0.0,
        "mttr_ns": mttr_ns,
        "amplification": faulty_ops / clean_ops if clean_ops > 0 else 0.0,
        "alerts_fired": float(len(spans)),
        "censored": float(censored),
        "injected": float(plane.total_injected()) if plane is not None else 0.0,
        "slo_ns": slo_ns,
    }


def aggregate(cells: List[Dict[str, float]]) -> Dict[str, float]:
    """Mean scorecard over one cell's replicas."""
    if not cells:
        return {}
    keys = (
        "availability",
        "p99_inflation",
        "mttr_ns",
        "amplification",
        "alerts_fired",
        "censored",
        "injected",
    )
    return {key: sum(c[key] for c in cells) / len(cells) for key in keys}

"""Fault-injection and recovery knobs.

Every rate defaults to zero, so a default :class:`FaultConfig` is inert:
:attr:`FaultConfig.enabled` is False and no fault plane is installed.
Durations are simulated nanoseconds; rates are per-operation
probabilities; ``*_interval_ns`` values are exponential means between
injection windows; ``*_max`` values bound the number of windows one
injector process schedules, so simulations driven by a bare
``env.run()`` always drain.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultConfig"]


@dataclass(frozen=True)
class FaultConfig:
    """What to inject, and how hard the orchestrators fight back."""

    # -- PE faults ---------------------------------------------------------
    #: Probability an op completes with a corrupted (retryable) result.
    pe_transient_rate: float = 0.0
    #: Probability an op wedges its PE for :attr:`pe_wedge_ns` before
    #: completing (long enough to trip the dispatch watchdog).
    pe_wedge_rate: float = 0.0
    pe_wedge_ns: float = 8e6
    #: Mean time between stuck-at faults (0 disables); a stuck PE is
    #: removed from its accelerator's free pool for :attr:`pe_repair_ns`.
    pe_stuck_mtbf_ns: float = 0.0
    pe_repair_ns: float = 5e6
    pe_stuck_max: int = 8

    # -- A-DMA faults ------------------------------------------------------
    #: Probability a transfer stalls its engine for :attr:`dma_stall_ns`.
    dma_stall_rate: float = 0.0
    dma_stall_ns: float = 5e4
    #: Probability a transfer delivers corrupted data (callers that
    #: check the flag re-issue the transfer).
    dma_corruption_rate: float = 0.0

    # -- NoC faults --------------------------------------------------------
    #: Mean gap between inter-chiplet link flaps (0 disables); a flapped
    #: link blocks new transfers for :attr:`noc_flap_down_ns`.
    noc_flap_interval_ns: float = 0.0
    noc_flap_down_ns: float = 1e5
    noc_flap_max: int = 16
    #: >1 models worn links: inter-chiplet latency+serialization scale
    #: by this factor while a fault plane is installed.
    noc_degraded_factor: float = 1.0

    # -- Placement-hop faults (need a placement fabric to bite) ------------
    #: Mean gap between PCIe link flaps (0 disables); a flapped link
    #: admits no new package<->card crossings for
    #: :attr:`pcie_flap_down_ns`. Only transfers whose endpoints sit on
    #: a ``pcie`` placement are affected — an all-on-package machine is
    #: byte-identical with this knob set.
    pcie_flap_interval_ns: float = 0.0
    pcie_flap_down_ns: float = 2e5
    pcie_flap_max: int = 16
    #: Mean gap between NIC congestion windows (0 disables); while one
    #: is open, every ``nic`` crossing stretches by
    #: :attr:`nic_congestion_factor`.
    nic_congestion_interval_ns: float = 0.0
    nic_congestion_ns: float = 5e5
    nic_congestion_factor: float = 4.0
    nic_congestion_max: int = 16

    # -- Gray faults (slow-but-alive; see repro.faults.gray) ---------------
    #: Probability that this *machine* limps: one Bernoulli draw at
    #: plane attach decides whether every accelerator op on this server
    #: is inflated by :attr:`gray_limp_factor` for the whole run. In a
    #: cluster each machine draws from its own derived stream, so a
    #: fleet at probability p carries ~p limping members.
    gray_limp_probability: float = 0.0
    gray_limp_factor: float = 2.0
    #: Mean gap between per-accelerator-instance slowdown windows
    #: (0 disables); one randomly chosen instance serves ops
    #: :attr:`gray_slowdown_factor` slower for :attr:`gray_slowdown_ns`.
    gray_slowdown_interval_ns: float = 0.0
    gray_slowdown_ns: float = 1e6
    gray_slowdown_factor: float = 4.0
    gray_slowdown_max: int = 16
    #: Scope slowdowns to one accelerator kind (e.g. ``"TCP"``); the
    #: empty string means any instance on the machine is eligible.
    #: Chaos experiments point this at the bottleneck kind so the
    #: trigger bites at every seed. Validated against the hardware at
    #: plane attach (kind names are per-architecture).
    gray_slowdown_kind: str = ""
    #: Mean gap between congestion ramps on one placement hop
    #: (0 disables); the hop's crossing-time multiplier staircases from
    #: 1 up to :attr:`gray_ramp_peak_factor` and back down over
    #: :attr:`gray_ramp_ns`, in ``2 * gray_ramp_steps`` equal treads.
    #: Machines with nothing behind the scoped hop are byte-identical.
    gray_ramp_interval_ns: float = 0.0
    gray_ramp_ns: float = 2e6
    gray_ramp_peak_factor: float = 6.0
    gray_ramp_steps: int = 4
    gray_ramp_max: int = 8
    #: Which placement hop the ramps congest ("near_cache", "pcie",
    #: "nic" or "remote"; validated against the Placement enum).
    gray_ramp_placement: str = "nic"

    # -- ATM faults --------------------------------------------------------
    #: Mean gap between ATM outages (0 disables); reads issued during an
    #: outage wait until the SRAM comes back.
    atm_outage_interval_ns: float = 0.0
    atm_outage_ns: float = 1e5
    atm_outage_max: int = 8

    # -- Central hardware-manager faults (RELIEF-family only) --------------
    #: Mean gap between manager outages (0 disables); the manager unit
    #: is held busy for :attr:`manager_outage_ns` per outage, stalling
    #: every submission, completion and retirement queued behind it.
    manager_outage_interval_ns: float = 0.0
    manager_outage_ns: float = 1e6
    manager_outage_max: int = 16

    # -- Retry budget (adaptive overload control) --------------------------
    #: Token-bucket retry budget shared by every retry path of one
    #: orchestrator (step, TCP re-wait, DMA re-issue). 0 disables the
    #: budget: retries stay unconditionally bounded per attempt, the
    #: pre-budget behavior. With a budget, each retry draws one token
    #: and an empty bucket degrades the step immediately — a retry
    #: storm self-quenches instead of amplifying offered load.
    retry_budget_tokens: float = 0.0
    #: Tokens restored per simulated second (sustained retry rate).
    retry_budget_refill_per_s: float = 0.0

    # -- Recovery knobs ----------------------------------------------------
    #: Per-step dispatch watchdog: an accelerator step attempt that has
    #: not completed within this budget is interrupted and retried.
    watchdog_timeout_ns: float = 5e6
    #: Retries per step before degrading the trace suffix to the CPU.
    step_max_retries: int = 3
    #: Exponential backoff between retries: base * factor^(attempt-1),
    #: multiplied by a uniform jitter in [1-j, 1+j].
    backoff_base_ns: float = 2e3
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5
    #: Circuit breaker: this many failures within the rolling window
    #: trip an accelerator instance open for the cooldown.
    breaker_failure_threshold: int = 5
    breaker_window_ns: float = 5e6
    breaker_cooldown_ns: float = 10e6
    #: Lost remote responses re-waited before declaring a fatal timeout.
    tcp_max_retries: int = 2
    #: Corrupted inter-accelerator DMA transfers re-issued before the
    #: request is failed.
    dma_max_retries: int = 2

    @property
    def enabled(self) -> bool:
        """True when any fault source is active (recovery knobs alone
        never warrant installing the plane)."""
        return (
            self.pe_transient_rate > 0.0
            or self.pe_wedge_rate > 0.0
            or self.pe_stuck_mtbf_ns > 0.0
            or self.dma_stall_rate > 0.0
            or self.dma_corruption_rate > 0.0
            or self.noc_flap_interval_ns > 0.0
            or self.noc_degraded_factor > 1.0
            or self.pcie_flap_interval_ns > 0.0
            or self.nic_congestion_interval_ns > 0.0
            or self.atm_outage_interval_ns > 0.0
            or self.manager_outage_interval_ns > 0.0
            or self.gray_enabled
        )

    @property
    def gray_enabled(self) -> bool:
        """True when any gray (slow-but-alive) fault source is active."""
        return (
            self.gray_limp_probability > 0.0
            or self.gray_slowdown_interval_ns > 0.0
            or self.gray_ramp_interval_ns > 0.0
        )

    #: Every probability knob: must lie in [0, 1].
    _RATE_FIELDS = (
        "pe_transient_rate",
        "pe_wedge_rate",
        "dma_stall_rate",
        "dma_corruption_rate",
        "gray_limp_probability",
    )

    #: Every duration/interval knob: negative sim-time is always a bug
    #: (0 means "disabled" for intervals, "free" for durations).
    _DURATION_FIELDS = (
        "pe_wedge_ns",
        "pe_stuck_mtbf_ns",
        "pe_repair_ns",
        "dma_stall_ns",
        "noc_flap_interval_ns",
        "noc_flap_down_ns",
        "pcie_flap_interval_ns",
        "pcie_flap_down_ns",
        "nic_congestion_interval_ns",
        "nic_congestion_ns",
        "gray_slowdown_interval_ns",
        "gray_slowdown_ns",
        "gray_ramp_interval_ns",
        "gray_ramp_ns",
        "atm_outage_interval_ns",
        "atm_outage_ns",
        "manager_outage_interval_ns",
        "manager_outage_ns",
        "backoff_base_ns",
        "breaker_window_ns",
        "breaker_cooldown_ns",
    )

    #: Slowdown multipliers: < 1 would model speedups, not faults.
    _FACTOR_FIELDS = (
        "noc_degraded_factor",
        "nic_congestion_factor",
        "gray_limp_factor",
        "gray_slowdown_factor",
        "gray_ramp_peak_factor",
    )

    def validate(self) -> None:
        for name in self._RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in self._DURATION_FIELDS:
            value = getattr(self, name)
            if value < 0.0:
                raise ValueError(
                    f"{name} must be non-negative (simulated ns), got {value}"
                )
        for name in self._FACTOR_FIELDS:
            value = getattr(self, name)
            if value < 1.0:
                raise ValueError(
                    f"{name} must be >= 1 (a slowdown multiplier), got {value}"
                )
        from ..hw.placement import Placement

        hop_scopes = sorted(
            p.value for p in Placement if p is not Placement.ON_PACKAGE
        )
        if self.gray_ramp_placement not in hop_scopes:
            raise ValueError(
                f"gray_ramp_placement must be a placement hop "
                f"({', '.join(hop_scopes)}), got {self.gray_ramp_placement!r}; "
                f"'on_package' has no hop link to congest"
            )
        if self.gray_ramp_steps < 1:
            raise ValueError(
                f"gray_ramp_steps must be >= 1, got {self.gray_ramp_steps}"
            )
        if self.step_max_retries < 0 or self.tcp_max_retries < 0:
            raise ValueError("retry counts must be non-negative")
        if self.retry_budget_tokens < 0 or self.retry_budget_refill_per_s < 0:
            raise ValueError(
                "retry_budget_tokens and retry_budget_refill_per_s must be "
                "non-negative (0 disables the budget)"
            )
        if self.watchdog_timeout_ns <= 0:
            raise ValueError("watchdog_timeout_ns must be positive")

"""Gray faults: slow-but-alive degradation, not fail-stop.

Fail-stop faults (PR 4) either corrupt a result or hold a resource —
the failure is *visible*. Gray failures are the production-dominant
mode the disaggregated placements (PR 8) make unavoidable: a machine
that limps at 2x service time for a whole run, one accelerator
instance that intermittently serves ops 4x slower, a placement hop
whose congestion *ramps* instead of flapping. Nothing errors; tails
just stretch until a health plane notices.

Three seeded categories, all zero-rate byte-identical like every
existing fault source (the plane skips constructing :class:`GrayFaults`
entirely when no gray knob is set, and the accelerator hot path only
multiplies service time when the factor differs from 1.0):

* **machine limp** — one Bernoulli draw per server at attach time
  decides whether *every* accelerator op on that machine is inflated
  by ``gray_limp_factor``. Each machine draws from its own derived
  stream, so a fleet at probability p carries ~p limping members and
  the draw never perturbs per-op streams.
* **instance slowdown** — a bounded injector periodically picks one
  accelerator instance and serves its ops ``gray_slowdown_factor``
  slower for a window; the instance stays alive, keeps accepting work,
  and never trips a breaker by itself.
* **congestion ramp** — a bounded injector staircases one placement
  hop's crossing-time multiplier from 1 up to ``gray_ramp_peak_factor``
  and back over ``gray_ramp_ns``, in ``2 * gray_ramp_steps`` equal
  treads. Unlike the NIC congestion window (a step function), a ramp
  is the gradual-onset shape that defeats threshold-based detection.
"""

from __future__ import annotations

from typing import Dict

from ..sim import Environment, RandomStreams
from .config import FaultConfig

__all__ = ["GrayFaults"]


class GrayFaults:
    """The gray-fault half of one server's :class:`FaultPlane`.

    Only constructed when :attr:`FaultConfig.gray_enabled` is true, so
    disabled gray knobs add neither streams nor branches anywhere.
    """

    def __init__(
        self,
        env: Environment,
        config: FaultConfig,
        streams: RandomStreams,
        plane,
    ):
        self.env = env
        self.config = config
        self.plane = plane
        self._machine_stream = streams.stream("faults/gray-machine")
        self._accel_stream = streams.stream("faults/gray-accel")
        self._ramp_stream = streams.stream("faults/gray-ramp")
        #: True when this machine drew the limp at attach time.
        self.limping = False
        #: id(accel) -> slowdown factor for the open window.
        self._slow: Dict[int, float] = {}
        # Injection counters (folded into the plane's stats()).
        self.limps = 0
        self.slowdowns = 0
        self.ramps = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, hardware) -> None:
        """Draw the machine-limp fate and start bounded injectors."""
        config = self.config
        if config.gray_limp_probability > 0.0:
            if self._machine_stream.bernoulli(config.gray_limp_probability):
                self.limping = True
                self.limps += 1
                self.plane.emit(
                    "gray-limp", {"factor": config.gray_limp_factor}
                )
        if config.gray_slowdown_interval_ns > 0.0:
            accels = hardware.all_accelerators()
            if config.gray_slowdown_kind:
                accels = [
                    a for a in accels
                    if a.kind.value == config.gray_slowdown_kind
                ]
                if not accels:
                    known = sorted(
                        a.kind.value for a in hardware.all_accelerators()
                    )
                    raise ValueError(
                        f"gray_slowdown_kind "
                        f"{config.gray_slowdown_kind!r} matches no "
                        f"accelerator on this hardware; known kinds: "
                        f"{known}"
                    )
            self.env.process(
                self._slowdown_injector(accels), name="fault-gray-slowdown"
            )
        # Ramps congest a placement hop, so like PCIe flaps they need a
        # fabric to bite; an all-on-package machine is byte-identical.
        if (
            config.gray_ramp_interval_ns > 0.0
            and getattr(hardware, "fabric", None) is not None
        ):
            self.env.process(self._ramp_injector(), name="fault-gray-ramp")

    # ------------------------------------------------------------------
    # Per-op factor (called inline by Accelerator._execute)
    # ------------------------------------------------------------------
    def service_factor(self, accel) -> float:
        """Service-time multiplier for one op on ``accel`` (1.0 = clean)."""
        factor = self.config.gray_limp_factor if self.limping else 1.0
        slow = self._slow.get(id(accel))
        if slow is not None:
            factor *= slow
        return factor

    # ------------------------------------------------------------------
    # Window injectors (bounded processes)
    # ------------------------------------------------------------------
    def _slowdown_injector(self, accels):
        """Periodically slow one accelerator instance for a window.

        ``accels`` is the eligible instance list — every instance on
        the machine by default, or only one kind's instances when
        :attr:`FaultConfig.gray_slowdown_kind` scopes the category
        (chaos experiments target the bottleneck kind this way).
        """
        env = self.env
        config = self.config
        stream = self._accel_stream
        for _ in range(config.gray_slowdown_max):
            yield env.timeout(
                stream.exponential(config.gray_slowdown_interval_ns)
            )
            accel = accels[stream.randint(0, len(accels) - 1)]
            key = id(accel)
            if key in self._slow:
                continue  # window already open on this instance
            self.slowdowns += 1
            self.plane.emit(
                "gray-slowdown",
                {"accel": accel.kind.value,
                 "factor": config.gray_slowdown_factor,
                 "ns": config.gray_slowdown_ns},
            )
            self._slow[key] = config.gray_slowdown_factor
            yield env.timeout(config.gray_slowdown_ns)
            del self._slow[key]

    def _ramp_injector(self):
        """Periodically staircase one placement hop up to the peak
        multiplier and back down (the gradual-onset congestion shape)."""
        from ..hw.placement import Placement

        env = self.env
        config = self.config
        stream = self._ramp_stream
        placement = Placement(config.gray_ramp_placement)
        factors = self.plane._placement_factors
        steps = config.gray_ramp_steps
        tread_ns = config.gray_ramp_ns / (2 * steps)
        rise = config.gray_ramp_peak_factor - 1.0
        for _ in range(config.gray_ramp_max):
            yield env.timeout(stream.exponential(config.gray_ramp_interval_ns))
            if factors.get(placement, 1.0) > 1.0:
                continue  # hop already congested (e.g. NIC window open)
            self.ramps += 1
            self.plane.emit(
                "gray-ramp",
                {"placement": placement.value,
                 "peak": config.gray_ramp_peak_factor,
                 "ns": config.gray_ramp_ns},
            )
            # Symmetric staircase: tread i sits at level min(i+1, 2s-i)
            # of s, so the hop rises to the peak, holds two treads, and
            # descends — 2s equal treads covering gray_ramp_ns exactly.
            for i in range(2 * steps):
                level = min(i + 1, 2 * steps - i)
                factors[placement] = 1.0 + rise * level / steps
                yield env.timeout(tread_ns)
            factors[placement] = 1.0

"""The fault plane: deterministic, seeded fault injection in sim time.

One :class:`FaultPlane` serves a whole server. Hardware components hold
a reference and consult it inline (per-op transient/wedge/stall draws);
window-based faults (stuck PEs, link flaps, ATM outages) are injected
by bounded scheduler processes spawned from :meth:`attach`. Every
category draws from its own named stream derived via
:func:`repro.sim.derive_seed`, so enabling one fault type never
perturbs another — or any pre-existing model stream — and experiment
comparisons stay common-random-number aligned.

Manager outages are injected by :class:`~repro.orchestration.hw_manager.
HwManagerOrchestrator` itself (only that family has a manager); the
plane supplies the stream and the counter so all fault accounting lives
in one place.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..sim import Environment, Event, RandomStreams
from .config import FaultConfig

__all__ = ["FaultPlane"]


class FaultPlane:
    """Injects the faults described by a :class:`FaultConfig`."""

    def __init__(
        self,
        env: Environment,
        config: FaultConfig,
        streams: RandomStreams,
        tracer=None,
    ):
        config.validate()
        self.env = env
        self.config = config
        self.tracer = tracer
        #: Optional :class:`repro.obs.TelemetryBus`; every injection is
        #: additionally published as a ``FaultInjected`` event.
        self.bus = None
        self._pe_stream = streams.stream("faults/pe")
        self._pe_sched_stream = streams.stream("faults/pe-sched")
        self._dma_stream = streams.stream("faults/dma")
        self._noc_stream = streams.stream("faults/noc")
        self._atm_stream = streams.stream("faults/atm")
        self._pcie_stream = streams.stream("faults/pcie")
        self._nic_stream = streams.stream("faults/nic")
        #: Used by the hw-manager orchestrator's outage injector.
        self.manager_stream = streams.stream("faults/manager")
        #: Gray-fault half (None unless a gray knob is set, so the
        #: service-time fast path stays a single None check).
        self.gray = None
        if config.gray_enabled:
            from .gray import GrayFaults

            self.gray = GrayFaults(env, config, streams, self)

        #: Down inter-chiplet links: (chiplet, chiplet) -> back-up gate.
        self._down_links: Dict[Tuple[int, int], Event] = {}
        #: ATM outage gate (None while the SRAM is reachable).
        self._atm_gate: Optional[Event] = None
        #: Flapped placement hops: Placement -> back-up gate.
        self._down_placements: Dict[object, Event] = {}
        #: Placement -> crossing-time multiplier (>1 during congestion).
        self._placement_factors: Dict[object, float] = {}

        # Injection counters (surfaced through stats() and obs gauges).
        self.pe_transients = 0
        self.pe_wedges = 0
        self.pe_stuck = 0
        self.dma_stalls = 0
        self.dma_corruptions = 0
        self.link_flaps = 0
        self.pcie_flaps = 0
        self.nic_congestions = 0
        self.atm_outages = 0
        self.manager_outages = 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach(self, hardware) -> None:
        """Hook this plane into one server's hardware and start the
        bounded window injectors."""
        for accel in hardware.all_accelerators():
            accel.fault_plane = self
        hardware.dma.fault_plane = self
        hardware.network.fault_plane = self
        hardware.atm.fault_plane = self
        config = self.config
        if config.pe_stuck_mtbf_ns > 0:
            self.env.process(
                self._stuck_pe_injector(hardware), name="fault-stuck-pe"
            )
        if config.noc_flap_interval_ns > 0:
            self.env.process(
                self._link_flap_injector(hardware.network), name="fault-link-flap"
            )
        # Placement-hop injectors only make sense against a placement
        # fabric; an all-on-package machine has no PCIe link to flap,
        # so these knobs leave it byte-identical.
        fabric = getattr(hardware, "fabric", None)
        if fabric is not None:
            fabric.fault_plane = self
            if config.pcie_flap_interval_ns > 0:
                self.env.process(
                    self._placement_flap_injector(), name="fault-pcie-flap"
                )
            if config.nic_congestion_interval_ns > 0:
                self.env.process(
                    self._nic_congestion_injector(), name="fault-nic-congestion"
                )
        if config.atm_outage_interval_ns > 0:
            self.env.process(self._atm_outage_injector(), name="fault-atm-outage")
        if self.gray is not None:
            self.gray.attach(hardware)

    def emit(self, name: str, args: Optional[dict] = None) -> None:
        """Record a fault event: an instant span on the faults track,
        and a ``FaultInjected`` telemetry event when a bus is attached."""
        if self.tracer is not None:
            self.tracer.instant(name, "faults", args=args)
        if self.bus is not None:
            from ..obs.telemetry import FaultInjected

            self.bus.publish(
                FaultInjected(t_ns=self.env.now, category=name, args=args)
            )

    # ------------------------------------------------------------------
    # Per-op draws (called inline by the hardware models)
    # ------------------------------------------------------------------
    def pe_wedge_ns(self, accel) -> float:
        """Extra stall this op suffers from a wedged PE (0 = none)."""
        if self.config.pe_wedge_rate <= 0.0:
            return 0.0
        if not self._pe_stream.bernoulli(self.config.pe_wedge_rate):
            return 0.0
        self.pe_wedges += 1
        self.emit("pe-wedge", {"accel": accel.kind.value,
                               "ns": self.config.pe_wedge_ns})
        return self.config.pe_wedge_ns

    def pe_transient(self, accel) -> bool:
        """True when this op's result comes out corrupted (retryable)."""
        if self.config.pe_transient_rate <= 0.0:
            return False
        if not self._pe_stream.bernoulli(self.config.pe_transient_rate):
            return False
        self.pe_transients += 1
        self.emit("pe-transient", {"accel": accel.kind.value})
        return True

    def service_factor(self, accel) -> float:
        """Gray service-time multiplier for one op (1.0 = clean)."""
        if self.gray is None:
            return 1.0
        return self.gray.service_factor(accel)

    def dma_stall_ns(self) -> float:
        if self.config.dma_stall_rate <= 0.0:
            return 0.0
        if not self._dma_stream.bernoulli(self.config.dma_stall_rate):
            return 0.0
        self.dma_stalls += 1
        self.emit("dma-stall", {"ns": self.config.dma_stall_ns})
        return self.config.dma_stall_ns

    def dma_corrupts(self) -> bool:
        if self.config.dma_corruption_rate <= 0.0:
            return False
        if not self._dma_stream.bernoulli(self.config.dma_corruption_rate):
            return False
        self.dma_corruptions += 1
        self.emit("dma-corruption")
        return True

    # ------------------------------------------------------------------
    # Gates (transfers wait out an active outage)
    # ------------------------------------------------------------------
    def link_wait(self, chip_a: int, chip_b: int):
        """Generator: wait while the (a, b) inter-chiplet link is down."""
        pair = (chip_a, chip_b) if chip_a < chip_b else (chip_b, chip_a)
        while True:
            gate = self._down_links.get(pair)
            if gate is None:
                return
            yield gate

    def link_factor(self) -> float:
        """Serialization multiplier for degraded inter-chiplet links."""
        return self.config.noc_degraded_factor

    def atm_wait(self):
        """Generator: wait while the ATM is unreachable."""
        while self._atm_gate is not None:
            yield self._atm_gate

    def placement_wait(self, placement):
        """Generator: wait while ``placement``'s hop link is flapped."""
        while True:
            gate = self._down_placements.get(placement)
            if gate is None:
                return
            yield gate

    def placement_factor(self, placement) -> float:
        """Crossing-time multiplier for ``placement`` (1.0 = healthy)."""
        return self._placement_factors.get(placement, 1.0)

    # ------------------------------------------------------------------
    # Window injectors (bounded processes)
    # ------------------------------------------------------------------
    def _stuck_pe_injector(self, hardware):
        """Periodically jam a random free PE for the repair window."""
        env = self.env
        config = self.config
        stream = self._pe_sched_stream
        accels: List = hardware.all_accelerators()
        for _ in range(config.pe_stuck_max):
            yield env.timeout(stream.exponential(config.pe_stuck_mtbf_ns))
            accel = accels[stream.randint(0, len(accels) - 1)]
            pe = accel._free_pes.try_get()
            if pe is None:
                continue  # every PE busy: the fault window passes unnoticed
            self.pe_stuck += 1
            self.emit("pe-stuck", {"accel": accel.kind.value, "pe": pe.index,
                                   "repair_ns": config.pe_repair_ns})
            yield env.timeout(config.pe_repair_ns)
            accel._free_pes.try_put(pe)

    def _link_flap_injector(self, network):
        """Periodically take one inter-chiplet link down for a window."""
        env = self.env
        config = self.config
        stream = self._noc_stream
        pairs = sorted(network._links)
        if not pairs:
            return
        for _ in range(config.noc_flap_max):
            yield env.timeout(stream.exponential(config.noc_flap_interval_ns))
            pair = pairs[stream.randint(0, len(pairs) - 1)]
            if pair in self._down_links:
                continue
            self.link_flaps += 1
            self.emit("noc-flap", {"link": f"{pair[0]}-{pair[1]}",
                                   "down_ns": config.noc_flap_down_ns})
            gate = self.env.event()
            self._down_links[pair] = gate
            yield env.timeout(config.noc_flap_down_ns)
            del self._down_links[pair]
            gate.succeed()

    def _placement_flap_injector(self):
        """Periodically flap the PCIe hop link for a down window."""
        from ..hw.placement import Placement

        env = self.env
        config = self.config
        stream = self._pcie_stream
        for _ in range(config.pcie_flap_max):
            yield env.timeout(stream.exponential(config.pcie_flap_interval_ns))
            if Placement.PCIE in self._down_placements:
                continue
            self.pcie_flaps += 1
            self.emit("pcie-flap", {"down_ns": config.pcie_flap_down_ns})
            gate = env.event()
            self._down_placements[Placement.PCIE] = gate
            yield env.timeout(config.pcie_flap_down_ns)
            del self._down_placements[Placement.PCIE]
            gate.succeed()

    def _nic_congestion_injector(self):
        """Periodically congest the NIC hop for a stretched window."""
        from ..hw.placement import Placement

        env = self.env
        config = self.config
        stream = self._nic_stream
        for _ in range(config.nic_congestion_max):
            yield env.timeout(
                stream.exponential(config.nic_congestion_interval_ns)
            )
            if self._placement_factors.get(Placement.NIC, 1.0) > 1.0:
                continue
            self.nic_congestions += 1
            self.emit(
                "nic-congestion",
                {"ns": config.nic_congestion_ns,
                 "factor": config.nic_congestion_factor},
            )
            self._placement_factors[Placement.NIC] = config.nic_congestion_factor
            yield env.timeout(config.nic_congestion_ns)
            self._placement_factors[Placement.NIC] = 1.0

    def _atm_outage_injector(self):
        """Periodically make the trace SRAM unreachable for a window."""
        env = self.env
        config = self.config
        stream = self._atm_stream
        for _ in range(config.atm_outage_max):
            yield env.timeout(stream.exponential(config.atm_outage_interval_ns))
            self.atm_outages += 1
            self.emit("atm-outage", {"ns": config.atm_outage_ns})
            gate = self.env.event()
            self._atm_gate = gate
            yield env.timeout(config.atm_outage_ns)
            self._atm_gate = None
            gate.succeed()

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total_injected(self) -> int:
        gray = self.gray
        gray_total = 0 if gray is None else (
            gray.limps + gray.slowdowns + gray.ramps
        )
        return (
            self.pe_transients
            + self.pe_wedges
            + self.pe_stuck
            + self.dma_stalls
            + self.dma_corruptions
            + self.link_flaps
            + self.pcie_flaps
            + self.nic_congestions
            + self.atm_outages
            + self.manager_outages
            + gray_total
        )

    def stats(self) -> Dict[str, float]:
        gray = self.gray
        return {
            "pe_transients": float(self.pe_transients),
            "pe_wedges": float(self.pe_wedges),
            "pe_stuck": float(self.pe_stuck),
            "dma_stalls": float(self.dma_stalls),
            "dma_corruptions": float(self.dma_corruptions),
            "link_flaps": float(self.link_flaps),
            "pcie_flaps": float(self.pcie_flaps),
            "nic_congestions": float(self.nic_congestions),
            "atm_outages": float(self.atm_outages),
            "manager_outages": float(self.manager_outages),
            "gray_limps": 0.0 if gray is None else float(gray.limps),
            "gray_slowdowns": 0.0 if gray is None else float(gray.slowdowns),
            "gray_ramps": 0.0 if gray is None else float(gray.ramps),
            "total_injected": float(self.total_injected()),
        }

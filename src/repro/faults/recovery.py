"""Recovery machinery: circuit breakers, backoff, and counters.

One :class:`RecoveryPolicy` lives on each orchestrator that runs with a
fault plane. It tracks per-accelerator health with rolling-window
circuit breakers (trace building routes around tripped instances),
computes jittered exponential backoff for step/TCP/DMA retries, and
accumulates the recovery-side counters that ``orchestrator.stats()``
and the obs gauges surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..sim import Environment, Stream
from .config import FaultConfig

__all__ = ["CircuitBreaker", "RecoveryPolicy", "RetryBudget"]


class RetryBudget:
    """Token bucket bounding the *sustained* retry rate of one service.

    Fixed per-attempt retry counts are the classic metastable-failure
    ingredient: every timed-out attempt re-offers work to an already
    saturated accelerator, so amplified load outlives the trigger. A
    budget caps aggregate retries instead — each retry draws one token,
    tokens refill at ``retry_budget_refill_per_s`` per simulated second
    up to the ``retry_budget_tokens`` burst cap, and when the bucket is
    empty the step degrades to the CPU *immediately* rather than
    re-queueing. Retry storms therefore self-quench: the budget spends
    itself against the trigger, and the fleet returns to baseline as
    soon as the trigger clears.

    A zero-size bucket (the default config) disables the budget —
    :meth:`allow` always grants, preserving the pre-budget bounded-retry
    behavior byte for byte.
    """

    __slots__ = ("capacity", "refill_per_ns", "tokens", "_last_ns",
                 "granted", "denied")

    def __init__(self, capacity: float, refill_per_s: float):
        self.capacity = capacity
        self.refill_per_ns = refill_per_s / 1e9
        self.tokens = capacity
        self._last_ns = 0.0
        self.granted = 0
        self.denied = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0.0

    def _refill(self, now_ns: float) -> None:
        elapsed = now_ns - self._last_ns
        self._last_ns = now_ns
        if elapsed > 0.0 and self.refill_per_ns > 0.0:
            self.tokens = min(
                self.capacity, self.tokens + elapsed * self.refill_per_ns
            )

    def allow(self, now_ns: float) -> bool:
        """Draw one token; False means the budget is exhausted."""
        if not self.enabled:
            return True
        self._refill(now_ns)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False

    def level(self, now_ns: float) -> float:
        """Current token count (for gauges; refills before reading)."""
        if not self.enabled:
            return 0.0
        self._refill(now_ns)
        return self.tokens


class CircuitBreaker:
    """Rolling-window failure tracker for one accelerator instance.

    Closed: requests flow. After ``breaker_failure_threshold`` failures
    inside ``breaker_window_ns`` the breaker opens: :meth:`allow`
    returns False until ``breaker_cooldown_ns`` has passed, after which
    the breaker is half-open — trial traffic is admitted, one success
    closes it, and a failed trial restarts the cooldown.
    """

    __slots__ = ("config", "failures", "opened_at")

    def __init__(self, config: FaultConfig):
        self.config = config
        self.failures: List[float] = []
        self.opened_at: Optional[float] = None

    @property
    def is_open(self) -> bool:
        return self.opened_at is not None

    def allow(self, now: float) -> bool:
        if self.opened_at is None:
            return True
        return now - self.opened_at >= self.config.breaker_cooldown_ns

    def record_failure(self, now: float) -> bool:
        """Register a failure; returns True when this trips the breaker."""
        window = self.config.breaker_window_ns
        self.failures = [t for t in self.failures if now - t <= window]
        self.failures.append(now)
        if self.opened_at is not None:
            if now - self.opened_at >= self.config.breaker_cooldown_ns:
                # Failed half-open trial: restart the cooldown.
                self.opened_at = now
                return True
            return False
        if len(self.failures) >= self.config.breaker_failure_threshold:
            self.opened_at = now
            return True
        return False

    def record_success(self) -> None:
        self.failures.clear()
        self.opened_at = None


class RecoveryPolicy:
    """Watchdog/retry/breaker state for one orchestrator."""

    def __init__(self, env: Environment, config: FaultConfig, stream: Stream):
        self.env = env
        self.config = config
        self.stream = stream
        self._breakers: Dict[int, CircuitBreaker] = {}
        #: Shared token bucket for every retry path (step, TCP re-wait,
        #: DMA re-issue). Zero-capacity (the default) always grants.
        self.budget = RetryBudget(
            config.retry_budget_tokens, config.retry_budget_refill_per_s
        )
        #: Optional :class:`repro.obs.TelemetryBus`; breaker trips and
        #: closes are published as ``RecoveryEvent``s.
        self.bus = None

        # Recovery counters.
        self.watchdog_timeouts = 0
        self.step_retries = 0
        self.breaker_trips = 0
        self.degraded_to_cpu = 0
        self.dma_retries = 0
        self.dma_fatal = 0
        self.budget_denials = 0

    # ------------------------------------------------------------------
    # Accelerator health
    # ------------------------------------------------------------------
    def breaker(self, accel) -> CircuitBreaker:
        key = id(accel)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(self.config)
            self._breakers[key] = breaker
        return breaker

    def pick(self, instances, now: float):
        """The least-occupied healthy instance, or None if all tripped."""
        healthy = [a for a in instances if self.breaker(a).allow(now)]
        if not healthy:
            return None
        return min(healthy, key=lambda a: a.input_occupancy)

    def record_failure(self, accel) -> None:
        breaker = self.breaker(accel)
        was_open = breaker.is_open
        if breaker.record_failure(self.env.now):
            self.breaker_trips += 1
            # A failed half-open trial restarts the cooldown but the
            # breaker never closed: publish only closed->open edges.
            if not was_open:
                self._publish("breaker-open", accel)

    def record_success(self, accel) -> None:
        breaker = self.breaker(accel)
        was_open = breaker.is_open
        breaker.record_success()
        if was_open:
            self._publish("breaker-close", accel)

    def _publish(self, kind_name: str, accel) -> None:
        if self.bus is not None:
            from ..obs.telemetry import RecoveryEvent

            self.bus.publish(
                RecoveryEvent(
                    t_ns=self.env.now,
                    kind_name=kind_name,
                    args={"accel": accel.kind.value},
                )
            )

    def open_breakers(self) -> int:
        return sum(1 for b in self._breakers.values() if b.is_open)

    # ------------------------------------------------------------------
    # Retry budget
    # ------------------------------------------------------------------
    def allow_retry(self, path: str) -> bool:
        """Draw one retry token for ``path`` (``step``/``tcp``/``dma``).

        Always True when no budget is configured. A denial is counted,
        published as a ``retry-budget-exhausted`` recovery event, and
        means the caller must degrade or fail *now* instead of
        re-offering load.
        """
        if self.budget.allow(self.env.now):
            return True
        self.budget_denials += 1
        if self.bus is not None:
            from ..obs.telemetry import RecoveryEvent

            self.bus.publish(
                RecoveryEvent(
                    t_ns=self.env.now,
                    kind_name="retry-budget-exhausted",
                    args={"path": path},
                )
            )
        return False

    # ------------------------------------------------------------------
    # Backoff
    # ------------------------------------------------------------------
    def backoff_ns(self, attempt: int) -> float:
        """Jittered exponential backoff before retry ``attempt`` (1-based)."""
        config = self.config
        base = config.backoff_base_ns * config.backoff_factor ** max(attempt - 1, 0)
        jitter = 1.0 + config.backoff_jitter * (2.0 * self.stream.random() - 1.0)
        return base * max(jitter, 0.0)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, float]:
        return {
            "watchdog_timeouts": float(self.watchdog_timeouts),
            "step_retries": float(self.step_retries),
            "breaker_trips": float(self.breaker_trips),
            "open_breakers": float(self.open_breakers()),
            "degraded_to_cpu": float(self.degraded_to_cpu),
            "dma_retries": float(self.dma_retries),
            "dma_fatal": float(self.dma_fatal),
            "budget_denials": float(self.budget_denials),
            "budget_tokens": self.budget.level(self.env.now),
        }

"""Hardware models: accelerators, dispatchers, DMA, NoC, chiplets, CPU."""

from .accelerator import Accelerator, QueuePolicy
from .atm import AtmFullError, AtmMemory
from .cpu import CorePool
from .dma import DmaPool
from .ensemble import ServerHardware
from .mesh import MeshTopology, PORTAL, build_chiplet_meshes
from .noc import CPU_ENDPOINT, MEMORY_ENDPOINT, Network
from .ops import AccelOp, QueueEntry
from .placement import (
    DEFAULT_HOP_MODELS,
    PLACEMENTS,
    HopModel,
    Placement,
    PlacementConfig,
    PlacementFabric,
)
from .params import (
    ACCEL_KINDS,
    DEFAULT_SPEEDUPS,
    GHZ,
    AcceleratorKind,
    AcceleratorParams,
    AtmParams,
    ChipletLayout,
    CpuParams,
    MachineParams,
    NocParams,
    PROCESSOR_GENERATIONS,
    ProcessorGeneration,
    TlbParams,
    chiplet_layout,
    cycles_to_ns,
)
from .power import AreaModel, EnergyModel, SERVER_MAX_POWER_W
from .tlb import Iommu, TlbModel

__all__ = [
    "ACCEL_KINDS",
    "AccelOp",
    "Accelerator",
    "AcceleratorKind",
    "AcceleratorParams",
    "AreaModel",
    "AtmFullError",
    "AtmMemory",
    "AtmParams",
    "CPU_ENDPOINT",
    "ChipletLayout",
    "CorePool",
    "CpuParams",
    "DEFAULT_HOP_MODELS",
    "DEFAULT_SPEEDUPS",
    "DmaPool",
    "EnergyModel",
    "GHZ",
    "HopModel",
    "Iommu",
    "MEMORY_ENDPOINT",
    "MeshTopology",
    "PORTAL",
    "build_chiplet_meshes",
    "MachineParams",
    "Network",
    "NocParams",
    "PLACEMENTS",
    "PROCESSOR_GENERATIONS",
    "Placement",
    "PlacementConfig",
    "PlacementFabric",
    "ProcessorGeneration",
    "QueueEntry",
    "QueuePolicy",
    "SERVER_MAX_POWER_W",
    "ServerHardware",
    "TlbModel",
    "TlbParams",
    "chiplet_layout",
    "cycles_to_ns",
]

"""The accelerator model: queues, input dispatcher, PEs, output queue.

Mirrors Section IV-A / Figure 6 of the paper:

* a 64-entry SRAM **input queue** with an **overflow area** in memory,
* an **input dispatcher** FSM that pairs ready entries with free PEs
  (FIFO by default; priority or deadline ordering per Section IV-C),
* 8 **PEs**, each with a scratchpad, executing non-preemptively at the
  accelerator's literature speedup over a CPU core,
* a 64-entry **output queue** into which PEs deposit results. Whoever
  orchestrates (the AccelFlow output dispatcher, a hardware manager, or
  a CPU core) consumes entries from there; the accelerator exposes a
  serialized ``output_dispatcher`` resource modelling that FSM.

The accelerator never knows about traces: it accepts
:class:`~repro.hw.ops.QueueEntry` items and triggers their ``done``
events. Chaining policy lives in :mod:`repro.orchestration`.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from ..sim import (
    Environment,
    PriorityItem,
    PriorityStore,
    Resource,
    Store,
    TimeWeightedValue,
)
from .ops import QueueEntry
from .params import AcceleratorKind, MachineParams
from .tlb import TlbModel

__all__ = ["Accelerator", "QueuePolicy"]


class QueuePolicy:
    """Input-queue ordering disciplines (Section IV-C / V.1)."""

    FIFO = "fifo"
    PRIORITY = "priority"
    EDF = "edf"

    ALL = (FIFO, PRIORITY, EDF)


class _ProcessingElement:
    """One PE: tracks the tenant whose state is in its scratchpad."""

    __slots__ = ("index", "last_tenant", "busy_ns", "ops")

    def __init__(self, index: int):
        self.index = index
        self.last_tenant: Optional[int] = None
        self.busy_ns = 0.0
        self.ops = 0


class Accelerator:
    """One accelerator instance (e.g. the TCP accelerator of a server)."""

    def __init__(
        self,
        env: Environment,
        kind: AcceleratorKind,
        params: MachineParams,
        tlb: TlbModel,
        policy: str = QueuePolicy.FIFO,
        tracer=None,
    ):
        if policy not in QueuePolicy.ALL:
            raise ValueError(f"unknown queue policy {policy!r}")
        self.env = env
        self.kind = kind
        self.params = params
        self.accel_params = params.accelerator
        self.speedup = params.speedup_of(kind)
        self.tlb = tlb
        self.policy = policy
        #: Optional :class:`repro.obs.SpanTracer`; queue-wait and PE
        #: execution spans are recorded for entries carrying a sampled
        #: request id in ``context["obs_rid"]``.
        self.tracer = tracer
        self.track = f"accel:{kind.value}"
        #: Optional :class:`repro.faults.FaultPlane`; installed by
        #: ``FaultPlane.attach``. When None (the default) no fault draws
        #: happen and execution is byte-identical to the fault-free model.
        self.fault_plane = None

        if policy == QueuePolicy.FIFO:
            self.input_queue: Store = Store(
                env, capacity=self.accel_params.input_queue_entries
            )
        else:
            self.input_queue = PriorityStore(
                env, capacity=self.accel_params.input_queue_entries
            )
        self.overflow: Store = Store(env, capacity=self.accel_params.overflow_entries)
        self.output_queue: Store = Store(
            env, capacity=self.accel_params.output_queue_entries
        )
        #: The output-dispatcher FSM: one entry processed at a time.
        self.output_dispatcher = Resource(env, capacity=1)

        self.pes: List[_ProcessingElement] = [
            _ProcessingElement(i) for i in range(self.accel_params.pes)
        ]
        self._free_pes: Store = Store(env)
        for pe in self.pes:
            self._free_pes.try_put(pe)
        self._seq = itertools.count()
        self._busy_pes = TimeWeightedValue(0.0, env.now)
        #: Optional process factory run by a PE after depositing its
        #: output and *before* freeing itself. Centralized orchestrators
        #: (RELIEF) install their job-retirement round trip here: the PE
        #: sits idle until the manager has processed the completion, the
        #: key throughput cost of centralized scheduling. The time spent
        #: is recorded in ``entry.context["retire_ns"]``.
        self.retire_hook = None

        # Statistics.
        self.ops_completed = 0
        self.ops_rejected = 0
        self.overflow_admissions = 0
        self.tenant_wipes = 0
        self.deadline_violations = 0
        self.queue_waits: List[float] = []
        self.busy_ns = 0.0

        env.process(self._input_dispatcher(), name=f"in-dispatch-{kind.value}")

    # -- admission -----------------------------------------------------------
    def try_enqueue(self, entry: QueueEntry) -> bool:
        """Admit ``entry`` into the input queue or its overflow area.

        Returns False when both are full, in which case the caller must
        fall back to CPU execution (Section IV-A, deadlock avoidance).
        """
        if self.input_queue.try_put(self._wrap(entry)):
            return True
        if self.overflow.try_put(entry):
            entry.from_overflow = True
            self.overflow_admissions += 1
            return True
        self.ops_rejected += 1
        return False

    @property
    def input_occupancy(self) -> int:
        return len(self.input_queue) + len(self.overflow)

    def _wrap(self, entry: QueueEntry):
        if self.policy == QueuePolicy.FIFO:
            return entry
        if self.policy == QueuePolicy.PRIORITY:
            key = (entry.priority, next(self._seq))
        else:  # EDF: earliest absolute deadline first; no-SLO entries last.
            deadline = entry.deadline_ns if entry.deadline_ns is not None else float("inf")
            key = (deadline, next(self._seq))
        return PriorityItem(key, entry)

    def _unwrap(self, item) -> QueueEntry:
        if self.policy == QueuePolicy.FIFO:
            return item
        return item.item

    # -- input dispatcher FSM -------------------------------------------------
    def _input_dispatcher(self):
        env = self.env
        # Queue handles are loop-invariant; hoisted so the per-entry
        # hot loop touches locals, not attribute chains.
        input_queue = self.input_queue
        overflow = self.overflow
        free_pes = self._free_pes
        while True:
            item = yield input_queue.get()
            entry = self._unwrap(item)
            # A slot freed up: promote one overflow entry into the queue
            # (the dispatcher follows the Overflow Pointer, Section V.1).
            if overflow.items and len(input_queue.items) < input_queue.capacity:
                spilled = overflow.try_get()
                input_queue.try_put(self._wrap(spilled))
            pe = yield free_pes.get()
            env.process(
                self._execute(pe, entry), name=f"{self.kind.value}-pe{pe.index}"
            )

    def _execute(self, pe: _ProcessingElement, entry: QueueEntry):
        env = self.env
        entry.dispatch_time = env.now
        self.queue_waits.append(entry.queue_wait_ns)
        obs_rid = None
        if self.tracer is not None:
            obs_rid = entry.context.get("obs_rid")
            if obs_rid is not None and entry.queue_wait_ns > 0:
                self.tracer.complete(
                    "queue-wait",
                    self.track,
                    entry.enqueue_time,
                    env.now,
                    rid=obs_rid,
                    cat="queue",
                    args={"overflow": entry.from_overflow},
                )
        if entry.deadline_ns is not None and env.now > entry.deadline_ns:
            self.deadline_violations += 1
        self._busy_pes.add(1.0, env.now)
        start = env.now
        try:
            # Move the entry's data into the PE scratchpad; spilled bytes
            # come from the memory hierarchy via the Memory Pointer.
            yield env.timeout(
                self.accel_params.scratchpad_transfer_ns(entry.op.data_in)
                + self.accel_params.memory_fetch_ns(entry.op.data_in)
            )
            if pe.last_tenant is not None and pe.last_tenant != entry.tenant:
                self.tenant_wipes += 1
                yield env.timeout(self.accel_params.scratchpad_wipe_ns)
            pe.last_tenant = entry.tenant
            yield env.process(self.tlb.translate())
            plane = self.fault_plane
            if plane is not None:
                # A wedged PE sits on the op before making progress; the
                # orchestrator-side watchdog decides whether to wait it
                # out or abandon the attempt and retry elsewhere.
                wedge_ns = plane.pe_wedge_ns(self)
                if wedge_ns > 0.0:
                    yield env.timeout(wedge_ns)
            service_ns = entry.op.accel_time_ns(self.speedup)
            if plane is not None:
                # Gray faults stretch service time without erroring: a
                # limping machine or a slowed instance serves every op,
                # just slower. 1.0 (the overwhelmingly common case)
                # leaves the timeout byte-identical.
                factor = plane.service_factor(self)
                if factor != 1.0:
                    service_ns *= factor
            yield env.timeout(service_ns)
            if plane is not None and plane.pe_transient(self):
                # Transient fault: the result is corrupt but the entry
                # still flows through the output queue; the recovery
                # layer inspects the flag and re-executes the step.
                entry.context["fault"] = "pe-transient"
            # Deposit the result into the output queue (blocks on a full
            # queue: backpressure reaches the PE, which is non-preemptible
            # but cannot retire).
            yield env.timeout(
                self.accel_params.scratchpad_transfer_ns(entry.op.data_out)
            )
            yield self.output_queue.put(entry)
            if self.retire_hook is not None:
                retire_start = env.now
                yield env.process(self.retire_hook(entry))
                entry.context["retire_ns"] = env.now - retire_start
        finally:
            elapsed = env.now - start
            pe.busy_ns += elapsed
            pe.ops += 1
            self.busy_ns += elapsed
            self._busy_pes.add(-1.0, env.now)
        entry.complete_time = env.now
        self.ops_completed += 1
        if obs_rid is not None:
            self.tracer.complete(
                "exec",
                self.track,
                entry.dispatch_time,
                env.now,
                rid=obs_rid,
                cat="pe",
                args={"pe": pe.index, "bytes_in": entry.op.data_in,
                      "bytes_out": entry.op.data_out},
            )
        self._free_pes.try_put(pe)
        entry.done.succeed(entry)

    def consume_output(self, entry: QueueEntry) -> bool:
        """Retire ``entry`` from the output queue.

        Called by whoever plays the output-dispatcher role once the
        entry's results have been moved onward. Frees the slot, letting
        a PE blocked on a full output queue deposit its result.
        """
        return self.output_queue.remove(entry)

    # -- statistics -------------------------------------------------------------
    @property
    def busy_pes(self) -> float:
        """Instantaneous number of busy PEs (for metrics sampling)."""
        return self._busy_pes.value

    def utilization(self) -> float:
        """Average fraction of PEs busy over the run."""
        return self._busy_pes.average(self.env.now) / len(self.pes)

    def mean_queue_wait_ns(self) -> float:
        if not self.queue_waits:
            return 0.0
        return sum(self.queue_waits) / len(self.queue_waits)

    def stats(self) -> Dict[str, float]:
        return {
            "ops_completed": float(self.ops_completed),
            "ops_rejected": float(self.ops_rejected),
            "overflow_admissions": float(self.overflow_admissions),
            "tenant_wipes": float(self.tenant_wipes),
            "deadline_violations": float(self.deadline_violations),
            "utilization": self.utilization(),
            "mean_queue_wait_ns": self.mean_queue_wait_ns(),
            "busy_ns": self.busy_ns,
        }

"""Accelerator Trace Memory (ATM).

A special on-chip SRAM where CPU cores deposit traces ahead of time and
from which output dispatchers fetch follow-on traces without CPU
involvement (Section IV-A). Addresses are opaque integers handed out by
:meth:`AtmMemory.store`.
"""

from __future__ import annotations

from typing import Any, Dict

from ..sim import Environment
from .params import AtmParams

__all__ = ["AtmMemory", "AtmFullError"]


class AtmFullError(Exception):
    """The ATM has no free slots for a new trace."""


class AtmMemory:
    """On-chip trace store with fixed access latencies."""

    def __init__(self, env: Environment, params: AtmParams = None):
        self.env = env
        self.params = params or AtmParams()
        self._slots: Dict[int, Any] = {}
        self._next_address = 1
        self.reads = 0
        self.writes = 0
        #: Optional :class:`repro.faults.FaultPlane` (None = fault-free):
        #: reads issued during an ATM outage wait for the SRAM to return.
        self.fault_plane = None

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def capacity(self) -> int:
        return self.params.capacity_traces

    def store(self, trace: Any) -> int:
        """Instantly allocate a slot for ``trace`` and return its address.

        The (small) write latency is paid by the storing core through
        :meth:`write_latency_ns`; allocation itself is bookkeeping.
        """
        if len(self._slots) >= self.capacity:
            raise AtmFullError(f"ATM full ({self.capacity} traces)")
        address = self._next_address
        self._next_address += 1
        self._slots[address] = trace
        self.writes += 1
        return address

    def write_latency_ns(self) -> float:
        return self.params.write_latency_ns

    def peek(self, address: int) -> Any:
        """Zero-time lookup (for assertions/tests)."""
        return self._slots[address]

    def read(self, address: int):
        """Process: fetch the trace at ``address`` paying read latency."""
        if address not in self._slots:
            raise KeyError(f"no trace at ATM address {address}")
        if self.fault_plane is not None:
            yield from self.fault_plane.atm_wait()
        yield self.env.timeout(self.params.read_latency_ns)
        self.reads += 1
        return self._slots[address]

    def free(self, address: int) -> None:
        """Release a slot once its trace can no longer be referenced."""
        self._slots.pop(address, None)

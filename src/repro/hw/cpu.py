"""CPU core pool.

Cores execute application logic, software tax operations (in the
non-accelerated and fallback paths), orchestration work (CPU-Centric),
and receive completion notifications. The pool tracks busy time for
utilization and energy accounting.
"""

from __future__ import annotations

from typing import Dict

from ..sim import Environment, PriorityResource, TimeWeightedValue
from .params import CpuParams

__all__ = ["CorePool"]


class CorePool:
    """The server's cores as a shared pool.

    Requests with lower ``priority`` values win the queue; interrupt
    handling uses a high-priority claim so that device completions are
    not stuck behind long application-logic segments, mimicking
    preemption at a coarse grain.
    """

    INTERRUPT_PRIORITY = 0
    NORMAL_PRIORITY = 10

    def __init__(self, env: Environment, params: CpuParams):
        self.env = env
        self.params = params
        self._cores = PriorityResource(env, capacity=params.cores)
        self._busy = TimeWeightedValue(0.0, env.now)
        self.busy_ns = 0.0
        self.executions = 0
        self.interrupts = 0

    @property
    def cores(self) -> int:
        return self.params.cores

    @property
    def in_use(self) -> int:
        return self._cores.count

    @property
    def queue_length(self) -> int:
        return len(self._cores.queue)

    def execute(self, duration_ns: float, priority: int = None):
        """Process: hold one core for ``duration_ns``."""
        if duration_ns < 0:
            raise ValueError(f"negative duration {duration_ns}")
        if priority is None:
            priority = self.NORMAL_PRIORITY
        env = self.env
        with self._cores.request(priority=priority) as req:
            yield req
            start = env.now
            self._busy.add(1.0, start)
            try:
                yield env.timeout(duration_ns)
            finally:
                self._busy.add(-1.0, env.now)
                self.busy_ns += env.now - start
        self.executions += 1

    def handle_interrupt(self, duration_ns: float = None):
        """Process: service a device interrupt on some core."""
        if duration_ns is None:
            duration_ns = self.params.interrupt_ns
        self.interrupts += 1
        yield self.env.process(
            self.execute(duration_ns, priority=self.INTERRUPT_PRIORITY)
        )

    def notification_ns(self) -> float:
        """Cost for an accelerator to notify a core (user-level, no IRQ)."""
        return self.params.notification_ns()

    def utilization(self) -> float:
        """Average fraction of cores busy over the run."""
        return self._busy.average(self.env.now) / self.cores

    def stats(self) -> Dict[str, float]:
        return {
            "cores": float(self.cores),
            "utilization": self.utilization(),
            "busy_ns": self.busy_ns,
            "executions": float(self.executions),
            "interrupts": float(self.interrupts),
        }

"""A-DMA engines: the shared pool that moves queue entries around.

AccelFlow output dispatchers (and cores submitting payloads) grab a free
engine from this pool, which then drives the transfer over the
:class:`~repro.hw.noc.Network`. The pool size (10 in the paper's Table
III) bounds the number of concurrent inter-accelerator moves.
"""

from __future__ import annotations

from typing import Dict

from ..sim import Environment, Resource, TimeWeightedValue
from .noc import Endpoint, Network

__all__ = ["DmaPool"]


class DmaPool:
    """Pool of A-DMA engines shared by all accelerators of a server."""

    #: Fixed cost of programming an engine with a descriptor.
    PROGRAM_NS = 10.0

    def __init__(
        self, env: Environment, network: Network, engines: int = 10, tracer=None
    ):
        if engines <= 0:
            raise ValueError(f"engines must be positive, got {engines}")
        self.env = env
        self.network = network
        self.engines = engines
        self._pool = Resource(env, capacity=engines)
        self.transfers = 0
        self.bytes_moved = 0
        self._busy = TimeWeightedValue(0.0, env.now)
        self._busy_ns = 0.0
        #: Optional :class:`repro.obs.SpanTracer`; transfers on behalf
        #: of a sampled request (``obs_rid`` passed) record "dma" spans.
        self.tracer = tracer
        #: Optional :class:`repro.faults.FaultPlane` (None = fault-free).
        self.fault_plane = None

    @property
    def in_use(self) -> int:
        return self._pool.count

    def transfer(self, src: Endpoint, dst: Endpoint, nbytes: int, obs_rid=None):
        """Process: move ``nbytes`` using one engine (waits if all busy).

        Returns True on success, False when the fault plane corrupted
        the payload (callers that care re-issue the transfer; callers
        that ignore the value model undetected corruption).
        """
        env = self.env
        requested = env.now
        corrupted = False
        with self._pool.request() as req:
            yield req
            start = env.now
            self._busy.add(1.0, start)
            try:
                plane = self.fault_plane
                if plane is not None:
                    stall_ns = plane.dma_stall_ns()
                    if stall_ns > 0.0:
                        yield env.timeout(stall_ns)
                    corrupted = plane.dma_corrupts()
                yield env.timeout(self.PROGRAM_NS)
                yield env.process(self.network.transfer(src, dst, nbytes))
            finally:
                self._busy.add(-1.0, env.now)
                self._busy_ns += env.now - start
        self.transfers += 1
        self.bytes_moved += nbytes
        if self.tracer is not None and obs_rid is not None:
            src_name = getattr(src, "value", str(src))
            dst_name = getattr(dst, "value", str(dst))
            self.tracer.complete(
                f"dma {src_name}->{dst_name}",
                "dma",
                requested,
                env.now,
                rid=obs_rid,
                cat="dma",
                args={"bytes": nbytes, "engine_wait_ns": start - requested},
            )
        return not corrupted

    def estimate_ns(self, src: Endpoint, dst: Endpoint, nbytes: int) -> float:
        return self.PROGRAM_NS + self.network.estimate_ns(src, dst, nbytes)

    def utilization(self) -> float:
        """Average fraction of engines busy over the run."""
        return self._busy.average(self.env.now) / self.engines

    def stats(self) -> Dict[str, float]:
        return {
            "transfers": float(self.transfers),
            "bytes_moved": float(self.bytes_moved),
            "utilization": self.utilization(),
            "busy_ns": self._busy_ns,
        }

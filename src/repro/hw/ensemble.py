"""Assembles the full server hardware: cores + accelerator ensemble.

:class:`ServerHardware` instantiates, from one :class:`MachineParams`,
the core pool, the on-package network for the configured chiplet layout,
the shared A-DMA pool, the ATM, one IOMMU per chiplet, and one
accelerator of each kind with its TLB. Orchestrators operate on this
object; workloads never touch it directly.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import Environment, RandomStreams
from .accelerator import Accelerator, QueuePolicy
from .atm import AtmMemory
from .cpu import CorePool
from .dma import DmaPool
from .noc import Network
from .params import ACCEL_KINDS, AcceleratorKind, MachineParams
from .tlb import Iommu, TlbModel

__all__ = ["ServerHardware"]


class ServerHardware:
    """All hardware of one simulated server."""

    def __init__(
        self,
        env: Environment,
        params: MachineParams,
        streams: RandomStreams,
        queue_policy: str = QueuePolicy.FIFO,
        tracer=None,
    ):
        self.env = env
        self.params = params
        self.streams = streams
        self.queue_policy = queue_policy
        self.tracer = tracer

        self.cores = CorePool(env, params.cpu)
        self.network = Network(env, params)
        #: Placement fabric (:mod:`repro.hw.placement`), or None when
        #: every accelerator is on-package — then the DMA pool drives
        #: the NoC directly, exactly as in the placement-unaware model.
        self.fabric = None
        transport = self.network
        if params.placement is not None and params.placement.active:
            from .placement import PlacementFabric

            self.fabric = PlacementFabric(
                env, params.placement, self.network, tracer=tracer
            )
            transport = self.fabric
        self.dma = DmaPool(env, transport, engines=params.dma_engines,
                           tracer=tracer)
        self.atm = AtmMemory(env, params.atm)

        self.iommus: Dict[int, Iommu] = {
            chiplet: Iommu(env, params.tlb.walk_latency_ns)
            for chiplet in range(params.layout.chiplet_count)
        }
        self.instances: Dict[AcceleratorKind, List[Accelerator]] = {}
        for kind in ACCEL_KINDS:
            chiplet = params.layout.chiplet_of(kind)
            kind_instances = []
            for index in range(params.accelerator.instances):
                tlb = TlbModel(
                    env,
                    params.tlb,
                    self.iommus[chiplet],
                    streams.stream(f"tlb/{kind.value}/{index}"),
                )
                kind_instances.append(
                    Accelerator(env, kind, params, tlb, policy=queue_policy,
                                tracer=tracer)
                )
            self.instances[kind] = kind_instances

    @property
    def accelerators(self) -> Dict[AcceleratorKind, Accelerator]:
        """First instance of each kind (the common single-instance view)."""
        return {kind: instances[0] for kind, instances in self.instances.items()}

    def accel(self, kind: AcceleratorKind) -> Accelerator:
        """The least-occupied instance of ``kind`` (Enqueue retry target)."""
        return min(self.instances[kind], key=lambda a: a.input_occupancy)

    def all_accelerators(self) -> List[Accelerator]:
        return [a for instances in self.instances.values() for a in instances]

    # -- aggregate statistics -------------------------------------------------
    def queue_depths(self) -> Dict[AcceleratorKind, int]:
        """Instantaneous input occupancy (queue + overflow) per kind."""
        return {
            kind: sum(a.input_occupancy for a in instances)
            for kind, instances in self.instances.items()
        }

    def busy_pe_fraction(self, kind: AcceleratorKind) -> float:
        """Instantaneous fraction of this kind's PEs that are busy."""
        instances = self.instances[kind]
        total = sum(len(a.pes) for a in instances)
        busy = sum(a.busy_pes for a in instances)
        return busy / total if total else 0.0

    def accelerator_utilizations(self) -> Dict[AcceleratorKind, float]:
        return {
            kind: sum(a.utilization() for a in instances) / len(instances)
            for kind, instances in self.instances.items()
        }

    def total_ops_completed(self) -> int:
        return sum(acc.ops_completed for acc in self.all_accelerators())

    def total_fallbacks(self) -> int:
        return sum(acc.ops_rejected for acc in self.all_accelerators())

    def total_overflow_admissions(self) -> int:
        return sum(acc.overflow_admissions for acc in self.all_accelerators())

    def tlb_stats(self) -> Dict[str, float]:
        accesses = misses = faults = 0.0
        for acc in self.all_accelerators():
            stats = acc.tlb.stats()
            accesses += stats["accesses"]
            misses += stats["misses"]
            faults += stats["page_faults"]
        return {
            "accesses": accesses,
            "misses": misses,
            "page_faults": faults,
            "miss_rate": (misses / accesses) if accesses else 0.0,
        }

    def stats(self) -> Dict[str, object]:
        return {
            "cores": self.cores.stats(),
            "dma": self.dma.stats(),
            # The fabric's stats embed the NoC's plus per-placement hop
            # counters, so the report shape only grows when placements
            # are actually in play.
            "network": (
                self.network.stats() if self.fabric is None
                else self.fabric.stats()
            ),
            "tlb": self.tlb_stats(),
            "accelerators": {
                kind.value: self._kind_stats(instances)
                for kind, instances in self.instances.items()
            },
        }

    @staticmethod
    def _kind_stats(instances: List[Accelerator]) -> Dict[str, float]:
        """Aggregate stats across the instances of one kind."""
        merged: Dict[str, float] = {}
        for acc in instances:
            for key, value in acc.stats().items():
                merged[key] = merged.get(key, 0.0) + value
        merged["utilization"] /= len(instances)
        merged["mean_queue_wait_ns"] /= len(instances)
        merged["instances"] = float(len(instances))
        return merged

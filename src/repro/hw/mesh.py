"""Coordinate-level mesh topology (opt-in NoC fidelity).

The default network model uses the average hop count of Table III's 2D
mesh. This module places every agent of a chiplet on an actual grid and
routes XY, so each source/destination pair pays its true Manhattan
distance — end-to-end latencies then depend on *which* accelerators talk
(e.g. Ser -> TCP vs Ser -> Encr), as they would on silicon.

Enable with ``NocParams(detailed_mesh=True)``; the placement puts the
mesh stop of the chiplet's external link at the grid centre, and
accelerators around it in enum order, which keeps the average distance
close to the default model's ``mesh_avg_hops``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from .params import AcceleratorKind, ChipletLayout

__all__ = ["MeshTopology", "PORTAL"]

#: The mesh stop wired to the chiplet's external link (and, on chiplet
#: 0, to the core complex / memory controllers).
PORTAL = "portal"

Coordinate = Tuple[int, int]


class MeshTopology:
    """Grid placement and XY-routing distances for one chiplet."""

    def __init__(self, members: List):
        self.members = list(members)
        side = max(1, math.ceil(math.sqrt(len(members) + 1)))
        self.side = side
        self._coords: Dict[object, Coordinate] = {}
        centre = (side // 2, side // 2)
        self._coords[PORTAL] = centre
        spots = [
            (x, y)
            for y in range(side)
            for x in range(side)
            if (x, y) != centre
        ]
        for member, spot in zip(self.members, spots):
            self._coords[member] = spot
        if len(self._coords) < len(members) + 1:
            raise ValueError(
                f"grid {side}x{side} cannot place {len(members)} members"
            )

    def coordinate_of(self, member) -> Coordinate:
        try:
            return self._coords[member]
        except KeyError:
            raise KeyError(f"{member!r} is not on this mesh") from None

    def hops(self, src, dst) -> int:
        """XY-routed Manhattan distance between two members."""
        sx, sy = self.coordinate_of(src)
        dx, dy = self.coordinate_of(dst)
        return abs(sx - dx) + abs(sy - dy)

    def average_hops(self) -> float:
        """Mean pairwise distance over distinct member pairs."""
        members = list(self._coords)
        total = 0
        pairs = 0
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                total += self.hops(a, b)
                pairs += 1
        return total / pairs if pairs else 0.0


def build_chiplet_meshes(layout: ChipletLayout) -> Dict[int, MeshTopology]:
    """One mesh per chiplet, populated with its accelerators."""
    per_chiplet: Dict[int, List[AcceleratorKind]] = {}
    for kind in AcceleratorKind:
        per_chiplet.setdefault(layout.chiplet_of(kind), []).append(kind)
    for chiplet in range(layout.chiplet_count):
        per_chiplet.setdefault(chiplet, [])
    return {
        chiplet: MeshTopology(sorted(members, key=lambda k: k.value))
        for chiplet, members in per_chiplet.items()
    }

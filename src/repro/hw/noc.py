"""On-package interconnect model: intra-chiplet meshes + inter-chiplet links.

Transfers between two agents (accelerators, the CPU/core complex, or
memory) pay:

* mesh hop latency and flit serialization on the source chiplet fabric,
* if the endpoints sit on different chiplets: the inter-chiplet link
  latency plus serialization at the (high) inter-chiplet bandwidth, with
  contention on the shared link between that chiplet pair,
* mesh latency on the destination chiplet.

Fabric contention is modeled per chiplet as a bounded number of parallel
in-flight transfers (``NocParams.mesh_parallelism``).
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..sim import Environment, Resource, TimeWeightedValue
from .params import AcceleratorKind, ChipletLayout, MachineParams, NocParams

__all__ = ["Network", "Endpoint", "CPU_ENDPOINT", "MEMORY_ENDPOINT"]

#: The CPU/core complex and memory controllers live on chiplet 0 together
#: with the LdB accelerator (Figure 6).
CPU_ENDPOINT = "cpu"
MEMORY_ENDPOINT = "memory"

Endpoint = Union[AcceleratorKind, str]


class Network:
    """The on-package network of one server."""

    def __init__(self, env: Environment, params: MachineParams):
        self.env = env
        self.params = params
        self.noc: NocParams = params.noc
        self.layout: ChipletLayout = params.layout
        self.ghz = params.cpu.ghz
        n_chiplets = self.layout.chiplet_count
        self._fabrics = [
            Resource(env, capacity=self.noc.mesh_parallelism) for _ in range(n_chiplets)
        ]
        self._links: Dict[Tuple[int, int], Resource] = {}
        for a in range(n_chiplets):
            for b in range(a + 1, n_chiplets):
                self._links[(a, b)] = Resource(env, capacity=2)
        self.bytes_moved = 0
        self.inter_chiplet_transfers = 0
        self.intra_chiplet_transfers = 0
        self._busy = TimeWeightedValue(0.0, env.now)
        #: Optional :class:`repro.faults.FaultPlane` (None = fault-free):
        #: supplies link-down gates and the degradation factor for
        #: inter-chiplet legs.
        self.fault_plane = None
        self._meshes = None
        if self.noc.detailed_mesh:
            from .mesh import build_chiplet_meshes

            self._meshes = build_chiplet_meshes(self.layout)

    # -- topology helpers ---------------------------------------------------
    def chiplet_of(self, endpoint: Endpoint) -> int:
        if endpoint in (CPU_ENDPOINT, MEMORY_ENDPOINT):
            return 0
        return self.layout.chiplet_of(endpoint)

    def crosses_chiplets(self, src: Endpoint, dst: Endpoint) -> bool:
        return self.chiplet_of(src) != self.chiplet_of(dst)

    def _link(self, a: int, b: int) -> Resource:
        return self._links[(a, b) if a < b else (b, a)]

    def _hops(self, chiplet: int, endpoint: Endpoint) -> float:
        """Hop count from ``endpoint`` to the chiplet's portal stop."""
        if self._meshes is None:
            return self.noc.mesh_avg_hops
        from .mesh import PORTAL

        mesh = self._meshes[chiplet]
        member = PORTAL if endpoint in (CPU_ENDPOINT, MEMORY_ENDPOINT) else endpoint
        return float(mesh.hops(member, PORTAL)) or 1.0

    def _pair_hops(self, src: Endpoint, dst: Endpoint) -> float:
        """Same-chiplet hop count between two endpoints."""
        if self._meshes is None:
            return self.noc.mesh_avg_hops
        from .mesh import PORTAL

        chiplet = self.chiplet_of(src)
        mesh = self._meshes[chiplet]
        a = PORTAL if src in (CPU_ENDPOINT, MEMORY_ENDPOINT) else src
        b = PORTAL if dst in (CPU_ENDPOINT, MEMORY_ENDPOINT) else dst
        return float(mesh.hops(a, b)) or 1.0

    # -- timing -------------------------------------------------------------
    def estimate_ns(self, src: Endpoint, dst: Endpoint, nbytes: int) -> float:
        """Uncontended transfer time (used for admission heuristics)."""
        src_chip = self.chiplet_of(src)
        dst_chip = self.chiplet_of(dst)
        if src_chip == dst_chip:
            hops = self._pair_hops(src, dst)
            return (
                self.noc.mesh_latency_ns(hops, self.ghz)
                + self.noc.mesh_serialization_ns(nbytes, self.ghz)
            )
        time_ns = self.noc.mesh_latency_ns(self._hops(src_chip, src), self.ghz)
        time_ns += self.noc.mesh_serialization_ns(nbytes, self.ghz)
        time_ns += self.noc.inter_chiplet_latency_ns(self.ghz)
        time_ns += self.noc.inter_chiplet_serialization_ns(nbytes)
        time_ns += self.noc.mesh_latency_ns(self._hops(dst_chip, dst), self.ghz)
        return time_ns

    def transfer(self, src: Endpoint, dst: Endpoint, nbytes: int):
        """Process: move ``nbytes`` from ``src`` to ``dst`` with contention."""
        env = self.env
        src_chip = self.chiplet_of(src)
        dst_chip = self.chiplet_of(dst)
        self.bytes_moved += nbytes
        self._busy.add(1.0, env.now)
        try:
            same_chiplet = src_chip == dst_chip
            src_hops = (
                self._pair_hops(src, dst) if same_chiplet
                else self._hops(src_chip, src)
            )
            with self._fabrics[src_chip].request() as fabric_req:
                yield fabric_req
                yield env.timeout(
                    self.noc.mesh_latency_ns(src_hops, self.ghz)
                    + self.noc.mesh_serialization_ns(nbytes, self.ghz)
                )
            if same_chiplet:
                self.intra_chiplet_transfers += 1
                return
            self.inter_chiplet_transfers += 1
            plane = self.fault_plane
            if plane is not None:
                # Flapped link: wait until it comes back before competing
                # for it; degraded links stretch the whole leg.
                yield from plane.link_wait(src_chip, dst_chip)
            with self._link(src_chip, dst_chip).request() as link_req:
                yield link_req
                leg_ns = (
                    self.noc.inter_chiplet_latency_ns(self.ghz)
                    + self.noc.inter_chiplet_serialization_ns(nbytes)
                )
                if plane is not None:
                    leg_ns *= plane.link_factor()
                yield env.timeout(leg_ns)
            with self._fabrics[dst_chip].request() as fabric_req:
                yield fabric_req
                yield env.timeout(
                    self.noc.mesh_latency_ns(self._hops(dst_chip, dst), self.ghz)
                )
        finally:
            self._busy.add(-1.0, env.now)

    # -- statistics -----------------------------------------------------------
    def average_in_flight(self) -> float:
        return self._busy.average(self.env.now)

    def stats(self) -> Dict[str, float]:
        return {
            "bytes_moved": float(self.bytes_moved),
            "intra_chiplet_transfers": float(self.intra_chiplet_transfers),
            "inter_chiplet_transfers": float(self.inter_chiplet_transfers),
            "average_in_flight": self.average_in_flight(),
        }

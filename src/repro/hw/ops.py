"""Work items that flow through accelerators.

An :class:`AccelOp` describes one fine-grained tax operation: which
accelerator kind runs it, how long a CPU core would take in software
(the accelerator divides this by its speedup, per the paper's modeling
methodology, Section VI), and the input/output payload sizes.

A :class:`QueueEntry` is the hardware queue entry wrapping an op while
it sits in an accelerator: tenant, deadlines, trace context, timestamps
and the completion event the rest of the system waits on.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Optional

from ..sim import Environment, Event
from .params import AcceleratorKind

__all__ = ["AccelOp", "QueueEntry"]

_entry_ids = itertools.count()


class AccelOp:
    """One accelerator operation."""

    __slots__ = ("kind", "cpu_time_ns", "data_in", "data_out")

    def __init__(
        self,
        kind: AcceleratorKind,
        cpu_time_ns: float,
        data_in: int,
        data_out: int,
    ):
        if cpu_time_ns < 0:
            raise ValueError(f"negative cpu_time_ns {cpu_time_ns}")
        if data_in < 0 or data_out < 0:
            raise ValueError("payload sizes must be non-negative")
        self.kind = kind
        self.cpu_time_ns = cpu_time_ns
        self.data_in = data_in
        self.data_out = data_out

    def accel_time_ns(self, speedup: float) -> float:
        """Compute time on the accelerator, given its speedup over a core."""
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        return self.cpu_time_ns / speedup

    def __repr__(self) -> str:
        return (
            f"AccelOp({self.kind.value}, cpu={self.cpu_time_ns:.0f}ns, "
            f"in={self.data_in}B, out={self.data_out}B)"
        )


class QueueEntry:
    """An occupied input/output queue entry of an accelerator."""

    __slots__ = (
        "entry_id",
        "op",
        "tenant",
        "priority",
        "deadline_ns",
        "enqueue_time",
        "dispatch_time",
        "complete_time",
        "done",
        "context",
        "from_overflow",
    )

    def __init__(
        self,
        env: Environment,
        op: AccelOp,
        tenant: int = 0,
        priority: int = 0,
        deadline_ns: Optional[float] = None,
        context: Optional[Dict[str, Any]] = None,
    ):
        self.entry_id = next(_entry_ids)
        self.op = op
        self.tenant = tenant
        self.priority = priority
        #: Absolute soft deadline for this acceleration step (Section IV-C),
        #: or None if the request carries no SLO.
        self.deadline_ns = deadline_ns
        self.enqueue_time = env.now
        self.dispatch_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        #: Triggered (with this entry) when the PE has deposited its output.
        self.done: Event = env.event()
        #: Free-form carrier for orchestrator state (trace position etc.).
        self.context = context if context is not None else {}
        self.from_overflow = False

    @property
    def queue_wait_ns(self) -> float:
        if self.dispatch_time is None:
            raise ValueError("entry has not been dispatched yet")
        return self.dispatch_time - self.enqueue_time

    @property
    def service_ns(self) -> float:
        if self.complete_time is None or self.dispatch_time is None:
            raise ValueError("entry has not completed yet")
        return self.complete_time - self.dispatch_time

    def slack_ns(self, now: float) -> float:
        """Remaining slack to the deadline (inf when no SLO)."""
        if self.deadline_ns is None:
            return float("inf")
        return self.deadline_ns - now

    def __repr__(self) -> str:
        return f"QueueEntry(#{self.entry_id}, {self.op!r}, tenant={self.tenant})"

"""Architectural parameters (paper Table III) and processor generations.

All times inside the simulator are nanoseconds. The helper
:func:`cycles_to_ns` converts cycle counts at the modeled clock.

The free constants here follow the paper wherever it gives a number
(queue depths, PE counts, DMA engines, NoC latencies, notification cost,
accelerator speedups) and are otherwise calibrated in
``repro.workloads.calibration``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (placement
    from .placement import PlacementConfig  # imports AcceleratorKind)

__all__ = [
    "AcceleratorKind",
    "ACCEL_KINDS",
    "AcceleratorParams",
    "NocParams",
    "CpuParams",
    "TlbParams",
    "AtmParams",
    "MachineParams",
    "ProcessorGeneration",
    "PROCESSOR_GENERATIONS",
    "ChipletLayout",
    "chiplet_layout",
    "DEFAULT_SPEEDUPS",
    "cycles_to_ns",
    "GHZ",
]

GHZ = 2.4  # paper: 36 cores at 2.4 GHz


def cycles_to_ns(cycles: float, ghz: float = GHZ) -> float:
    """Convert a cycle count at ``ghz`` to nanoseconds."""
    return cycles / ghz


class AcceleratorKind(enum.Enum):
    """The nine datacenter-tax accelerators of the paper (Section III)."""

    TCP = "TCP"
    ENCR = "Encr"
    DECR = "Decr"
    RPC = "RPC"
    SER = "Ser"
    DSER = "Dser"
    CMP = "Cmp"
    DCMP = "Dcmp"
    LDB = "LdB"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


ACCEL_KINDS: Tuple[AcceleratorKind, ...] = tuple(AcceleratorKind)

#: Average speedup of each accelerator over a CPU core, from the
#: literature as cited by the paper (Section VI): F4T 3.5, QTLS 6.6,
#: Cerebros 20.5, ProtoAcc 3.8, CDPU 4.1 (decompress) / 15.2 (compress),
#: Intel DLB 8.1.
DEFAULT_SPEEDUPS: Dict[AcceleratorKind, float] = {
    AcceleratorKind.TCP: 3.5,
    AcceleratorKind.ENCR: 6.6,
    AcceleratorKind.DECR: 6.6,
    AcceleratorKind.RPC: 20.5,
    AcceleratorKind.SER: 3.8,
    AcceleratorKind.DSER: 3.8,
    AcceleratorKind.CMP: 15.2,
    AcceleratorKind.DCMP: 4.1,
    AcceleratorKind.LDB: 8.1,
}


@dataclass(frozen=True)
class AcceleratorParams:
    """Per-accelerator hardware configuration (paper Table III)."""

    pes: int = 8
    #: Accelerator instances of each kind on the package ("one or more
    #: instances of all the accelerators", Section IV-A). A core whose
    #: Enqueue fails retries with another instance of the same type.
    instances: int = 1
    input_queue_entries: int = 64
    output_queue_entries: int = 64
    scratchpad_kb: int = 64
    #: Inline data capacity of a queue entry; larger payloads spill to a
    #: software buffer reached through the entry's Memory Pointer.
    inline_data_bytes: int = 2048
    #: Queue -> scratchpad transfer: 10 ns latency, 100 GB/s bandwidth.
    queue_to_scratchpad_latency_ns: float = 10.0
    queue_to_scratchpad_gbps: float = 100.0
    #: Entries the per-queue memory overflow area can hold before trace
    #: execution must fall back to the CPU.
    overflow_entries: int = 64
    #: Cost of wiping PE state + scratchpad between tenants (ns).
    scratchpad_wipe_ns: float = 200.0
    #: Fetching the spilled part of a large (>2 KB) payload through the
    #: entry's Memory Pointer: LLC round trip plus streaming bandwidth.
    memory_fetch_latency_ns: float = 15.0
    memory_fetch_gbps: float = 50.0

    def scratchpad_transfer_ns(self, nbytes: int) -> float:
        """Time to move ``nbytes`` between a queue entry and a scratchpad."""
        inline = min(nbytes, self.inline_data_bytes)
        return self.queue_to_scratchpad_latency_ns + inline / self.queue_to_scratchpad_gbps

    def memory_fetch_ns(self, nbytes: int) -> float:
        """Time to pull the spilled part of a payload from the memory
        hierarchy via the Memory Pointer (zero if it fits inline)."""
        extra = max(0, nbytes - self.inline_data_bytes)
        if extra == 0:
            return 0.0
        return self.memory_fetch_latency_ns + extra / self.memory_fetch_gbps


@dataclass(frozen=True)
class NocParams:
    """On-package interconnect parameters (paper Table III)."""

    #: Intra-chiplet 2D mesh: 3 cycles per hop, 16-byte links.
    mesh_hop_cycles: float = 3.0
    mesh_link_bytes: int = 16
    #: Average hop count between two agents on the same chiplet mesh.
    mesh_avg_hops: float = 3.0
    #: Parallel transfers the mesh fabric sustains per chiplet.
    mesh_parallelism: int = 8
    #: Use the coordinate-level mesh (per-pair XY-routed hop counts,
    #: :mod:`repro.hw.mesh`) instead of the average-hop approximation.
    detailed_mesh: bool = False
    #: Inter-chiplet: fully connected, 60 cycles.
    inter_chiplet_cycles: float = 60.0
    #: Aggregate inter-chiplet link bandwidth (GB/s). Table III says
    #: "1 Gb/s/link", which would make a 2 KB transfer take 16 us and
    #: dominate everything; we use a high aggregate figure (see DESIGN.md).
    inter_chiplet_gbps: float = 100.0

    def mesh_latency_ns(self, hops: float, ghz: float = GHZ) -> float:
        return cycles_to_ns(self.mesh_hop_cycles * hops, ghz)

    def mesh_serialization_ns(self, nbytes: int, ghz: float = GHZ) -> float:
        """Flit serialization over a 16-byte link at one flit per cycle."""
        flits = max(1, (nbytes + self.mesh_link_bytes - 1) // self.mesh_link_bytes)
        return cycles_to_ns(float(flits), ghz)

    def inter_chiplet_latency_ns(self, ghz: float = GHZ) -> float:
        return cycles_to_ns(self.inter_chiplet_cycles, ghz)

    def inter_chiplet_serialization_ns(self, nbytes: int) -> float:
        return nbytes / self.inter_chiplet_gbps


@dataclass(frozen=True)
class CpuParams:
    """Core-side parameters."""

    cores: int = 36
    ghz: float = GHZ
    #: Accelerator -> core user-level notification (80 cycles average).
    notification_cycles: float = 80.0
    #: Cost on a core of taking a device interrupt and running the
    #: completion handler (CPU-Centric orchestration, exceptions).
    interrupt_ns: float = 5000.0
    #: Cost of a user-mode Enqueue instruction plus programming the A-DMA
    #: engine that deposits the payload in the accelerator's input queue.
    enqueue_ns: float = 250.0
    #: Retries of Enqueue before the core gives up and runs the trace in
    #: software (starvation avoidance, Section IV-A).
    enqueue_max_retries: int = 3

    def notification_ns(self) -> float:
        return cycles_to_ns(self.notification_cycles, self.ghz)


@dataclass(frozen=True)
class TlbParams:
    """Per-accelerator address-translation model.

    The paper reports 3.4 D-TLB MPKI and 0.13 page faults per million
    instructions; we express both as per-operation probabilities given an
    average instruction footprint per accelerator operation.
    """

    miss_probability: float = 0.02
    walk_latency_ns: float = 100.0
    page_fault_probability: float = 2e-6
    page_fault_service_ns: float = 10000.0


@dataclass(frozen=True)
class AtmParams:
    """Accelerator Trace Memory: on-chip SRAM holding queued traces."""

    read_latency_ns: float = 20.0
    write_latency_ns: float = 20.0
    capacity_traces: int = 4096


@dataclass(frozen=True)
class ProcessorGeneration:
    """A CPU generation preset for the Fig 20 sensitivity study.

    ``app_logic_scale`` and ``tax_scale`` multiply the CPU execution time
    of application logic and datacenter-tax code respectively, relative
    to the Ice Lake baseline. Newer cores help the main service logic
    more than the memory/branch-bound tax operations (Section VII.C.4).
    """

    name: str
    app_logic_scale: float
    tax_scale: float


PROCESSOR_GENERATIONS: Dict[str, ProcessorGeneration] = {
    "haswell": ProcessorGeneration("haswell", app_logic_scale=1.55, tax_scale=1.25),
    "skylake": ProcessorGeneration("skylake", app_logic_scale=1.25, tax_scale=1.12),
    "icelake": ProcessorGeneration("icelake", app_logic_scale=1.00, tax_scale=1.00),
    "sapphire-rapids": ProcessorGeneration(
        "sapphire-rapids", app_logic_scale=0.85, tax_scale=0.95
    ),
    "emerald-rapids": ProcessorGeneration(
        "emerald-rapids", app_logic_scale=0.76, tax_scale=0.92
    ),
}


@dataclass(frozen=True)
class ChipletLayout:
    """Assignment of accelerator kinds to chiplets (cores on chiplet 0)."""

    name: str
    assignment: Dict[AcceleratorKind, int]

    @property
    def chiplet_count(self) -> int:
        return max(self.assignment.values()) + 1

    def chiplet_of(self, kind: AcceleratorKind) -> int:
        return self.assignment[kind]

    def same_chiplet(self, a: AcceleratorKind, b: AcceleratorKind) -> bool:
        return self.assignment[a] == self.assignment[b]


def _layout(name: str, groups: List[List[AcceleratorKind]]) -> ChipletLayout:
    assignment: Dict[AcceleratorKind, int] = {}
    for chiplet_id, group in enumerate(groups):
        for kind in group:
            assignment[kind] = chiplet_id
    missing = set(ACCEL_KINDS) - set(assignment)
    if missing:
        raise ValueError(f"layout {name} misses accelerators: {missing}")
    return ChipletLayout(name, assignment)


_K = AcceleratorKind

#: Chiplet organizations studied in Section VII.C.1. Chiplet 0 always
#: holds the cores and the LdB accelerator (tightly coupled with cores).
_CHIPLET_LAYOUTS: Dict[int, ChipletLayout] = {
    1: _layout(
        "1-chiplet",
        [[_K.LDB, _K.TCP, _K.ENCR, _K.DECR, _K.RPC, _K.SER, _K.DSER, _K.CMP, _K.DCMP]],
    ),
    2: _layout(
        "2-chiplets",
        [
            [_K.LDB],
            [_K.TCP, _K.ENCR, _K.DECR, _K.RPC, _K.SER, _K.DSER, _K.CMP, _K.DCMP],
        ],
    ),
    3: _layout(
        "3-chiplets",
        [
            [_K.LDB],
            [_K.TCP, _K.ENCR, _K.DECR],
            [_K.RPC, _K.SER, _K.DSER, _K.CMP, _K.DCMP],
        ],
    ),
    4: _layout(
        "4-chiplets",
        [
            [_K.LDB],
            [_K.TCP, _K.ENCR, _K.DECR],
            [_K.RPC, _K.SER, _K.DSER],
            [_K.CMP, _K.DCMP],
        ],
    ),
    6: _layout(
        "6-chiplets",
        [
            [_K.LDB],
            [_K.TCP],
            [_K.ENCR, _K.DECR],
            [_K.RPC],
            [_K.SER, _K.DSER],
            [_K.CMP, _K.DCMP],
        ],
    ),
}


def chiplet_layout(count: int) -> ChipletLayout:
    """The Section VII.C.1 layout with ``count`` chiplets."""
    try:
        return _CHIPLET_LAYOUTS[count]
    except KeyError:
        raise ValueError(
            f"no {count}-chiplet layout; choose from {sorted(_CHIPLET_LAYOUTS)}"
        ) from None


@dataclass(frozen=True)
class MachineParams:
    """Everything needed to instantiate one simulated server."""

    cpu: CpuParams = field(default_factory=CpuParams)
    accelerator: AcceleratorParams = field(default_factory=AcceleratorParams)
    noc: NocParams = field(default_factory=NocParams)
    tlb: TlbParams = field(default_factory=TlbParams)
    atm: AtmParams = field(default_factory=AtmParams)
    layout: ChipletLayout = field(default_factory=lambda: chiplet_layout(2))
    dma_engines: int = 10
    speedups: Dict[AcceleratorKind, float] = field(
        default_factory=lambda: dict(DEFAULT_SPEEDUPS)
    )
    #: Global multiplier on all accelerator speedups (Section VII.C.5).
    speedup_scale: float = 1.0
    generation: ProcessorGeneration = field(
        default_factory=lambda: PROCESSOR_GENERATIONS["icelake"]
    )
    #: Per-tenant concurrent-trace limit N (Section IV-D). Sized as an
    #: isolation knob against hoarding tenants, not a steady-state cap:
    #: it must sit above a single tenant's honest in-flight trace count.
    tenant_trace_limit: int = 128
    #: Where the accelerators live (:mod:`repro.hw.placement`). None —
    #: the default — means everything on-package with *no* placement
    #: fabric installed: byte-identical to the placement-unaware model.
    placement: Optional["PlacementConfig"] = None

    def speedup_of(self, kind: AcceleratorKind) -> float:
        return self.speedups[kind] * self.speedup_scale

    def with_pes(self, pes: int) -> "MachineParams":
        return replace(self, accelerator=replace(self.accelerator, pes=pes))

    def with_instances(self, instances: int) -> "MachineParams":
        return replace(
            self, accelerator=replace(self.accelerator, instances=instances)
        )

    def with_layout(self, chiplets: int) -> "MachineParams":
        return replace(self, layout=chiplet_layout(chiplets))

    def with_generation(self, name: str) -> "MachineParams":
        return replace(self, generation=PROCESSOR_GENERATIONS[name])

    def with_speedup_scale(self, scale: float) -> "MachineParams":
        return replace(self, speedup_scale=scale)

    def with_inter_chiplet_cycles(self, cycles: float) -> "MachineParams":
        return replace(self, noc=replace(self.noc, inter_chiplet_cycles=cycles))

    def with_placement(
        self, default="on_package", overrides=None, **kwargs
    ) -> "MachineParams":
        """Place the accelerators: a placement (name or enum) for every
        kind, plus per-kind ``overrides`` (see :mod:`repro.hw.placement`)."""
        from .placement import PlacementConfig

        return replace(
            self,
            placement=PlacementConfig.build(default, overrides, **kwargs),
        )

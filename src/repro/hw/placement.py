"""Placement fabric: where each accelerator physically lives.

The paper puts the nine tax accelerators on-package; the related work
puts the very same accelerators everywhere else — RPCAcc behind a PCIe
link, Dagger coupled to the NIC over a memory interconnect, Arcalis
near the LLC, and the "Fine-Grained Computation Offload" line as a
remote service across the network. This module models *placement* as a
first-class config axis so the five orchestration architectures can be
compared across the whole disaggregation design space.

Three layers:

* :class:`Placement` — the five placements studied (``on_package``,
  ``near_cache``, ``pcie``, ``nic``, ``remote``).
* :class:`HopModel` — the cost of crossing from the package to one
  off-package site: a setup latency (doorbell/descriptor/driver turn),
  link bandwidth, a serialization quantum (TLP/MTU — payloads move in
  whole quanta), and a bounded number of lanes. Lanes are a queued
  :class:`~repro.sim.Resource`, so link *contention* is simulated, not
  just added as a constant.
* :class:`PlacementFabric` — sits between the A-DMA pool and
  :class:`~repro.hw.noc.Network`. Transfers whose endpoints are all
  on-package delegate straight to the NoC (the fast path); any
  off-package endpoint additionally pays its placement's hop crossing,
  with contention on the shared link and fault-plane gates (PCIe link
  flaps, NIC congestion) applied per placement.

The default :class:`MachineParams` carries no placement config at all,
so the fabric is never instantiated and the simulator is byte-identical
to the placement-unaware model; an explicit all-``on_package`` config
is inactive for the same reason (unless ``force_fabric`` requests the
pass-through layer for overhead benchmarking).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..sim import Environment, Resource, TimeWeightedValue
from .noc import CPU_ENDPOINT, MEMORY_ENDPOINT, Endpoint, Network
from .params import AcceleratorKind

__all__ = [
    "Placement",
    "PLACEMENTS",
    "HopModel",
    "DEFAULT_HOP_MODELS",
    "PlacementConfig",
    "PlacementFabric",
]


class Placement(enum.Enum):
    """Where an accelerator sits relative to the cores."""

    #: The paper's baseline: on the server package, reached over the
    #: chiplet NoC alone.
    ON_PACKAGE = "on_package"
    #: Arcalis-style: attached beside the LLC on the die edge; a short
    #: coherent hop on top of the NoC.
    NEAR_CACHE = "near_cache"
    #: RPCAcc-style: a discrete card behind a PCIe link (doorbell +
    #: descriptor fetch + TLP serialization).
    PCIE = "pcie"
    #: Dagger-style: on the SmartNIC, reached over the NIC's memory
    #: interconnect and sharing the NIC's host link.
    NIC = "nic"
    #: Fine-grained offload to a remote accelerator service across the
    #: datacenter network.
    REMOTE = "remote"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


PLACEMENTS = tuple(Placement)


@dataclass(frozen=True)
class HopModel:
    """Cost model of one package <-> site crossing.

    ``setup_ns`` is paid once per crossing (doorbell write, descriptor
    fetch, driver/firmware turn); payload bytes then serialize at
    ``gbps`` in whole ``quantum_bytes`` units (a 1-byte message still
    ships a full TLP/frame). ``lanes`` bounds concurrent crossings —
    the queued link resource that makes contention real.
    """

    setup_ns: float
    gbps: float
    quantum_bytes: int = 64
    lanes: int = 4

    def serialization_ns(self, nbytes: int) -> float:
        """Wire time of ``nbytes``, rounded up to whole quanta."""
        quanta = max(1, -(-nbytes // self.quantum_bytes))
        return quanta * self.quantum_bytes / self.gbps

    def crossing_ns(self, nbytes: int) -> float:
        """Uncontended cost of one package <-> site crossing."""
        return self.setup_ns + self.serialization_ns(nbytes)

    def validate(self) -> None:
        if self.setup_ns < 0:
            raise ValueError(f"setup_ns must be >= 0, got {self.setup_ns}")
        if self.gbps <= 0:
            raise ValueError(f"gbps must be positive, got {self.gbps}")
        if self.quantum_bytes <= 0:
            raise ValueError(
                f"quantum_bytes must be positive, got {self.quantum_bytes}"
            )
        if self.lanes <= 0:
            raise ValueError(f"lanes must be positive, got {self.lanes}")


#: Literature-flavoured hop costs (see docs/placement.md for sources).
#: ``on_package`` has no hop — transfers ride the NoC alone.
DEFAULT_HOP_MODELS: Dict[Placement, HopModel] = {
    # Near-LLC: a coherent on-die hop; cache-line quanta, wide and fast.
    Placement.NEAR_CACHE: HopModel(
        setup_ns=40.0, gbps=200.0, quantum_bytes=64, lanes=8
    ),
    # PCIe Gen4 x16 card: ~0.9 us doorbell-to-data turn, 512 B TLPs.
    Placement.PCIE: HopModel(
        setup_ns=900.0, gbps=32.0, quantum_bytes=512, lanes=4
    ),
    # SmartNIC complex over the NIC host link: DMA rings + MTU frames.
    Placement.NIC: HopModel(
        setup_ns=1300.0, gbps=25.0, quantum_bytes=1500, lanes=4
    ),
    # Remote accelerator service: half an RTT of network each way.
    Placement.REMOTE: HopModel(
        setup_ns=10000.0, gbps=12.5, quantum_bytes=1500, lanes=8
    ),
}

PlacementLike = Union[Placement, str]


def _as_kind(value) -> AcceleratorKind:
    if isinstance(value, AcceleratorKind):
        return value
    try:
        return AcceleratorKind(value)
    except ValueError:
        pass
    try:
        return AcceleratorKind[str(value).upper()]
    except KeyError:
        raise ValueError(
            f"unknown accelerator kind {value!r}; "
            f"known: {[k.value for k in AcceleratorKind]}"
        ) from None


def _as_placement(value: PlacementLike) -> Placement:
    if isinstance(value, Placement):
        return value
    try:
        return Placement(value)
    except ValueError:
        raise ValueError(
            f"unknown placement {value!r}; "
            f"known: {[p.value for p in PLACEMENTS]}"
        ) from None


@dataclass(frozen=True)
class PlacementConfig:
    """The placement axis of one machine.

    ``default`` places every accelerator kind; ``overrides`` pin
    individual kinds elsewhere (e.g. compression on-package while the
    RPC stack lives on the NIC). The CPU/memory endpoints are always
    on-package. ``force_fabric`` installs the fabric even when every
    kind is on-package — a benchmarking knob that measures the
    pass-through cost of the layer itself.
    """

    default: Placement = Placement.ON_PACKAGE
    overrides: Dict[AcceleratorKind, Placement] = field(default_factory=dict)
    hop_models: Dict[Placement, HopModel] = field(
        default_factory=lambda: dict(DEFAULT_HOP_MODELS)
    )
    force_fabric: bool = False

    @classmethod
    def build(
        cls,
        default: PlacementLike = Placement.ON_PACKAGE,
        overrides: Optional[Dict[object, PlacementLike]] = None,
        hop_models: Optional[Dict[Placement, HopModel]] = None,
        force_fabric: bool = False,
    ) -> "PlacementConfig":
        """Lenient constructor: accepts placement names and accelerator
        kind values (strings) as well as the enum members."""
        resolved: Dict[AcceleratorKind, Placement] = {}
        for kind, placement in (overrides or {}).items():
            resolved[_as_kind(kind)] = _as_placement(placement)
        models = dict(DEFAULT_HOP_MODELS)
        if hop_models:
            models.update(hop_models)
        return cls(
            default=_as_placement(default),
            overrides=resolved,
            hop_models=models,
            force_fabric=force_fabric,
        )

    def placement_of(self, kind: AcceleratorKind) -> Placement:
        return self.overrides.get(kind, self.default)

    @property
    def active(self) -> bool:
        """True when any accelerator actually leaves the package."""
        if self.force_fabric:
            return True
        if self.default is not Placement.ON_PACKAGE:
            return True
        return any(
            p is not Placement.ON_PACKAGE for p in self.overrides.values()
        )

    def placements_in_use(self) -> Dict[Placement, int]:
        """Off-package placement -> number of accelerator kinds there."""
        counts: Dict[Placement, int] = {}
        for kind in AcceleratorKind:
            placement = self.placement_of(kind)
            if placement is not Placement.ON_PACKAGE:
                counts[placement] = counts.get(placement, 0) + 1
        return counts

    def validate(self) -> None:
        for placement, model in self.hop_models.items():
            if placement is Placement.ON_PACKAGE:
                raise ValueError("on_package needs no hop model")
            model.validate()
        for placement in self.placements_in_use():
            if placement not in self.hop_models:
                raise ValueError(f"no hop model for placement {placement}")


class PlacementFabric:
    """The transport between the A-DMA pool and the NoC.

    Presents the same ``transfer``/``estimate_ns``/``stats`` surface as
    :class:`~repro.hw.noc.Network`, so the DMA pool (and through it
    every orchestrator) is placement-oblivious. Off-package endpoints
    attach through the package edge on chiplet 0 (the root complex /
    memory controller), so the on-package share of a crossing rides the
    real NoC — with its own fabric and inter-chiplet contention — and
    the hop itself queues on the placement's bounded link lanes.

    Two accelerators at the *same* off-package site exchange data over
    that site's local interconnect, which we model with the same NoC
    cost (and shared contention resources) as the on-package mesh: no
    host-link lanes and no hop setup — the modelling reason colocating
    producer and consumer (e.g. the whole RPC stack on the NIC)
    recovers the on-package hand-off cost without ever beating it.
    """

    def __init__(
        self,
        env: Environment,
        config: PlacementConfig,
        network: Network,
        tracer=None,
    ):
        config.validate()
        self.env = env
        self.config = config
        self.network = network
        #: Optional :class:`repro.obs.SpanTracer`; every hop crossing
        #: records a "placement" track span when tracing is on.
        self.tracer = tracer
        #: Optional :class:`repro.faults.FaultPlane` (None = fault-free):
        #: supplies per-placement down gates (PCIe link flaps) and
        #: degradation factors (NIC congestion).
        self.fault_plane = None
        self._links: Dict[Placement, Resource] = {
            placement: Resource(env, capacity=config.hop_models[placement].lanes)
            for placement in config.placements_in_use()
        }
        #: Endpoint -> placement, precomputed so the per-transfer hot
        #: path is a dict lookup, not config resolution.
        self._placements: Dict[Endpoint, Placement] = {
            kind: config.placement_of(kind) for kind in AcceleratorKind
        }
        self._placements[CPU_ENDPOINT] = Placement.ON_PACKAGE
        self._placements[MEMORY_ENDPOINT] = Placement.ON_PACKAGE
        self.hop_transfers: Dict[Placement, int] = {
            placement: 0 for placement in self._links
        }
        self.hop_bytes: Dict[Placement, int] = {
            placement: 0 for placement in self._links
        }
        self.local_site_transfers = 0
        self._in_flight: Dict[Placement, TimeWeightedValue] = {
            placement: TimeWeightedValue(0.0, env.now)
            for placement in self._links
        }

    # -- topology -----------------------------------------------------------
    def placement_of(self, endpoint: Endpoint) -> Placement:
        """The placement of one transfer endpoint (CPU/memory are
        always on-package)."""
        return self._placements.get(endpoint, Placement.ON_PACKAGE)

    def _edge(self, endpoint: Endpoint) -> Endpoint:
        """Where an endpoint's on-package NoC leg terminates: the
        endpoint itself when on-package, else the chiplet-0 package
        edge its hop attaches through."""
        if self.placement_of(endpoint) is Placement.ON_PACKAGE:
            return endpoint
        return MEMORY_ENDPOINT

    # -- timing -------------------------------------------------------------
    def estimate_ns(self, src: Endpoint, dst: Endpoint, nbytes: int) -> float:
        """Uncontended transfer time (admission heuristics)."""
        src_p = self.placement_of(src)
        dst_p = self.placement_of(dst)
        if src_p is dst_p:
            # On-package, or both endpoints at one off-package site:
            # the site-local interconnect is modelled with the same NoC
            # cost, so colocation never beats the package itself.
            return self.network.estimate_ns(src, dst, nbytes)
        time_ns = self.network.estimate_ns(
            self._edge(src), self._edge(dst), nbytes
        )
        if src_p is not Placement.ON_PACKAGE:
            time_ns += self.config.hop_models[src_p].crossing_ns(nbytes)
        if dst_p is not Placement.ON_PACKAGE:
            time_ns += self.config.hop_models[dst_p].crossing_ns(nbytes)
        return time_ns

    def _cross(self, placement: Placement, nbytes: int):
        """Process leg: one package <-> site crossing with contention."""
        env = self.env
        hop = self.config.hop_models[placement]
        start = env.now
        plane = self.fault_plane
        if plane is not None:
            # A flapped link admits no new crossings until it returns.
            yield from plane.placement_wait(placement)
        self._in_flight[placement].add(1.0, env.now)
        try:
            with self._links[placement].request() as lane:
                yield lane
                leg_ns = hop.crossing_ns(nbytes)
                if plane is not None:
                    # Congestion stretches the whole crossing.
                    leg_ns *= plane.placement_factor(placement)
                yield env.timeout(leg_ns)
        finally:
            self._in_flight[placement].add(-1.0, env.now)
        self.hop_transfers[placement] += 1
        self.hop_bytes[placement] += nbytes
        if self.tracer is not None:
            self.tracer.complete(
                f"hop {placement.value}",
                "placement",
                start,
                env.now,
                cat="placement",
                args={"bytes": nbytes},
            )

    def transfer(self, src: Endpoint, dst: Endpoint, nbytes: int):
        """Process generator: move ``nbytes`` from ``src`` to ``dst``.

        A plain dispatcher, not itself a generator: on-package pairs
        (and same-site pairs, whose local interconnect shares the NoC
        cost model) get the NoC's own generator back with no delegation
        frame wrapped around it — that keeps the pass-through fabric's
        per-transfer cost to two dict lookups. Cross-site transfers
        return the routed generator that bolts hop crossings around the
        NoC share of the journey.
        """
        placements = self._placements
        src_p = placements.get(src, Placement.ON_PACKAGE)
        dst_p = placements.get(dst, Placement.ON_PACKAGE)
        if src_p is dst_p:
            if src_p is not Placement.ON_PACKAGE:
                # Both endpoints at one off-package site: stay on the
                # site-local interconnect.
                self.local_site_transfers += 1
            return self.network.transfer(src, dst, nbytes)
        return self._routed(src, src_p, dst, dst_p, nbytes)

    def _routed(self, src, src_p, dst, dst_p, nbytes: int):
        """Process: a transfer with at least one off-package endpoint."""
        if src_p is not Placement.ON_PACKAGE:
            yield from self._cross(src_p, nbytes)
        yield from self.network.transfer(self._edge(src), self._edge(dst), nbytes)
        if dst_p is not Placement.ON_PACKAGE:
            yield from self._cross(dst_p, nbytes)

    # -- statistics ---------------------------------------------------------
    def in_flight(self, placement: Placement) -> float:
        """Instantaneous crossings in flight (incl. lane waits)."""
        tracker = self._in_flight.get(placement)
        return tracker.value if tracker is not None else 0.0

    def average_in_flight(self, placement: Placement) -> float:
        tracker = self._in_flight.get(placement)
        if tracker is None:
            return 0.0
        return tracker.average(self.env.now)

    def stats(self) -> Dict[str, object]:
        stats = dict(self.network.stats())
        stats["local_site_transfers"] = float(self.local_site_transfers)
        stats["hops"] = {
            placement.value: {
                "transfers": float(self.hop_transfers[placement]),
                "bytes": float(self.hop_bytes[placement]),
                "average_in_flight": self.average_in_flight(placement),
            }
            for placement in sorted(self._links, key=lambda p: p.value)
        }
        return stats

"""Area, power and energy model (McPAT substitute).

The paper computes area/power with McPAT at 32 nm scaled to 7 nm and
reports the aggregate results (Section VI "Area Overhead" and Section
VII.B.5). We encode those published aggregates directly and derive
energy from the simulator's busy-time statistics:

* baseline processor area 122.3 mm^2 (83.1 cores+private caches, 38.2
  LLC, 1.0 network),
* accelerator areas: Ser 0.6, Dser 0.9, Cmp 9.1, Dcmp 5.2 mm^2; TCP and
  (De)Encr like Cmp; RPC and LdB like Dser (paper's estimates),
* queues+dispatchers 3.4 mm^2, 10 A-DMA engines 1.3 mm^2, accelerator
  network 0.4 mm^2,
* max power: accelerators 12.5 W, orchestration structures 5.0 W
  (3.1% / 1.2% of server max power, i.e. server max ~= 403 W).
"""

from __future__ import annotations

from typing import Dict

from .params import AcceleratorKind

__all__ = ["AreaModel", "EnergyModel", "SERVER_MAX_POWER_W"]

#: Implied by "12.5 W is 3.1% of the maximum power of the server".
SERVER_MAX_POWER_W = 403.0

_ACCEL_AREA_MM2: Dict[AcceleratorKind, float] = {
    AcceleratorKind.SER: 0.6,
    AcceleratorKind.DSER: 0.9,
    AcceleratorKind.CMP: 9.1,
    AcceleratorKind.DCMP: 5.2,
    # Paper: TCP and (De)Encr estimated like Cmp; RPC and LdB like Dser.
    AcceleratorKind.TCP: 9.1,
    AcceleratorKind.ENCR: 9.1,
    AcceleratorKind.DECR: 9.1,
    AcceleratorKind.RPC: 0.9,
    AcceleratorKind.LDB: 0.9,
}


class AreaModel:
    """Die-area accounting (Section VI)."""

    CORES_MM2 = 83.1
    LLC_MM2 = 38.2
    CORE_NETWORK_MM2 = 1.0
    QUEUES_DISPATCHERS_MM2 = 3.4
    DMA_MM2 = 1.3
    ACCEL_NETWORK_MM2 = 0.4

    @property
    def baseline_mm2(self) -> float:
        return self.CORES_MM2 + self.LLC_MM2 + self.CORE_NETWORK_MM2

    @property
    def accelerators_mm2(self) -> float:
        return sum(_ACCEL_AREA_MM2.values())

    def accelerator_mm2(self, kind: AcceleratorKind) -> float:
        return _ACCEL_AREA_MM2[kind]

    @property
    def orchestration_mm2(self) -> float:
        """AccelFlow-specific structures (queues, dispatchers, DMA, net)."""
        return self.QUEUES_DISPATCHERS_MM2 + self.DMA_MM2 + self.ACCEL_NETWORK_MM2

    @property
    def total_mm2(self) -> float:
        return self.baseline_mm2 + self.accelerators_mm2 + self.orchestration_mm2

    def accelerator_fraction(self) -> float:
        """Accelerators as a fraction of total processor area (~26.1%)."""
        return self.accelerators_mm2 / self.total_mm2

    def accelflow_overhead_fraction(self) -> float:
        """AccelFlow orchestration structures over total area (~2.9%)."""
        return self.orchestration_mm2 / self.total_mm2

    def breakdown(self) -> Dict[str, float]:
        return {
            "cores": self.CORES_MM2,
            "llc": self.LLC_MM2,
            "core_network": self.CORE_NETWORK_MM2,
            "accelerators": self.accelerators_mm2,
            "queues_dispatchers": self.QUEUES_DISPATCHERS_MM2,
            "dma": self.DMA_MM2,
            "accel_network": self.ACCEL_NETWORK_MM2,
            "total": self.total_mm2,
        }


class EnergyModel:
    """Power/energy accounting driven by simulator busy-time statistics."""

    ACCEL_MAX_POWER_W = 12.5
    ORCHESTRATION_MAX_POWER_W = 5.0
    CORE_ACTIVE_W = 5.5
    CORE_IDLE_W = 0.8
    ACCEL_IDLE_FRACTION = 0.1
    #: Extra memory AccelFlow adds per server (input/output queues).
    EXTRA_MEMORY_MB = 2.4

    def __init__(self):
        self.area = AreaModel()
        total_area = self.area.accelerators_mm2
        #: Per-accelerator max power, proportional to area.
        self.accel_max_w: Dict[AcceleratorKind, float] = {
            kind: self.ACCEL_MAX_POWER_W * mm2 / total_area
            for kind, mm2 in _ACCEL_AREA_MM2.items()
        }

    def core_energy_j(
        self, cores: int, elapsed_ns: float, busy_ns: float
    ) -> float:
        """Energy of the core complex over a run."""
        if elapsed_ns <= 0:
            return 0.0
        total_core_ns = cores * elapsed_ns
        idle_ns = max(0.0, total_core_ns - busy_ns)
        return (busy_ns * self.CORE_ACTIVE_W + idle_ns * self.CORE_IDLE_W) * 1e-9

    def accel_energy_j(
        self, kind: AcceleratorKind, elapsed_ns: float, busy_pe_ns: float, pes: int
    ) -> float:
        """Energy of one accelerator: active while a PE computes."""
        if elapsed_ns <= 0:
            return 0.0
        max_w = self.accel_max_w[kind]
        per_pe_w = max_w / pes
        idle_ns = max(0.0, pes * elapsed_ns - busy_pe_ns)
        idle_w = per_pe_w * self.ACCEL_IDLE_FRACTION
        return (busy_pe_ns * per_pe_w + idle_ns * idle_w) * 1e-9

    def orchestration_energy_j(
        self, elapsed_ns: float, dma_busy_ns: float, dispatcher_ops: int
    ) -> float:
        """Energy of queues/dispatchers/DMA/network.

        Modeled as a static floor (10% of max) plus activity terms: DMA
        busy time at the orchestration power budget, and a small fixed
        energy per dispatcher operation.
        """
        static_j = self.ORCHESTRATION_MAX_POWER_W * 0.1 * elapsed_ns * 1e-9
        dma_j = self.ORCHESTRATION_MAX_POWER_W * 0.5 * dma_busy_ns * 1e-9
        per_op_j = 2e-9  # 2 nJ per dispatcher operation
        return static_j + dma_j + dispatcher_ops * per_op_j

    def performance_per_watt(
        self, requests: int, elapsed_ns: float, total_energy_j: float
    ) -> float:
        """Requests per joule-second normalization: RPS / W."""
        if elapsed_ns <= 0 or total_energy_j <= 0:
            return 0.0
        elapsed_s = elapsed_ns * 1e-9
        watts = total_energy_j / elapsed_s
        return (requests / elapsed_s) / watts

"""Address translation: per-accelerator TLBs backed by a shared IOMMU.

Accelerators operate on virtual addresses (Intel SVM-style); each has a
small translation cache and misses go to the IOMMU of its chiplet, which
performs a radix page-table walk. Page faults stop the accelerator and
interrupt a CPU core (counted; the OS service time is charged but core
contention for this rare path is not modeled).
"""

from __future__ import annotations

from typing import Dict

from ..sim import Environment, Resource, Stream
from .params import TlbParams

__all__ = ["Iommu", "TlbModel", "TranslationOutcome"]


class TranslationOutcome:
    """Result of one translation: what happened and what it cost."""

    __slots__ = ("hit", "page_fault", "latency_ns")

    def __init__(self, hit: bool, page_fault: bool, latency_ns: float):
        self.hit = hit
        self.page_fault = page_fault
        self.latency_ns = latency_ns


class Iommu:
    """Shared page-walker serving the TLB misses of co-located accelerators."""

    def __init__(self, env: Environment, walk_latency_ns: float, walkers: int = 4):
        self.env = env
        self.walk_latency_ns = walk_latency_ns
        self._walkers = Resource(env, capacity=walkers)
        self.walks = 0

    def walk(self):
        """Process: perform one page-table walk."""
        with self._walkers.request() as req:
            yield req
            yield self.env.timeout(self.walk_latency_ns)
        self.walks += 1


class TlbModel:
    """Probabilistic TLB for one accelerator."""

    def __init__(
        self,
        env: Environment,
        params: TlbParams,
        iommu: Iommu,
        stream: Stream,
    ):
        self.env = env
        self.params = params
        self.iommu = iommu
        self.stream = stream
        self.accesses = 0
        self.misses = 0
        self.page_faults = 0

    def translate(self):
        """Process: translate one operation's working set.

        Returns a :class:`TranslationOutcome`. Most operations hit and
        cost nothing; misses pay an IOMMU walk; rare page faults pay the
        OS service latency.
        """
        self.accesses += 1
        start = self.env.now
        if self.stream.bernoulli(self.params.page_fault_probability):
            self.page_faults += 1
            yield self.env.timeout(self.params.page_fault_service_ns)
            return TranslationOutcome(False, True, self.env.now - start)
        if self.stream.bernoulli(self.params.miss_probability):
            self.misses += 1
            yield self.env.process(self.iommu.walk())
            return TranslationOutcome(False, False, self.env.now - start)
        return TranslationOutcome(True, False, 0.0)

    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def stats(self) -> Dict[str, float]:
        return {
            "accesses": float(self.accesses),
            "misses": float(self.misses),
            "page_faults": float(self.page_faults),
            "miss_rate": self.miss_rate(),
        }

"""Observability: tracing, metrics, profiling, and streaming telemetry.

Post-hoc layers, all opt-in through one :class:`ObsConfig` object:

* :class:`SpanTracer` records each sampled request's lifecycle (queue
  waits, PE execution, dispatcher work, DTE transforms, ATM reads, DMA
  hand-offs, notifications) as spans with nanosecond sim-timestamps.
  Export with :func:`chrome_trace` / :func:`write_chrome_trace`
  (``chrome://tracing`` / Perfetto compatible) or render in a terminal
  with :func:`render_timeline`.
* :class:`MetricsRegistry` runs a periodic sampler process that records
  queue depths, utilizations, in-flight requests and achieved RPS into
  ring buffers; render with :meth:`MetricsRegistry.render` sparklines.
* Kernel profiling lives in :class:`repro.sim.Environment` (enabled via
  ``ObsConfig.profile_kernel``); :func:`format_profile` renders it.

The *streaming* plane (``ObsConfig(telemetry=True, ...)``) layers live
consumers over the same producers:

* :class:`TelemetryBus` — bounded pub/sub ring; spans, metric samples,
  fault injections, recovery events and request terminals are published
  as they happen in sim time.
* :class:`SLOMonitor` — multi-window burn-rate alerting over
  per-service availability/latency targets (:class:`SLOTarget`,
  :class:`SLOMonitorConfig`), with alert lifecycle spans.
* :class:`FlightRecorder` — ring-buffered incident bundles captured on
  alert-fire / breaker-open / watchdog-timeout, plus the fault→breach
  correlation table.
* :class:`Dashboard` — live/snapshot ASCII fleet view
  (``python -m repro.obs.dashboard``).

Disabled observability costs a single ``is not None`` attribute check
at each instrumentation point.
"""

from .config import ObsConfig, ObsSession
from .export import chrome_trace, write_chrome_trace
from .metrics import MetricsRegistry, TimeSeries
from .profiling import format_profile
from .recorder import FlightRecorder
from .slo import Alert, AlertState, SLOMonitor, SLOMonitorConfig, SLOTarget
from .span import Span, SpanTracer
from .telemetry import (
    AdmissionEvent,
    AlertFired,
    AwaitableTail,
    FaultInjected,
    Marker,
    MetricSample,
    RecoveryEvent,
    RequestEnd,
    SpanEnd,
    TelemetryBus,
    TelemetryEvent,
    TelemetrySubscription,
)
from .timeline import render_timeline


def __getattr__(name):
    # Lazy so `python -m repro.obs.dashboard` does not import the module
    # twice (once via the package, once as __main__ — runpy warns).
    if name == "Dashboard":
        from .dashboard import Dashboard

        return Dashboard
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AdmissionEvent",
    "Alert",
    "AlertFired",
    "AlertState",
    "AwaitableTail",
    "Dashboard",
    "FaultInjected",
    "FlightRecorder",
    "Marker",
    "MetricSample",
    "MetricsRegistry",
    "ObsConfig",
    "ObsSession",
    "RecoveryEvent",
    "RequestEnd",
    "SLOMonitor",
    "SLOMonitorConfig",
    "SLOTarget",
    "Span",
    "SpanEnd",
    "SpanTracer",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetrySubscription",
    "TimeSeries",
    "chrome_trace",
    "format_profile",
    "render_timeline",
    "write_chrome_trace",
]

"""Observability: request-flow tracing, time-series metrics, profiling.

Three layers, all opt-in through one :class:`ObsConfig` object:

* :class:`SpanTracer` records each sampled request's lifecycle (queue
  waits, PE execution, dispatcher work, DTE transforms, ATM reads, DMA
  hand-offs, notifications) as spans with nanosecond sim-timestamps.
  Export with :func:`chrome_trace` / :func:`write_chrome_trace`
  (``chrome://tracing`` / Perfetto compatible) or render in a terminal
  with :func:`render_timeline`.
* :class:`MetricsRegistry` runs a periodic sampler process that records
  queue depths, utilizations, in-flight requests and achieved RPS into
  ring buffers; render with :meth:`MetricsRegistry.render` sparklines.
* Kernel profiling lives in :class:`repro.sim.Environment` (enabled via
  ``ObsConfig.profile_kernel``); :func:`format_profile` renders it.

Disabled observability costs a single ``is not None`` attribute check
at each instrumentation point.
"""

from .config import ObsConfig, ObsSession
from .export import chrome_trace, write_chrome_trace
from .metrics import MetricsRegistry, TimeSeries
from .profiling import format_profile
from .span import Span, SpanTracer
from .timeline import render_timeline

__all__ = [
    "MetricsRegistry",
    "ObsConfig",
    "ObsSession",
    "Span",
    "SpanTracer",
    "TimeSeries",
    "chrome_trace",
    "format_profile",
    "render_timeline",
    "write_chrome_trace",
]

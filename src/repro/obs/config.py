"""The single switchboard for all observability features.

One :class:`ObsConfig` travels from the caller through
:class:`~repro.server.driver.RunConfig` into
:class:`~repro.server.machine.SimulatedServer`, which builds the
runtime objects (tracer, metrics registry) and registers them back here
as an :class:`ObsSession`. After a run::

    obs = ObsConfig(trace=True, metrics=True)
    run_experiment(services, RunConfig("accelflow", obs=obs))
    write_chrome_trace(obs.tracer, "trace.json")
    print(obs.registry.render())

Dedicated-mode experiments create one server per service; each server
appends its own session, and the ``tracer``/``registry`` shortcuts
return the most recent one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .metrics import MetricsRegistry
from .span import SpanTracer

__all__ = ["ObsConfig", "ObsSession"]


@dataclass
class ObsSession:
    """The observability objects of one simulated server."""

    env: object
    tracer: Optional[SpanTracer] = None
    registry: Optional[MetricsRegistry] = None


@dataclass
class ObsConfig:
    """What to observe. All features default to off."""

    #: Record request-flow spans.
    trace: bool = False
    #: Fraction of requests traced, per service (stride sampling).
    sample_rate: float = 1.0
    #: Only trace these services (None = all).
    trace_services: Optional[Sequence[str]] = None
    #: Span memory bound; beyond it spans are dropped (and counted).
    max_spans: int = 200_000
    #: Run the periodic time-series sampler.
    metrics: bool = False
    #: Sampling period of the metrics process (sim ns).
    metrics_interval_ns: float = 1e6
    #: Ring-buffer capacity per time series (also the sampler's tick
    #: budget, so a bare ``env.run()`` still terminates).
    metrics_capacity: int = 1024
    #: Enable :class:`repro.sim.Environment` kernel profiling.
    profile_kernel: bool = False
    #: Sessions registered by the servers that used this config.
    sessions: List[ObsSession] = field(default_factory=list, repr=False)

    @property
    def enabled(self) -> bool:
        return self.trace or self.metrics or self.profile_kernel

    @property
    def tracer(self) -> Optional[SpanTracer]:
        """Tracer of the most recent session (None before any run)."""
        for session in reversed(self.sessions):
            if session.tracer is not None:
                return session.tracer
        return None

    @property
    def registry(self) -> Optional[MetricsRegistry]:
        """Metrics registry of the most recent session."""
        for session in reversed(self.sessions):
            if session.registry is not None:
                return session.registry
        return None

"""The single switchboard for all observability features.

One :class:`ObsConfig` travels from the caller through
:class:`~repro.server.driver.RunConfig` into
:class:`~repro.server.machine.SimulatedServer`, which builds the
runtime objects (tracer, metrics registry, telemetry bus, SLO monitor,
flight recorder) and registers them back here as an
:class:`ObsSession`. After a run::

    obs = ObsConfig(trace=True, metrics=True)
    run_experiment(services, RunConfig("accelflow", obs=obs))
    write_chrome_trace(obs.tracer, "trace.json")
    print(obs.registry.render())

Dedicated-mode experiments create one server per service; each server
appends its own session, and the ``tracer``/``registry``/``bus``
shortcuts return the most recent one.

The streaming plane (``telemetry``/``slo``/``flight_recorder``) rides
the same opt-in contract: nothing is constructed and no event is
published unless ``telemetry`` is True, so disabled runs stay
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .metrics import MetricsRegistry
from .recorder import FlightRecorder
from .slo import SLOMonitor, SLOMonitorConfig
from .span import SpanTracer
from .telemetry import TelemetryBus

__all__ = ["ObsConfig", "ObsSession"]


@dataclass
class ObsSession:
    """The observability objects of one simulated server."""

    env: object
    tracer: Optional[SpanTracer] = None
    registry: Optional[MetricsRegistry] = None
    bus: Optional[TelemetryBus] = None
    slo_monitor: Optional[SLOMonitor] = None
    recorder: Optional[FlightRecorder] = None


@dataclass
class ObsConfig:
    """What to observe. All features default to off."""

    #: Record request-flow spans.
    trace: bool = False
    #: Fraction of requests traced, per service (stride sampling).
    sample_rate: float = 1.0
    #: Only trace these services (None = all).
    trace_services: Optional[Sequence[str]] = None
    #: Span memory bound; beyond it spans are dropped (and counted).
    max_spans: int = 200_000
    #: Run the periodic time-series sampler.
    metrics: bool = False
    #: Sampling period of the metrics process (sim ns).
    metrics_interval_ns: float = 1e6
    #: Ring-buffer capacity per time series (also the sampler's tick
    #: budget, so a bare ``env.run()`` still terminates).
    metrics_capacity: int = 1024
    #: Enable :class:`repro.sim.Environment` kernel profiling.
    profile_kernel: bool = False
    #: Run the streaming telemetry bus (spans, metrics, faults,
    #: request terminals published live).
    telemetry: bool = False
    #: Event-ring capacity of the bus.
    telemetry_capacity: int = 4096
    #: Attach a burn-rate SLO monitor to the bus (implies telemetry).
    slo: Optional[SLOMonitorConfig] = None
    #: Attach an incident flight recorder to the bus (implies telemetry).
    flight_recorder: bool = False
    #: Event-ring capacity of the flight recorder.
    recorder_capacity: int = 2048
    #: Sessions registered by the servers that used this config.
    sessions: List[ObsSession] = field(default_factory=list, repr=False)

    @property
    def telemetry_enabled(self) -> bool:
        return self.telemetry or self.slo is not None or self.flight_recorder

    @property
    def enabled(self) -> bool:
        return (
            self.trace
            or self.metrics
            or self.profile_kernel
            or self.telemetry_enabled
        )

    def make_session(self, env) -> ObsSession:
        """Build the runtime objects for one server/cluster and register
        them as a new session.

        The flight recorder subscribes before the SLO monitor so an
        ``AlertFired`` published mid-dispatch still lands in the
        recorder's ring before the recorder's own trigger handling runs.
        """
        tracer = (
            SpanTracer(
                env,
                sample_rate=self.sample_rate,
                services=self.trace_services,
                max_spans=self.max_spans,
            )
            if self.trace
            else None
        )
        registry = (
            MetricsRegistry(
                env,
                interval_ns=self.metrics_interval_ns,
                capacity=self.metrics_capacity,
            )
            if self.metrics
            else None
        )
        bus = slo_monitor = recorder = None
        if self.telemetry_enabled:
            bus = TelemetryBus(env, capacity=self.telemetry_capacity)
            if tracer is not None:
                tracer.bus = bus
            if registry is not None:
                registry.bus = bus
            if self.flight_recorder:
                recorder = FlightRecorder(bus, capacity=self.recorder_capacity)
            if self.slo is not None:
                slo_monitor = SLOMonitor(bus, self.slo, tracer=tracer)
        session = ObsSession(
            env=env,
            tracer=tracer,
            registry=registry,
            bus=bus,
            slo_monitor=slo_monitor,
            recorder=recorder,
        )
        self.sessions.append(session)
        return session

    @property
    def tracer(self) -> Optional[SpanTracer]:
        """Tracer of the most recent session (None before any run)."""
        for session in reversed(self.sessions):
            if session.tracer is not None:
                return session.tracer
        return None

    @property
    def registry(self) -> Optional[MetricsRegistry]:
        """Metrics registry of the most recent session."""
        for session in reversed(self.sessions):
            if session.registry is not None:
                return session.registry
        return None

    @property
    def bus(self) -> Optional[TelemetryBus]:
        """Telemetry bus of the most recent session."""
        for session in reversed(self.sessions):
            if session.bus is not None:
                return session.bus
        return None

    @property
    def slo_monitor(self) -> Optional[SLOMonitor]:
        """SLO monitor of the most recent session."""
        for session in reversed(self.sessions):
            if session.slo_monitor is not None:
                return session.slo_monitor
        return None

    @property
    def recorder(self) -> Optional[FlightRecorder]:
        """Flight recorder of the most recent session."""
        for session in reversed(self.sessions):
            if session.recorder is not None:
                return session.recorder
        return None

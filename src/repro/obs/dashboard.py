"""Live fleet dashboard over the telemetry bus.

The :class:`Dashboard` subscribes to the bus and maintains just enough
state to render a terminal view: per-service latency sparklines and
windowed P99 gauges, throughput and availability, open breakers and
fault-plane activity, and the alert feed. Rendering is pull-based —
:meth:`Dashboard.snapshot` returns a plain-ASCII block, so the same
object backs the interactive live view (ANSI redraw), tests/CI
(snapshot mode), and the ``--dashboard`` preview of the experiment
runner.

Run a self-contained demo (a seeded chaos cell with the full telemetry
plane attached) with::

    PYTHONPATH=src python -m repro.obs.dashboard --scenario mgr-outage \
        --architecture relief --requests 300

Add ``--live`` for in-place redraw while the simulation advances, or
``--cluster`` for a small fleet with a mid-run machine failure instead
of a single server.
"""

from __future__ import annotations

import sys
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .telemetry import (
    AdmissionEvent,
    AlertFired,
    FaultInjected,
    MetricSample,
    RecoveryEvent,
    RequestEnd,
    TelemetryBus,
    TelemetryEvent,
)

__all__ = ["Dashboard", "preview", "run_demo_cluster", "run_demo_server"]

_US = 1e-3  # ns -> us


def _p99(values: List[float]) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(round(0.99 * (len(ordered) - 1))), 0)
    return ordered[rank]


class _ServicePanel:
    """Rolling per-service view (latest ``window`` outcomes)."""

    __slots__ = ("name", "outcomes", "ok", "bad", "total")

    def __init__(self, name: str, window: int):
        self.name = name
        self.outcomes: Deque[Tuple[float, float, bool]] = deque(maxlen=window)
        self.ok = 0
        self.bad = 0
        self.total = 0

    def add(self, t_ns: float, latency_ns: float, ok: bool) -> None:
        self.outcomes.append((t_ns, latency_ns, ok))
        self.total += 1
        if ok:
            self.ok += 1
        else:
            self.bad += 1

    def latencies(self) -> List[float]:
        return [latency for _, latency, _ in self.outcomes]

    def window_rps(self) -> float:
        if len(self.outcomes) < 2:
            return 0.0
        span_ns = self.outcomes[-1][0] - self.outcomes[0][0]
        if span_ns <= 0:
            return 0.0
        return (len(self.outcomes) - 1) / (span_ns * 1e-9)

    def ok_fraction(self) -> float:
        return self.ok / self.total if self.total else 1.0


class Dashboard:
    """Bus subscriber rendering the fleet's live state as ASCII."""

    def __init__(
        self,
        bus: TelemetryBus,
        slo=None,
        window: int = 512,
        feed_length: int = 8,
    ):
        self.bus = bus
        #: Optional :class:`~repro.obs.slo.SLOMonitorConfig`; used to
        #: draw P99 gauges against each service's latency target.
        self.slo = slo
        self.window = window
        self.panels: Dict[str, _ServicePanel] = {}
        self.alert_feed: Deque[AlertFired] = deque(maxlen=feed_length)
        self.firing: Dict[str, AlertFired] = {}
        self.open_breakers = 0
        self.watchdog_timeouts = 0
        self.degraded_to_cpu = 0
        self.faults: Dict[str, int] = {}
        self.shed = 0
        self.degraded = 0
        self.gauges: Dict[str, float] = {}
        self.now_ns = 0.0
        bus.subscribe(self._on_event)

    # -- intake ------------------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        self.now_ns = max(self.now_ns, event.t_ns)
        if isinstance(event, RequestEnd):
            panel = self.panels.get(event.service)
            if panel is None:
                panel = _ServicePanel(event.service, self.window)
                self.panels[event.service] = panel
            panel.add(event.t_ns, event.latency_ns, event.ok)
        elif isinstance(event, AlertFired):
            self.alert_feed.append(event)
            if event.state == "firing":
                self.firing[event.alert] = event
            elif event.state == "resolved":
                self.firing.pop(event.alert, None)
        elif isinstance(event, RecoveryEvent):
            if event.kind_name == "breaker-open":
                self.open_breakers += 1
            elif event.kind_name == "breaker-close":
                self.open_breakers = max(self.open_breakers - 1, 0)
            elif event.kind_name == "watchdog-timeout":
                self.watchdog_timeouts += 1
            elif event.kind_name == "degraded-to-cpu":
                self.degraded_to_cpu += 1
        elif isinstance(event, FaultInjected):
            self.faults[event.category] = self.faults.get(event.category, 0) + 1
        elif isinstance(event, AdmissionEvent):
            if event.decision == "shed":
                self.shed += 1
            else:
                self.degraded += 1
        elif isinstance(event, MetricSample):
            self.gauges[event.name] = event.value

    # -- helpers -----------------------------------------------------------
    def _latency_target_ns(self, service: str) -> Optional[float]:
        if self.slo is None:
            return None
        for target in self.slo.targets:
            if target.service in (service, "*"):
                return target.latency_ns
        return None

    @staticmethod
    def _gauge_bar(fraction: float, width: int = 24) -> str:
        filled = int(round(min(max(fraction, 0.0), 1.0) * width))
        return "[" + "#" * filled + "-" * (width - filled) + "]"

    # -- rendering ---------------------------------------------------------
    def snapshot(self, width: int = 78) -> str:
        """The whole dashboard as one plain-ASCII block."""
        # Lazy: the analysis package reaches the experiment harness,
        # which imports the server layer, which imports obs.
        from ..analysis.ascii_chart import sparkline

        spark_width = max(width - 18, 16)
        title = f"= fleet telemetry @ {self.now_ns * 1e-6:,.2f} ms sim "
        lines = [title + "=" * max(width - len(title), 0)]
        if not self.panels:
            lines.append("(no request telemetry yet)")
        for name in sorted(self.panels):
            panel = self.panels[name]
            latencies = panel.latencies()
            p99_ns = _p99(latencies)
            lines.append(
                f"{name:<12} n={panel.total:<6} ok {100.0 * panel.ok_fraction():5.1f}%"
                f"  rps {panel.window_rps():9,.0f}  p99 {p99_ns * _US:10,.1f} us"
            )
            lines.append(
                f"  lat(us)   |{sparkline([v * _US for v in latencies], width=spark_width)}|"
            )
            target_ns = self._latency_target_ns(name)
            if target_ns:
                fraction = p99_ns / target_ns
                lines.append(
                    f"  slo       {self._gauge_bar(fraction)} "
                    f"{100.0 * fraction:6.1f}% of {target_ns * _US:,.1f} us target"
                )
        fluid_fraction = self.gauges.get("cluster:fluid_fraction")
        if fluid_fraction is not None:
            # Only clusters running the fluid-approximation tier publish
            # this gauge (see repro.cluster.fluid).
            lines.append(
                f"fluid tier  {self._gauge_bar(fluid_fraction)} "
                f"{100.0 * fluid_fraction:5.1f}% of fleet   queued mass "
                f"{self.gauges.get('cluster:fluid_mass', 0.0):8,.1f}"
            )
        hop_gauges = {
            name[len("placement:hops:"):]: value
            for name, value in self.gauges.items()
            if name.startswith("placement:hops:")
        }
        if hop_gauges:
            # Only machines with off-package accelerator placements
            # publish these gauges (see repro.hw.placement).
            ranked = sorted(hop_gauges.items(), key=lambda kv: (-kv[1], kv[0]))
            lines.append(
                "placement hops  "
                + "  ".join(f"{site}={count:,.0f}" for site, count in ranked)
            )
        fault_total = sum(self.faults.values())
        lines.append(
            f"breakers open {self.open_breakers}   watchdogs {self.watchdog_timeouts}"
            f"   to-cpu {self.degraded_to_cpu}   faults {fault_total}"
            f"   shed {self.shed}   degraded {self.degraded}"
        )
        if self.faults:
            ranked = sorted(self.faults.items(), key=lambda kv: (-kv[1], kv[0]))
            lines.append(
                "  faults by category: "
                + "  ".join(f"{cat}={n}" for cat, n in ranked[:6])
            )
        lines.append("alerts:")
        if not self.alert_feed:
            lines.append("  (none)")
        for alert in self.alert_feed:
            lines.append(
                f"  [{alert.state.upper():<8}] {alert.alert:<24} "
                f"@ {alert.t_ns * 1e-6:9,.2f} ms  "
                f"burn fast {alert.burn_fast:6.1f} slow {alert.burn_slow:6.1f}"
            )
        return "\n".join(lines)

    def render_live(self, stream=None) -> None:
        """Redraw in place (ANSI home + clear-to-end)."""
        stream = stream or sys.stdout
        stream.write("\x1b[H\x1b[J" + self.snapshot() + "\n")
        stream.flush()


# ----------------------------------------------------------------------
# Self-contained demos (also back `accelflow-repro ... --dashboard`)
# ----------------------------------------------------------------------
def run_demo_server(
    architecture: str = "relief",
    scenario: str = "mgr-outage",
    requests: int = 300,
    seed: int = 0,
    rate_rps: float = 2000.0,
    live: bool = False,
    live_interval_ns: float = 5e6,
    stream=None,
):
    """One chaos cell (a :mod:`~repro.experiments.fig_faults` scenario)
    with the full telemetry plane attached.

    Returns a dict with the server, bus, dashboard, SLO monitor and
    flight recorder, for programmatic use; in ``live`` mode the
    dashboard additionally redraws on ``stream`` as sim time advances.
    """
    # Imported lazily: the experiments package pulls in the entire
    # harness, which this module must not load at import time.
    from ..experiments.fig_faults import SCENARIOS, SLO_MULTIPLIER
    from ..server.machine import SimulatedServer
    from ..workloads import social_network_services
    from ..workloads.arrivals import make_arrivals
    from .config import ObsConfig
    from .slo import SLOMonitorConfig, SLOTarget

    if scenario not in SCENARIOS:
        raise ValueError(
            f"unknown scenario {scenario!r}; known: {sorted(SCENARIOS)}"
        )
    service = "StoreP"
    spec = next(s for s in social_network_services() if s.name == service)

    def _measure(faults, obs, n):
        server = SimulatedServer(
            architecture, seed=seed, faults=faults, obs=obs
        )
        arrivals = make_arrivals(
            "poisson", rate_rps, server.streams.stream(f"arrivals/{spec.name}")
        )
        in_flight = []

        def source(env):
            for _ in range(n):
                yield env.timeout(arrivals.next_gap_ns())
                request = server.make_request(spec)
                in_flight.append((request, server.submit(request)))

        env = server.env
        src = env.process(source(env), name="dash-src")

        def watch(env):
            yield src
            yield env.all_of([process for _, process in in_flight])

        watcher = env.process(watch(env), name="dash-watch")
        horizon = env.timeout(n / rate_rps * 1e9 + 100e6)
        return server, env.any_of([watcher, horizon]), in_flight

    # Fault-free calibration run pins the latency SLO, exactly like the
    # chaos experiment does (SLO = multiplier x clean mean latency).
    clean_n = min(requests, 150)
    clean_server, clean_until, clean_flight = _measure(None, None, clean_n)
    clean_server.env.run(until=clean_until)
    clean = [r.latency_ns for r, _ in clean_flight if r.completed]
    slo_ns = SLO_MULTIPLIER * (sum(clean) / len(clean)) if clean else 1e6

    obs = ObsConfig(
        trace=True,
        metrics=True,
        telemetry=True,
        flight_recorder=True,
        slo=SLOMonitorConfig(
            targets=(SLOTarget(service, availability=0.99, latency_ns=slo_ns),),
            fast_window_ns=2e6,
            slow_window_ns=2e7,
            burn_threshold=10.0,
            min_events=6,
        ),
    )
    server, until, in_flight = _measure(SCENARIOS[scenario], obs, requests)
    session = obs.sessions[-1]
    dashboard = Dashboard(session.bus, slo=obs.slo)
    env = server.env
    if live:  # pragma: no cover - interactive path
        while True:
            tick = env.timeout(live_interval_ns)
            env.run(until=env.any_of([until, tick]))
            dashboard.render_live(stream)
            if until.triggered:
                break
    else:
        env.run(until=until)
    session.slo_monitor.sweep(env.now)
    return {
        "server": server,
        "obs": obs,
        "bus": session.bus,
        "dashboard": dashboard,
        "monitor": session.slo_monitor,
        "recorder": session.recorder,
        "slo_ns": slo_ns,
        "in_flight": in_flight,
    }


def run_demo_cluster(
    requests: int = 200,
    seed: int = 0,
    machines: int = 2,
    rate_rps: float = 6000.0,
    architecture: str = "accelflow",
):
    """A small fleet losing a machine mid-run, with cluster telemetry.

    Returns the same dict shape as :func:`run_demo_server` (with
    ``result`` instead of ``server``/``in_flight``).
    """
    from ..cluster import ClusterConfig, MachineFailure, run_cluster
    from ..workloads import social_network_services
    from .config import ObsConfig
    from .slo import SLOMonitorConfig, SLOTarget

    service = "UniqId"
    specs = [s for s in social_network_services() if s.name == service]

    # Clean calibration run (full fleet, no failure) pins the SLO.
    clean = run_cluster(
        specs,
        ClusterConfig(
            architecture=architecture,
            machines=machines,
            requests_per_service=min(requests, 150),
            seed=seed,
            arrival_mode="poisson",
            rate_rps=rate_rps,
        ),
    )
    # Same guard as run_demo_server: a calibration run that completed
    # nothing (idle fleet, zero routable machines) falls back to a fixed
    # SLO instead of raising from the empty latency recorder.
    slo_ns = 5.0 * clean.mean_ns() if len(clean.recorder) else 1e6

    fail_at_ns = 0.35 * requests / rate_rps * 1e9
    obs = ObsConfig(
        trace=True,
        metrics=True,
        telemetry=True,
        flight_recorder=True,
        slo=SLOMonitorConfig(
            targets=(SLOTarget(service, availability=0.99, latency_ns=slo_ns),),
            fast_window_ns=2e6,
            slow_window_ns=2e7,
            burn_threshold=8.0,
            min_events=6,
        ),
    )
    config = ClusterConfig(
        architecture=architecture,
        machines=machines,
        requests_per_service=requests,
        seed=seed,
        arrival_mode="poisson",
        rate_rps=rate_rps,
        failures=(MachineFailure(at_ns=fail_at_ns, machine=machines - 1),),
        obs=obs,
    )
    # The dashboard must subscribe before the run, so build the cluster
    # pieces through run_cluster's config hook: subscribe on session
    # creation via a tiny shim around ObsConfig.make_session.
    original_make_session = obs.make_session
    dashboards = []

    def make_session(env):
        session = original_make_session(env)
        if session.bus is not None:
            dashboards.append(Dashboard(session.bus, slo=obs.slo))
        return session

    obs.make_session = make_session  # type: ignore[method-assign]
    result = run_cluster(specs, config)
    session = obs.sessions[-1]
    if session.slo_monitor is not None:
        session.slo_monitor.sweep(result.elapsed_ns)
    return {
        "result": result,
        "obs": obs,
        "bus": session.bus,
        "dashboard": dashboards[-1],
        "monitor": session.slo_monitor,
        "recorder": session.recorder,
        "slo_ns": slo_ns,
    }


def preview(experiment: str, scale: str = "smoke", seed: int = 0) -> Optional[str]:
    """Dashboard preview for ``accelflow-repro <exp> --dashboard``.

    Runs a small representative telemetry-enabled cell for experiments
    that have one (currently ``fig_faults`` and ``fig_cluster``) and
    returns its snapshot; None for experiments without a preview.
    """
    requests = {"smoke": 120, "quick": 250, "full": 500}.get(scale, 120)
    if experiment == "fig_faults":
        demo = run_demo_server(
            architecture="relief",
            scenario="mgr-outage",
            requests=requests,
            seed=seed,
        )
    elif experiment == "fig_cluster":
        demo = run_demo_cluster(requests=requests, seed=seed)
    else:
        return None
    header = (
        f"[dashboard preview: {experiment} telemetry cell, seed {seed}]\n"
    )
    return header + demo["dashboard"].snapshot()


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.dashboard",
        description="Live telemetry dashboard over a seeded chaos demo run.",
    )
    parser.add_argument("--architecture", default="relief")
    parser.add_argument("--scenario", default="mgr-outage")
    parser.add_argument("--requests", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--cluster", action="store_true",
        help="run the fleet demo (machine failure) instead of one server",
    )
    parser.add_argument(
        "--live", action="store_true",
        help="redraw the dashboard in place while the simulation runs",
    )
    parser.add_argument(
        "--bundle-out", default=None, metavar="PATH",
        help="write the latest flight-recorder incident bundle as JSON",
    )
    args = parser.parse_args(argv)

    if args.cluster:
        demo = run_demo_cluster(requests=args.requests, seed=args.seed)
    else:
        demo = run_demo_server(
            architecture=args.architecture,
            scenario=args.scenario,
            requests=args.requests,
            seed=args.seed,
            live=args.live,
        )
    print(demo["dashboard"].snapshot())
    monitor = demo["monitor"]
    recorder = demo["recorder"]
    print(
        f"\nalerts fired {len(monitor.fired_ever())}, "
        f"incidents captured {len(recorder.incidents)}"
        f" (suppressed {recorder.suppressed})"
    )
    if recorder.correlation:
        print("\nfault -> breach correlation:")
        print(recorder.correlation_table())
    if args.bundle_out:
        if recorder.incidents:
            recorder.write(args.bundle_out)
            print(f"\nwrote incident bundle to {args.bundle_out}")
        else:
            print("\nno incidents captured; no bundle written")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

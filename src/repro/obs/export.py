"""Chrome trace-event JSON export (``chrome://tracing`` / Perfetto).

Spans become complete ("X") events and instants become "i" events, all
under one process with one thread per track (accelerator, cores, DMA,
request lifelines). Timestamps convert from sim nanoseconds to the
format's microseconds. The output is the JSON *object* flavour of the
trace-event format: ``{"traceEvents": [...], ...}``.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .span import SpanTracer

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1


def _thread_metadata(tracks: List[str]) -> List[dict]:
    events = []
    for tid, track in enumerate(tracks):
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": track},
            }
        )
        events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": tid,
                "name": "thread_sort_index",
                "args": {"sort_index": tid},
            }
        )
    return events


def chrome_trace(tracer: SpanTracer) -> dict:
    """Render a tracer's spans as a trace-event JSON object.

    Spans still open at export (request in flight at the horizon, an
    alert still firing) are auto-closed at the current sim time with an
    ``unclosed: true`` attribute instead of being dropped silently; the
    total lands in ``otherData.unclosed``.
    """
    tracer.close_open_spans()
    tracks = tracer.tracks()
    tid_of: Dict[str, int] = {track: tid for tid, track in enumerate(tracks)}
    events: List[dict] = [
        {
            "ph": "M",
            "pid": _PID,
            "name": "process_name",
            "args": {"name": "repro-sim"},
        }
    ]
    events.extend(_thread_metadata(tracks))
    for span in tracer.spans:
        args = dict(span.args or {})
        if span.req is not None:
            args["req"] = span.req
        event = {
            "name": span.name,
            "cat": span.cat or "sim",
            "pid": _PID,
            "tid": tid_of[span.track],
            "ts": span.start_ns / 1000.0,
        }
        if span.is_instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = span.duration_ns / 1000.0
        if args:
            event["args"] = args
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "spans": len(tracer.spans),
            "dropped": tracer.dropped,
            "unclosed": tracer.unclosed,
            "sample_rate": tracer.sample_rate,
        },
    }


def write_chrome_trace(tracer: SpanTracer, path: str) -> str:
    """Write the Chrome trace JSON for ``tracer`` to ``path``."""
    payload = chrome_trace(tracer)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
    return path

"""Time-series metrics: ring-buffered gauges behind a periodic sampler.

A :class:`MetricsRegistry` owns named :class:`TimeSeries` ring buffers
and a simulation process that samples registered gauge callables every
``interval_ns``. The sampler stops after ``capacity`` ticks so a bare
``env.run()`` (no ``until``) still terminates; long experiments should
widen ``interval_ns`` or ``capacity`` to cover their horizon.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["MetricsRegistry", "TimeSeries", "sparkline_row"]


def sparkline_row(
    name: str,
    values: List[float],
    width: int = 60,
    label_width: Optional[int] = None,
) -> str:
    """One ``label |spark| min/last/max`` row, as used by
    :meth:`MetricsRegistry.render` and the experiment runner's progress
    report."""
    # Imported here: the analysis package pulls in the experiment
    # harness, which imports the server layer, which imports obs.
    from ..analysis.ascii_chart import sparkline

    label = name.ljust(label_width or len(name))
    if not values:
        return f"{label} (no samples)"
    # Non-finite samples (a rate gauge's 0/0, an unpopulated latency
    # percentile) must not poison min/last/max or the sparkline.
    finite = [v for v in values if math.isfinite(v)]
    if not finite:
        return f"{label} (no finite samples)"
    spark = sparkline(values, width=width)
    last = values[-1] if math.isfinite(values[-1]) else finite[-1]
    return (
        f"{label} |{spark}| "
        f"min {min(finite):,.1f}  last {last:,.1f}  "
        f"max {max(finite):,.1f}"
    )


class TimeSeries:
    """Fixed-capacity (time, value) ring buffer."""

    __slots__ = ("name", "_times", "_values")

    def __init__(self, name: str, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.name = name
        self._times: deque = deque(maxlen=capacity)
        self._values: deque = deque(maxlen=capacity)

    def push(self, t_ns: float, value: float) -> None:
        self._times.append(t_ns)
        self._values.append(value)

    @property
    def times(self) -> List[float]:
        return list(self._times)

    @property
    def values(self) -> List[float]:
        return list(self._values)

    def last(self) -> Optional[float]:
        return self._values[-1] if self._values else None

    def __len__(self) -> int:
        return len(self._values)


class MetricsRegistry:
    """Named gauges sampled periodically into ring buffers.

    * :meth:`gauge` registers a callable sampled verbatim each tick.
    * :meth:`rate_gauge` registers a monotonically increasing counter
      callable; the recorded series is its per-second rate of change.
    """

    def __init__(self, env, interval_ns: float = 1e6, capacity: int = 1024):
        if interval_ns <= 0:
            raise ValueError("interval_ns must be positive")
        self.env = env
        self.interval_ns = interval_ns
        self.capacity = capacity
        self.series: Dict[str, TimeSeries] = {}
        self._gauges: List[Tuple[str, Callable[[], float]]] = []
        self._rates: List[Tuple[str, Callable[[], float], List[float]]] = []
        self._started = False
        #: Incremented on every (re)start; a sampler process whose
        #: generation no longer matches has been superseded and must
        #: exit without recording anything.
        self._sampler_generation = 0
        self.ticks = 0
        #: Optional :class:`~repro.obs.telemetry.TelemetryBus`; each
        #: recorded sample is additionally published as ``MetricSample``.
        self.bus = None

    def gauge(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        """Sample ``fn()`` every tick into the series ``name``."""
        series = self._series(name)
        self._gauges.append((name, fn))
        return series

    def rate_gauge(self, name: str, fn: Callable[[], float]) -> TimeSeries:
        """Record the per-second growth rate of the counter ``fn()``."""
        series = self._series(name)
        self._rates.append((name, fn, [float(fn())]))
        return series

    def _series(self, name: str) -> TimeSeries:
        if name in self.series:
            raise ValueError(f"duplicate metric name {name!r}")
        series = TimeSeries(name, self.capacity)
        self.series[name] = series
        return series

    def start(self) -> None:
        """Launch the sampler process (idempotent).

        A ``stop()``/``start()`` pair arriving between two ticks of the
        old sampler supersedes it: the new generation token makes the
        old process exit at its pending tick instead of double-sampling
        every gauge alongside the replacement.
        """
        if self._started:
            return
        self._started = True
        self._sampler_generation += 1
        self.env.process(
            self._sampler(self._sampler_generation), name="obs-metrics"
        )

    def stop(self) -> None:
        """Make the sampler exit at its next tick."""
        self._started = False

    def _sampler(self, generation: int):
        env = self.env
        interval_s = self.interval_ns * 1e-9
        while self._started and self.ticks < self.capacity:
            yield env.timeout(self.interval_ns)
            if self._sampler_generation != generation:
                # Superseded while sleeping (stop() + start() before this
                # tick): the replacement owns the series now.
                return
            now = env.now
            self.ticks += 1
            for name, fn in self._gauges:
                value = float(fn())
                self.series[name].push(now, value)
                self._publish(now, name, value)
            for name, fn, prev in self._rates:
                current = float(fn())
                rate = (current - prev[0]) / interval_s
                self.series[name].push(now, rate)
                prev[0] = current
                self._publish(now, name, rate)

    def _publish(self, t_ns: float, name: str, value: float) -> None:
        if self.bus is not None:
            from .telemetry import MetricSample

            self.bus.publish(MetricSample(t_ns=t_ns, name=name, value=value))

    # -- rendering ---------------------------------------------------------
    def render(self, width: int = 60, names: Optional[List[str]] = None) -> str:
        """Sparkline block: one row per series with min/last/max."""
        chosen = names if names is not None else sorted(self.series)
        if not chosen:
            return "(no metrics)"
        label_width = max(len(n) for n in chosen)
        return "\n".join(
            sparkline_row(
                name, self.series[name].values, width=width,
                label_width=label_width,
            )
            for name in chosen
        )

"""Presentation helpers for the sim kernel's profiling hooks.

The collection itself lives in :class:`repro.sim.core.KernelProfile`
(enabled with ``Environment(profile=True)`` or
``ObsConfig.profile_kernel``); this module only renders its summary.
"""

from __future__ import annotations

__all__ = ["format_profile"]


def format_profile(env, top: int = 10) -> str:
    """Tabulate an environment's kernel profile (hot processes first)."""
    profile = getattr(env, "profile", None)
    if profile is None:
        return "(kernel profiling disabled)"
    stats = profile.summary()
    lines = [
        f"events processed : {stats['events']:,}",
        f"peak event queue : {stats['peak_queue']:,}",
        f"attributed wall  : {stats['wall_s'] * 1e3:,.1f} ms",
    ]
    rows = sorted(
        stats["by_process"].items(), key=lambda kv: kv[1]["wall_s"], reverse=True
    )
    if rows:
        name_width = max(len(name) for name, _ in rows[:top])
        lines.append(f"{'process'.ljust(name_width)}  {'events':>10}  {'wall':>9}")
        for name, row in rows[:top]:
            lines.append(
                f"{name.ljust(name_width)}  {row['events']:>10,}  "
                f"{row['wall_s'] * 1e3:>7,.1f}ms"
            )
        if len(rows) > top:
            lines.append(f"... and {len(rows) - top} more process groups")
    return "\n".join(lines)

"""Incident flight recorder: ring-buffered evidence capture.

The :class:`FlightRecorder` subscribes to *everything* on the telemetry
bus and keeps the last ``capacity`` events in its own ring. When an
alert starts firing, a circuit breaker opens, or a watchdog times out,
it freezes the ring into a self-contained **incident bundle**:

* a Perfetto-loadable trace slice built from the ring's ``SpanEnd``
  events (plus an instant marking the trigger),
* a metric snapshot (last sampled value per series),
* the fault-plane activity preceding the trigger,
* recovery-plane state (open breakers, recent watchdogs),
* the set of alerts active at capture time,
* and a fault→breach correlation: which injected fault categories
  preceded this alert/trip inside the ring window.

Bundles are plain JSON-serializable dicts (``schema`` key versions the
layout); :meth:`FlightRecorder.write` dumps one to disk so a chaos run
turns into a browsable incident. A cooldown keeps a cascading failure
from producing a bundle per event, and the incident list itself is
bounded.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Dict, List, Optional

from .telemetry import (
    AlertFired,
    FaultInjected,
    MetricSample,
    RecoveryEvent,
    SpanEnd,
    TelemetryBus,
    TelemetryEvent,
)

__all__ = ["FlightRecorder", "trace_from_span_events"]

_PID = 1

#: RecoveryEvent kinds that trigger a capture.
_RECOVERY_TRIGGERS = ("breaker-open", "watchdog-timeout")


def trace_from_span_events(
    span_events: List[SpanEnd], extra_instants: Optional[List[dict]] = None
) -> dict:
    """Chrome trace-event JSON object from streamed ``SpanEnd`` events.

    Mirrors :func:`repro.obs.export.chrome_trace`, but over the bus's
    event stream instead of a tracer's retained span list — the
    recorder must be able to cut a trace slice even when span retention
    was disabled or already truncated.
    """
    tracks: Dict[str, int] = {}
    for event in span_events:
        if event.track not in tracks:
            tracks[event.track] = len(tracks)
    events: List[dict] = [
        {"ph": "M", "pid": _PID, "name": "process_name",
         "args": {"name": "repro-incident"}}
    ]
    for track, tid in tracks.items():
        events.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_name", "args": {"name": track}})
        events.append({"ph": "M", "pid": _PID, "tid": tid,
                       "name": "thread_sort_index",
                       "args": {"sort_index": tid}})
    for span in span_events:
        args = dict(span.args or {})
        if span.req is not None:
            args["req"] = span.req
        entry: Dict[str, Any] = {
            "name": span.name,
            "cat": span.cat or "sim",
            "pid": _PID,
            "tid": tracks[span.track],
            "ts": span.start_ns / 1000.0,
        }
        if span.end_ns == span.start_ns:
            entry["ph"] = "i"
            entry["s"] = "t"
        else:
            entry["ph"] = "X"
            entry["dur"] = (span.end_ns - span.start_ns) / 1000.0
        if args:
            entry["args"] = args
        events.append(entry)
    events.extend(extra_instants or [])
    return {"traceEvents": events, "displayTimeUnit": "ns"}


class FlightRecorder:
    """Always-on ring buffer that freezes into incident bundles."""

    def __init__(
        self,
        bus: TelemetryBus,
        capacity: int = 2048,
        cooldown_ns: float = 1e6,
        max_incidents: int = 8,
    ):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if max_incidents <= 0:
            raise ValueError("max_incidents must be positive")
        self.bus = bus
        self.cooldown_ns = cooldown_ns
        self.max_incidents = max_incidents
        self.ring: deque = deque(maxlen=capacity)
        self.incidents: List[dict] = []
        self.triggered = 0
        self.suppressed = 0
        self.incidents_dropped = 0
        self.open_breakers = 0
        #: Last capture time *per trigger kind* (alert-firing,
        #: breaker-open, watchdog-timeout). A shared window would let a
        #: storm of one kind suppress the first capture of another —
        #: exactly the bundle an incident review needs.
        self._last_trigger_ns: Dict[str, float] = {}
        #: alert/trip name -> fault category -> count, aggregated over
        #: every capture (the fault→breach correlation table).
        self.correlation: Dict[str, Dict[str, int]] = {}
        bus.subscribe(self._on_event)

    # -- event intake ------------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        self.ring.append(event)
        if isinstance(event, RecoveryEvent):
            if event.kind_name == "breaker-open":
                self.open_breakers += 1
            elif event.kind_name == "breaker-close":
                self.open_breakers = max(self.open_breakers - 1, 0)
            if event.kind_name in _RECOVERY_TRIGGERS:
                self._trigger(event.kind_name, event)
        elif isinstance(event, AlertFired) and event.state == "firing":
            self._trigger("alert-firing", event)

    def _trigger(self, reason: str, event: TelemetryEvent) -> None:
        self.triggered += 1
        breach = self._breach_name(reason, event)
        self._correlate(breach, event.t_ns)
        last = self._last_trigger_ns.get(reason)
        if last is not None and event.t_ns - last < self.cooldown_ns:
            self.suppressed += 1
            return
        self._last_trigger_ns[reason] = event.t_ns
        self.incidents.append(self.capture(reason, event))
        if len(self.incidents) > self.max_incidents:
            self.incidents.pop(0)
            self.incidents_dropped += 1

    @staticmethod
    def _breach_name(reason: str, event: TelemetryEvent) -> str:
        if isinstance(event, AlertFired):
            return event.alert
        return reason

    def _correlate(self, breach: str, now_ns: float) -> None:
        """Count the fault categories injected before this breach."""
        per_breach = self.correlation.setdefault(breach, {})
        for event in self.ring:
            if isinstance(event, FaultInjected) and event.t_ns <= now_ns:
                per_breach[event.category] = per_breach.get(event.category, 0) + 1

    # -- capture -----------------------------------------------------------
    def capture(self, reason: str, trigger: TelemetryEvent) -> dict:
        """Freeze the ring into one self-contained incident bundle."""
        now = trigger.t_ns
        span_events = [e for e in self.ring if isinstance(e, SpanEnd)]
        metrics: Dict[str, Dict[str, float]] = {}
        faults: Dict[str, int] = {}
        recoveries: Dict[str, int] = {}
        active_alerts: Dict[str, str] = {}
        for event in self.ring:
            if isinstance(event, MetricSample):
                metrics[event.name] = {"last": event.value, "t_ns": event.t_ns}
            elif isinstance(event, FaultInjected):
                faults[event.category] = faults.get(event.category, 0) + 1
            elif isinstance(event, RecoveryEvent):
                recoveries[event.kind_name] = recoveries.get(event.kind_name, 0) + 1
            elif isinstance(event, AlertFired):
                if event.state in ("pending", "firing"):
                    active_alerts[event.alert] = event.state
                else:
                    active_alerts.pop(event.alert, None)
        marker = {
            "ph": "i", "s": "g", "pid": _PID, "tid": 0,
            "name": f"incident: {reason}", "cat": "incident",
            "ts": now / 1000.0,
        }
        return {
            "schema": "accelflow-incident/1",
            "reason": reason,
            "t_ns": now,
            "trigger": trigger.to_dict(),
            "trace": trace_from_span_events(span_events, [marker]),
            "metrics": metrics,
            "faults_in_window": faults,
            "recovery_in_window": recoveries,
            "open_breakers": self.open_breakers,
            "active_alerts": active_alerts,
            "events_in_window": len(self.ring),
            "correlation": {
                breach: dict(categories)
                for breach, categories in self.correlation.items()
            },
        }

    # -- output ------------------------------------------------------------
    def write(self, path: str, index: int = -1) -> str:
        """Dump one incident bundle (default: the most recent) as JSON."""
        if not self.incidents:
            raise ValueError("no incidents captured")
        with open(path, "w") as handle:
            json.dump(self.incidents[index], handle, indent=1, default=str)
        return path

    def correlation_table(self) -> str:
        """Fault→breach correlation as fixed-width text."""
        if not self.correlation:
            return "(no breaches recorded)"
        lines = ["breach                          fault category        preceded"]
        lines.append("-" * len(lines[0]))
        for breach in sorted(self.correlation):
            categories = self.correlation[breach]
            if not categories:
                lines.append(f"{breach:<32}(no faults in window)")
                continue
            ranked = sorted(categories.items(), key=lambda kv: (-kv[1], kv[0]))
            for category, count in ranked:
                lines.append(f"{breach:<32}{category:<22}{count:>8}")
        return "\n".join(lines)

    def stats(self) -> Dict[str, float]:
        return {
            "triggered": float(self.triggered),
            "captured": float(len(self.incidents)),
            "suppressed": float(self.suppressed),
            "incidents_dropped": float(self.incidents_dropped),
            "open_breakers": float(self.open_breakers),
            "events_in_ring": float(len(self.ring)),
        }

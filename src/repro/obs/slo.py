"""Live SLO monitoring: multi-window burn-rate alerts over the bus.

The :class:`SLOMonitor` subscribes to :class:`~repro.obs.telemetry.
RequestEnd` events and keeps, per monitored service, a sliding window
of good/bad outcomes. A request is *bad* when it errored, timed out,
was shed or lost, or — when the target sets a latency SLO — completed
slower than ``latency_ns``. The monitor computes the classic
multi-window burn rate

    burn = (bad fraction of the window) / (1 - availability target)

over a fast and a slow window simultaneously (Google SRE's
multi-window multi-burn-rate recipe, in simulated time). An alert
becomes *pending* when both windows burn past the threshold, *firing*
once the condition has held for ``pending_for_ns``, and *resolved*
after the condition has stayed clear for ``resolve_after_ns`` —
hysteresis in both directions, so a single straggler neither fires nor
flaps an alert.

Alert lifecycle is triple-reported: an :class:`~repro.obs.telemetry.
AlertFired` event per transition on the bus (which is what the flight
recorder and the dashboard consume), a first-class span per firing
interval on the tracer (so alerts land in Perfetto exports on an
``alerts`` track), and the :attr:`SLOMonitor.history` list for
post-run inspection.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from .telemetry import AlertFired, RequestEnd, TelemetryBus

__all__ = ["Alert", "AlertState", "SLOMonitor", "SLOMonitorConfig", "SLOTarget"]


class AlertState:
    INACTIVE = "inactive"
    PENDING = "pending"
    FIRING = "firing"
    RESOLVED = "resolved"


@dataclass(frozen=True)
class SLOTarget:
    """The objective of one service (or ``"*"`` for any service)."""

    service: str
    #: Availability objective in (0, 1); its complement is the error
    #: budget the burn rate is measured against.
    availability: float = 0.999
    #: Per-request latency SLO; completions slower than this count
    #: against the availability budget (None: only errors count).
    latency_ns: Optional[float] = None

    def __post_init__(self):
        if not 0.0 < self.availability < 1.0:
            raise ValueError(
                f"availability must be in (0, 1), got {self.availability}"
            )
        if self.latency_ns is not None and self.latency_ns <= 0:
            raise ValueError("latency_ns must be positive when set")

    @property
    def budget(self) -> float:
        return 1.0 - self.availability


@dataclass(frozen=True)
class SLOMonitorConfig:
    """Window geometry and alert hysteresis of one monitor."""

    targets: Tuple[SLOTarget, ...]
    #: Fast window: catches sharp burns (sim nanoseconds).
    fast_window_ns: float = 1e9
    #: Slow window: confirms the burn is sustained.
    slow_window_ns: float = 60e9
    #: Both windows must burn at or past this multiple of the budget.
    burn_threshold: float = 14.4
    #: Ignore windows with fewer outcomes than this (cold start).
    min_events: int = 6
    #: Condition must hold this long before pending promotes to firing.
    pending_for_ns: float = 0.0
    #: Condition must stay clear this long before firing resolves
    #: (None: one fast window).
    resolve_after_ns: Optional[float] = None

    def __post_init__(self):
        if not self.targets:
            raise ValueError("SLOMonitorConfig needs at least one target")
        if self.fast_window_ns <= 0 or self.slow_window_ns <= 0:
            raise ValueError("windows must be positive")
        if self.fast_window_ns > self.slow_window_ns:
            raise ValueError("fast window must not exceed the slow window")
        if self.burn_threshold <= 0:
            raise ValueError("burn_threshold must be positive")
        if self.min_events <= 0:
            raise ValueError("min_events must be positive")

    @property
    def resolve_ns(self) -> float:
        if self.resolve_after_ns is not None:
            return self.resolve_after_ns
        return self.fast_window_ns


class Alert:
    """Lifecycle record of one service's burn-rate alert."""

    __slots__ = (
        "name", "service", "state", "pending_since_ns", "fired_at_ns",
        "resolved_at_ns", "peak_burn_fast", "peak_burn_slow", "span",
        "_healthy_since_ns",
    )

    def __init__(self, name: str, service: str):
        self.name = name
        self.service = service
        self.state = AlertState.INACTIVE
        self.pending_since_ns: Optional[float] = None
        self.fired_at_ns: Optional[float] = None
        self.resolved_at_ns: Optional[float] = None
        self.peak_burn_fast = 0.0
        self.peak_burn_slow = 0.0
        self.span = None
        self._healthy_since_ns: Optional[float] = None

    def __repr__(self) -> str:
        return f"Alert({self.name!r}, {self.state})"


class _ServiceWindow:
    """Sliding (t_ns, bad) outcome window for one service."""

    __slots__ = ("target", "events", "bad_total")

    def __init__(self, target: SLOTarget):
        self.target = target
        self.events: Deque[Tuple[float, bool]] = deque()
        self.bad_total = 0  # bad count over the retained (slow) window

    def add(self, t_ns: float, bad: bool) -> None:
        self.events.append((t_ns, bad))
        if bad:
            self.bad_total += 1

    def prune(self, now_ns: float, slow_window_ns: float) -> None:
        """Drop outcomes that left the slow window.

        Window membership is ``t > now - window``: an outcome exactly
        one window old has aged out (the edge-alignment contract the
        tests pin down).
        """
        horizon = now_ns - slow_window_ns
        events = self.events
        while events and events[0][0] <= horizon:
            _, bad = events.popleft()
            if bad:
                self.bad_total -= 1

    def burn_rates(
        self, now_ns: float, config: SLOMonitorConfig
    ) -> Tuple[float, float]:
        """(fast, slow) burn rates; 0.0 while a window is under-sampled."""
        self.prune(now_ns, config.slow_window_ns)
        budget = self.target.budget
        slow_n = len(self.events)
        if slow_n >= config.min_events:
            slow = (self.bad_total / slow_n) / budget
        else:
            slow = 0.0
        fast_horizon = now_ns - config.fast_window_ns
        fast_n = fast_bad = 0
        for t_ns, bad in reversed(self.events):
            if t_ns <= fast_horizon:
                break
            fast_n += 1
            if bad:
                fast_bad += 1
        fast = (fast_bad / fast_n) / budget if fast_n >= config.min_events else 0.0
        return fast, slow


class SLOMonitor:
    """Burn-rate alerting subscriber; see the module docstring."""

    def __init__(
        self,
        bus: TelemetryBus,
        config: SLOMonitorConfig,
        tracer=None,
    ):
        self.bus = bus
        self.config = config
        self.tracer = tracer
        self._exact: Dict[str, SLOTarget] = {}
        self._wildcard: Optional[SLOTarget] = None
        for target in config.targets:
            if target.service == "*":
                self._wildcard = target
            else:
                self._exact[target.service] = target
        self._windows: Dict[str, _ServiceWindow] = {}
        self.alerts: Dict[str, Alert] = {}
        #: Every firing->resolved cycle, in resolution order.
        self.history: List[Alert] = []
        self.events_seen = 0
        bus.subscribe(self._on_request, kinds=(RequestEnd,))

    # -- classification ----------------------------------------------------
    def target_for(self, service: str) -> Optional[SLOTarget]:
        target = self._exact.get(service)
        if target is None:
            target = self._wildcard
        return target

    def is_bad(self, event: RequestEnd, target: SLOTarget) -> bool:
        if not event.ok:
            return True
        if target.latency_ns is not None and event.latency_ns > target.latency_ns:
            return True
        return False

    # -- event handling ----------------------------------------------------
    def _on_request(self, event: RequestEnd) -> None:
        target = self.target_for(event.service)
        if target is None:
            return
        self.events_seen += 1
        window = self._windows.get(event.service)
        if window is None:
            window = _ServiceWindow(target)
            self._windows[event.service] = window
        window.add(event.t_ns, self.is_bad(event, target))
        self.sweep(event.t_ns)

    def sweep(self, now_ns: float) -> None:
        """Re-evaluate every monitored service at ``now_ns``.

        Called on each outcome, and callable explicitly (e.g. at the
        end of a run) so quiet services can still resolve.
        """
        for service, window in self._windows.items():
            fast, slow = window.burn_rates(now_ns, self.config)
            self._advance(service, fast, slow, now_ns)

    # -- alert lifecycle ---------------------------------------------------
    def _alert(self, service: str) -> Alert:
        alert = self.alerts.get(service)
        if alert is None:
            alert = Alert(f"slo-burn:{service}", service)
            self.alerts[service] = alert
        return alert

    def _advance(
        self, service: str, fast: float, slow: float, now_ns: float
    ) -> None:
        config = self.config
        alert = self._alert(service)
        burning = fast >= config.burn_threshold and slow >= config.burn_threshold
        if burning:
            alert.peak_burn_fast = max(alert.peak_burn_fast, fast)
            alert.peak_burn_slow = max(alert.peak_burn_slow, slow)
        if alert.state == AlertState.INACTIVE:
            if burning:
                alert.state = AlertState.PENDING
                alert.pending_since_ns = now_ns
                self._transition(alert, AlertState.PENDING, fast, slow, now_ns)
                # A zero pending hold promotes immediately.
                self._advance(service, fast, slow, now_ns)
        elif alert.state == AlertState.PENDING:
            if not burning:
                alert.state = AlertState.INACTIVE
                alert.pending_since_ns = None
                if self.tracer is not None:
                    self.tracer.instant(
                        f"alert-cancelled {alert.name}", "alerts",
                        args={"service": service},
                    )
            elif now_ns - alert.pending_since_ns >= config.pending_for_ns:
                alert.state = AlertState.FIRING
                alert.fired_at_ns = now_ns
                alert._healthy_since_ns = None
                if self.tracer is not None:
                    alert.span = self.tracer.begin(
                        f"alert {alert.name}", "alerts", cat="alert",
                        args={"service": service,
                              "burn_fast": round(fast, 2),
                              "burn_slow": round(slow, 2)},
                    )
                self._transition(alert, AlertState.FIRING, fast, slow, now_ns)
        elif alert.state == AlertState.FIRING:
            if burning:
                alert._healthy_since_ns = None
            else:
                if alert._healthy_since_ns is None:
                    alert._healthy_since_ns = now_ns
                if now_ns - alert._healthy_since_ns >= config.resolve_ns:
                    alert.resolved_at_ns = now_ns
                    alert.state = AlertState.RESOLVED
                    if self.tracer is not None and alert.span is not None:
                        self.tracer.end(alert.span, resolved=True)
                    self._transition(alert, AlertState.RESOLVED, fast, slow, now_ns)
                    self.history.append(alert)
                    # A fresh Alert object tracks any future burn.
                    del self.alerts[service]

    def _transition(
        self, alert: Alert, state: str, fast: float, slow: float, now_ns: float
    ) -> None:
        self.bus.publish(
            AlertFired(
                t_ns=now_ns,
                alert=alert.name,
                service=alert.service,
                state=state,
                burn_fast=fast,
                burn_slow=slow,
            )
        )
        if self.tracer is not None and state == AlertState.PENDING:
            self.tracer.instant(
                f"alert-pending {alert.name}", "alerts",
                args={"service": alert.service, "burn_fast": round(fast, 2)},
            )

    # -- access ------------------------------------------------------------
    def firing(self) -> List[Alert]:
        """Alerts currently in the firing state."""
        return [a for a in self.alerts.values() if a.state == AlertState.FIRING]

    def fired_ever(self) -> List[Alert]:
        """Every alert that reached firing (resolved or still open)."""
        return self.history + self.firing()

    def stats(self) -> Dict[str, float]:
        return {
            "events_seen": float(self.events_seen),
            "firing": float(len(self.firing())),
            "resolved": float(len(self.history)),
        }

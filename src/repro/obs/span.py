"""Span tracer: nested per-request spans with sim timestamps.

A :class:`Span` covers one piece of work attributed to a *track* (one
"thread" per accelerator/core in the exported trace) and optionally to
one sampled request. Sampling is deterministic stride sampling per
service — for a fixed RNG seed two runs produce identical traces —
and request ids are renumbered to trace-local indices so traces do not
depend on how many requests earlier tests/runs created.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

__all__ = ["Span", "SpanTracer"]


class Span:
    """One completed or in-flight span on a track."""

    __slots__ = ("name", "track", "cat", "start_ns", "end_ns", "req", "args")

    def __init__(
        self,
        name: str,
        track: str,
        start_ns: float,
        end_ns: Optional[float] = None,
        req: Optional[int] = None,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
    ):
        self.name = name
        self.track = track
        self.cat = cat
        self.start_ns = start_ns
        self.end_ns = end_ns
        #: Trace-local request index (None for hardware-level spans).
        self.req = req
        self.args = args

    @property
    def duration_ns(self) -> float:
        if self.end_ns is None:
            raise ValueError(f"span {self.name!r} has not ended")
        return self.end_ns - self.start_ns

    @property
    def is_instant(self) -> bool:
        return self.end_ns is not None and self.end_ns == self.start_ns

    def __repr__(self) -> str:
        end = f"{self.end_ns:.0f}" if self.end_ns is not None else "..."
        return f"Span({self.name!r}, {self.track}, [{self.start_ns:.0f}, {end}])"


class SpanTracer:
    """Collects spans for a deterministic sample of requests.

    ``sample_rate`` is the fraction of requests traced per service
    (stride sampling: rate 0.25 keeps every 4th request of a service).
    ``services`` optionally restricts tracing to the named services.
    ``max_spans`` bounds memory; further spans are counted as dropped.
    """

    def __init__(
        self,
        env,
        sample_rate: float = 1.0,
        services: Optional[Sequence[str]] = None,
        max_spans: int = 200_000,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        self.env = env
        self.sample_rate = sample_rate
        self.services = frozenset(services) if services is not None else None
        self.max_spans = max_spans
        self.spans: List[Span] = []
        self.dropped = 0
        #: Spans auto-closed because they were still open at export.
        self.unclosed = 0
        #: Optional :class:`~repro.obs.telemetry.TelemetryBus`; closed
        #: spans are additionally published as ``SpanEnd`` events.
        self.bus = None
        #: Per-service stride accumulator for deterministic sampling.
        self._stride: Dict[str, float] = {}
        #: Global request id -> trace-local index, for every sampled
        #: request ever seen (kept so late spans still resolve).
        self._local_ids: Dict[int, int] = {}
        #: Global ids of requests currently in flight and sampled.
        self._sampled: set = set()

    # -- sampling ----------------------------------------------------------
    def sample_request(self, request) -> bool:
        """Decide (deterministically) whether to trace ``request``."""
        name = request.spec.name
        if self.services is not None and name not in self.services:
            return False
        if self.sample_rate <= 0.0:
            return False
        acc = self._stride.get(name, 0.0) + self.sample_rate
        take = acc >= 1.0 - 1e-12
        if take:
            acc -= 1.0
            self._local_ids[request.rid] = len(self._local_ids)
            self._sampled.add(request.rid)
        self._stride[name] = acc
        return take

    def is_sampled(self, rid: int) -> bool:
        """True while the request with global id ``rid`` is being traced."""
        return rid in self._sampled

    def finish_request(self, rid: int) -> None:
        """Stop tracking a completed request (its spans are kept)."""
        self._sampled.discard(rid)

    def local_id(self, rid: Optional[int]) -> Optional[int]:
        """Trace-local index of a sampled request's global id."""
        if rid is None:
            return None
        return self._local_ids.get(rid)

    # -- recording ---------------------------------------------------------
    def _admit(self, span: Span) -> Optional[Span]:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return None
        self.spans.append(span)
        return span

    def begin(
        self,
        name: str,
        track: str,
        rid: Optional[int] = None,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Open a span at the current sim time; close it with :meth:`end`."""
        return self._admit(
            Span(name, track, self.env.now, None, self.local_id(rid), cat, args)
        )

    def _publish(self, span: Optional[Span]) -> Optional[Span]:
        """Stream a closed span onto the telemetry bus (when attached)."""
        if span is not None and self.bus is not None:
            from .telemetry import SpanEnd

            self.bus.publish(
                SpanEnd(
                    t_ns=span.end_ns,
                    name=span.name,
                    track=span.track,
                    start_ns=span.start_ns,
                    end_ns=span.end_ns,
                    req=span.req,
                    cat=span.cat,
                    args=span.args,
                )
            )
        return span

    def end(self, span: Optional[Span], **extra_args: Any) -> None:
        """Close a span opened with :meth:`begin` at the current sim time."""
        if span is None:  # dropped at begin() time
            return
        span.end_ns = self.env.now
        if extra_args:
            span.args = {**(span.args or {}), **extra_args}
        self._publish(span)

    def complete(
        self,
        name: str,
        track: str,
        start_ns: float,
        end_ns: float,
        rid: Optional[int] = None,
        cat: str = "",
        args: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Record a span whose start and end are already known."""
        return self._publish(
            self._admit(
                Span(name, track, start_ns, end_ns, self.local_id(rid), cat, args)
            )
        )

    def instant(
        self,
        name: str,
        track: str,
        rid: Optional[int] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Record a zero-duration marker at the current sim time."""
        now = self.env.now
        return self._publish(
            self._admit(
                Span(name, track, now, now, self.local_id(rid), "instant", args)
            )
        )

    def close_open_spans(self) -> int:
        """Close every span still open, at the current sim time.

        Spans left open when the environment finishes (a request in
        flight at the horizon, an alert still firing) used to vanish
        silently from exports. They now get ``end_ns = now`` and an
        ``unclosed: true`` attribute, are counted on :attr:`unclosed`,
        and are published to the bus like any other closed span.
        Returns how many spans were closed by this call.
        """
        now = self.env.now
        closed = 0
        for span in self.spans:
            if span.end_ns is None:
                span.end_ns = now
                span.args = {**(span.args or {}), "unclosed": True}
                self.unclosed += 1
                closed += 1
                self._publish(span)
        return closed

    # -- access ------------------------------------------------------------
    def tracks(self) -> List[str]:
        """All track names, in first-seen (deterministic) order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        return list(seen)

    def spans_for(
        self, track: Optional[str] = None, req: Optional[int] = None
    ) -> List[Span]:
        """Spans filtered by track and/or trace-local request index."""
        out = self.spans
        if track is not None:
            out = [s for s in out if s.track == track]
        if req is not None:
            out = [s for s in out if s.req == req]
        return list(out)

    def __len__(self) -> int:
        return len(self.spans)

"""Streaming telemetry: typed events on a bounded pub/sub bus.

The :class:`TelemetryBus` is the live counterpart of the post-hoc obs
objects. Producers — the span tracer, the metrics sampler, the fault
plane, the recovery plane, orchestrators, the cluster front door and
the experiment drivers — publish typed events *as they happen* in
simulated time; subscribers (the SLO monitor, the flight recorder, the
dashboard, tests) react inline. Publishing is synchronous: the
simulation is single-threaded, so an event is fully handled before the
producer resumes, and an event published while another is being
dispatched (e.g. an :class:`AlertFired` raised by the SLO monitor
inside a :class:`RequestEnd` delivery) nests cleanly.

Boundedness shows up in two places: the bus itself keeps the last
``capacity`` events in a ring for late consumers (overwrites are
counted, never silent), and pull-mode :class:`TelemetrySubscription`
queues created with :meth:`TelemetryBus.tail` drop their oldest entry
when full, again counting the loss.

Everything is opt-in through ``ObsConfig.telemetry``; with the bus
absent, every instrumentation point costs one ``is not None`` check —
the same zero-cost contract as the rest of the obs subsystem.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Type

__all__ = [
    "AdmissionEvent",
    "AlertFired",
    "AwaitableTail",
    "FaultInjected",
    "HealthEvent",
    "Marker",
    "MetricSample",
    "RecoveryEvent",
    "RequestEnd",
    "SpanEnd",
    "TelemetryBus",
    "TelemetryEvent",
    "TelemetrySubscription",
]


# ----------------------------------------------------------------------
# Event types
# ----------------------------------------------------------------------
@dataclass
class TelemetryEvent:
    """Base of every bus event; ``t_ns`` is the simulated timestamp."""

    t_ns: float

    @property
    def kind(self) -> str:
        return type(self).__name__

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly rendering (used by incident bundles)."""
        payload: Dict[str, Any] = {"kind": self.kind}
        payload.update(self.__dict__)
        return payload


@dataclass
class SpanEnd(TelemetryEvent):
    """A span closed on the tracer (complete spans and instants)."""

    name: str
    track: str
    start_ns: float
    end_ns: float
    req: Optional[int] = None
    cat: str = ""
    args: Optional[Dict[str, Any]] = None


@dataclass
class MetricSample(TelemetryEvent):
    """One gauge sample recorded by the metrics sampler."""

    name: str
    value: float


@dataclass
class FaultInjected(TelemetryEvent):
    """The fault plane injected something (category = emit name)."""

    category: str
    args: Optional[Dict[str, Any]] = None


@dataclass
class RequestEnd(TelemetryEvent):
    """A request reached its terminal state (the SLO datapath signal).

    ``status`` is ``"ok"`` for ordinary completions; the cluster front
    door also publishes ``"shed"`` and ``"lost"`` terminals.
    """

    service: str
    latency_ns: float
    ok: bool
    error: bool = False
    timed_out: bool = False
    fell_back: bool = False
    status: str = "ok"
    #: Front-door request id, when the publisher knows it. The cluster
    #: publishes the id the request *arrived* with (reroute clones keep
    #: reporting under the original), so the serving façade can match a
    #: terminal event back to an awaiting caller.
    rid: Optional[int] = None


@dataclass
class RecoveryEvent(TelemetryEvent):
    """Recovery-plane activity: watchdogs, breakers, CPU degradation.

    ``kind_name`` is one of ``"watchdog-timeout"``, ``"breaker-open"``,
    ``"breaker-close"``, ``"degraded-to-cpu"``.
    """

    kind_name: str
    args: Optional[Dict[str, Any]] = None


@dataclass
class AdmissionEvent(TelemetryEvent):
    """The cluster front door shed or degraded an arriving request."""

    service: str
    decision: str
    #: Front-door request id (same contract as :class:`RequestEnd`).
    rid: Optional[int] = None


@dataclass
class AlertFired(TelemetryEvent):
    """An SLO alert changed state (``pending``/``firing``/``resolved``)."""

    alert: str
    service: str
    state: str
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    args: Optional[Dict[str, Any]] = None


@dataclass
class HealthEvent(TelemetryEvent):
    """A machine's health state changed (``healthy``/``ejected``/``trial``)."""

    machine: int
    state: str
    score: float
    args: Optional[Dict[str, Any]] = None


@dataclass
class Marker(TelemetryEvent):
    """Free-form lifecycle marker (run start/end, fleet membership)."""

    name: str
    args: Optional[Dict[str, Any]] = None


# ----------------------------------------------------------------------
# The bus
# ----------------------------------------------------------------------
class TelemetrySubscription:
    """Pull-mode bounded queue attached to a bus via :meth:`~TelemetryBus.tail`."""

    __slots__ = ("kinds", "queue", "dropped")

    def __init__(self, kinds: Optional[Tuple[type, ...]], maxlen: int):
        if maxlen <= 0:
            raise ValueError("maxlen must be positive")
        self.kinds = kinds
        self.queue: deque = deque(maxlen=maxlen)
        self.dropped = 0

    def _offer(self, event: TelemetryEvent) -> None:
        if len(self.queue) == self.queue.maxlen:
            self.dropped += 1
        self.queue.append(event)

    def drain(self) -> List[TelemetryEvent]:
        """Take (and clear) everything queued since the last drain."""
        items = list(self.queue)
        self.queue.clear()
        return items

    def __len__(self) -> int:
        return len(self.queue)


class AwaitableTail(TelemetrySubscription):
    """A pull-mode tail that asyncio consumers can ``await``.

    The simulation publishes synchronously (often from inside an
    ``Environment.run`` slice driven by the serving façade's pacer);
    an :class:`AwaitableTail` bridges that to the asyncio world:
    :meth:`next` returns the oldest queued event, suspending the caller
    until one arrives, and the tail is also an async iterator::

        tail = bus.atail([RequestEnd])
        async for event in tail:
            ...

    :meth:`close` wakes every waiter and ends iteration once the queue
    is drained. Boundedness is inherited from the plain tail: the
    oldest entry is dropped (and counted) when the queue is full.
    """

    __slots__ = ("_waiters", "closed")

    def __init__(self, kinds: Optional[Tuple[type, ...]], maxlen: int):
        super().__init__(kinds, maxlen)
        self._waiters: List["asyncio.Future"] = []
        self.closed = False

    def _offer(self, event: TelemetryEvent) -> None:
        super()._offer(event)
        self._wake()

    def _wake(self) -> None:
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(None)

    def close(self) -> None:
        """Stop the tail: pending/future :meth:`next` calls drain the
        queue, then raise ``StopAsyncIteration``."""
        self.closed = True
        self._wake()

    async def next(self) -> TelemetryEvent:
        """The oldest queued event, waiting for one if none is queued."""
        while True:
            if self.queue:
                return self.queue.popleft()
            if self.closed:
                raise StopAsyncIteration
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            await waiter

    def __aiter__(self) -> "AwaitableTail":
        return self

    async def __anext__(self) -> TelemetryEvent:
        return await self.next()


class TelemetryBus:
    """Bounded-ring pub/sub channel for typed telemetry events."""

    def __init__(self, env=None, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.capacity = capacity
        #: Ring of the most recent events (oldest overwritten, counted).
        self.events: deque = deque(maxlen=capacity)
        self.published = 0
        self.overwritten = 0
        #: Event-kind name -> number published (cheap health signal).
        self.counts: Dict[str, int] = {}
        self._subscribers: List[
            Tuple[Callable[[TelemetryEvent], None], Optional[Tuple[type, ...]]]
        ] = []
        self._tails: List[TelemetrySubscription] = []

    # -- subscription ------------------------------------------------------
    def subscribe(
        self,
        callback: Callable[[TelemetryEvent], None],
        kinds: Optional[Sequence[Type[TelemetryEvent]]] = None,
    ) -> Callable[[TelemetryEvent], None]:
        """Deliver events synchronously to ``callback``.

        ``kinds`` restricts delivery to the given event classes
        (subclasses included); None delivers everything.
        """
        self._subscribers.append(
            (callback, tuple(kinds) if kinds is not None else None)
        )
        return callback

    def unsubscribe(self, callback: Callable[[TelemetryEvent], None]) -> None:
        self._subscribers = [
            (cb, kinds) for cb, kinds in self._subscribers if cb is not callback
        ]

    def tail(
        self,
        kinds: Optional[Sequence[Type[TelemetryEvent]]] = None,
        maxlen: int = 256,
    ) -> TelemetrySubscription:
        """A pull-mode bounded queue fed by every future publish."""
        sub = TelemetrySubscription(
            tuple(kinds) if kinds is not None else None, maxlen
        )
        self._tails.append(sub)
        return sub

    def atail(
        self,
        kinds: Optional[Sequence[Type[TelemetryEvent]]] = None,
        maxlen: int = 256,
    ) -> AwaitableTail:
        """An :class:`AwaitableTail` fed by every future publish."""
        sub = AwaitableTail(tuple(kinds) if kinds is not None else None, maxlen)
        self._tails.append(sub)
        return sub

    # -- publishing --------------------------------------------------------
    def publish(self, event: TelemetryEvent) -> None:
        """Fan one event out to the ring, the tails and the subscribers."""
        self.published += 1
        kind = type(event).__name__
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self.events) == self.capacity:
            self.overwritten += 1
        self.events.append(event)
        for sub in self._tails:
            if sub.kinds is None or isinstance(event, sub.kinds):
                sub._offer(event)
        # Tuple snapshot: a handler may subscribe/unsubscribe mid-dispatch.
        for callback, kinds in tuple(self._subscribers):
            if kinds is None or isinstance(event, kinds):
                callback(event)

    # -- access ------------------------------------------------------------
    def recent(
        self,
        kinds: Optional[Sequence[Type[TelemetryEvent]]] = None,
        since_ns: Optional[float] = None,
    ) -> List[TelemetryEvent]:
        """Events still in the ring, optionally filtered by kind/time."""
        wanted = tuple(kinds) if kinds is not None else None
        out = []
        for event in self.events:
            if wanted is not None and not isinstance(event, wanted):
                continue
            if since_ns is not None and event.t_ns < since_ns:
                continue
            out.append(event)
        return out

    def stats(self) -> Dict[str, float]:
        return {
            "published": float(self.published),
            "overwritten": float(self.overwritten),
            "subscribers": float(len(self._subscribers)),
            **{f"count:{k}": float(v) for k, v in sorted(self.counts.items())},
        }

    def __len__(self) -> int:
        return len(self.events)


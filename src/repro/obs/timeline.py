"""ASCII timeline rendering of recorded spans.

One row group per track; overlapping spans within a track are placed
into lanes (greedy first-fit, like a GUI trace viewer's nesting rows).
Each span paints ``=`` across its extent with the first letters of its
name at the start; instants paint ``*``.
"""

from __future__ import annotations

from typing import List, Optional

from .span import Span, SpanTracer

__all__ = ["render_timeline"]

_MAX_LANES = 6


def _assign_lanes(spans: List[Span]) -> List[List[Span]]:
    """Greedy first-fit lane assignment by start time."""
    lanes: List[List[Span]] = []
    for span in sorted(spans, key=lambda s: (s.start_ns, s.end_ns or s.start_ns)):
        for lane in lanes:
            if (lane[-1].end_ns or lane[-1].start_ns) <= span.start_ns:
                lane.append(span)
                break
        else:
            lanes.append([span])
    return lanes


def _paint(lane: List[Span], t0: float, scale: float, width: int) -> str:
    cells = [" "] * width
    for span in lane:
        start = int((span.start_ns - t0) * scale)
        end_ns = span.end_ns if span.end_ns is not None else span.start_ns
        end = int((end_ns - t0) * scale)
        start = min(max(start, 0), width - 1)
        end = min(max(end, start), width - 1)
        if span.is_instant or span.end_ns is None:
            cells[start] = "*"
            continue
        for col in range(start, end + 1):
            cells[col] = "="
        label = span.name[: end - start + 1]
        for offset, char in enumerate(label):
            cells[start + offset] = char
    return "".join(cells)


def render_timeline(
    tracer: SpanTracer,
    width: int = 100,
    req: Optional[int] = None,
    tracks: Optional[List[str]] = None,
) -> str:
    """Render spans as per-track ASCII lanes.

    ``req`` restricts the view to one trace-local request index (plus
    hardware-level spans are dropped rather than shown unattributed);
    ``tracks`` restricts and orders the rows.
    """
    spans = [s for s in tracer.spans if s.end_ns is not None]
    if req is not None:
        spans = [s for s in spans if s.req == req]
    chosen = tracks if tracks is not None else tracer.tracks()
    spans = [s for s in spans if s.track in set(chosen)]
    if not spans:
        return "(no spans)"
    t0 = min(s.start_ns for s in spans)
    t1 = max(s.end_ns for s in spans)
    span_ns = max(t1 - t0, 1.0)
    scale = (width - 1) / span_ns
    label_width = max(len(t) for t in chosen if any(s.track == t for s in spans))
    header = (
        f"timeline {t0:,.0f} .. {t1:,.0f} ns  "
        f"(1 col = {span_ns / (width - 1):,.0f} ns)"
    )
    lines = [header]
    for track in chosen:
        track_spans = [s for s in spans if s.track == track]
        if not track_spans:
            continue
        lanes = _assign_lanes(track_spans)
        shown, hidden = lanes[:_MAX_LANES], lanes[_MAX_LANES:]
        for index, lane in enumerate(shown):
            label = track if index == 0 else ""
            lines.append(f"{label.ljust(label_width)} |{_paint(lane, t0, scale, width)}|")
        if hidden:
            more = sum(len(lane) for lane in hidden)
            lines.append(f"{''.ljust(label_width)} |  ... {more} more spans")
    return "\n".join(lines)

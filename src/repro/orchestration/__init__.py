"""Orchestration architectures: Non-acc, CPU-Centric, RELIEF (+ladder),
Cohort, AccelFlow and Ideal."""

from typing import Dict, Type

from .accelflow import AccelFlowOrchestrator, IdealOrchestrator
from .adaptive import AdaptiveAccelFlowOrchestrator
from .base import Orchestrator, REMOTE_DEPENDENCY_OF_TRACE, StepOutcome
from .cohort import CohortOrchestrator, DEFAULT_LINKED_PAIRS
from .cpu_centric import CpuCentricOrchestrator
from .hw_manager import LADDER_VARIANTS, HwManagerOrchestrator, LadderConfig
from .nonacc import NonAcceleratedOrchestrator

__all__ = [
    "ARCHITECTURES",
    "AccelFlowOrchestrator",
    "AdaptiveAccelFlowOrchestrator",
    "CohortOrchestrator",
    "CpuCentricOrchestrator",
    "DEFAULT_LINKED_PAIRS",
    "HwManagerOrchestrator",
    "IdealOrchestrator",
    "LADDER_VARIANTS",
    "LadderConfig",
    "NonAcceleratedOrchestrator",
    "Orchestrator",
    "REMOTE_DEPENDENCY_OF_TRACE",
    "StepOutcome",
    "make_orchestrator",
]

#: Architecture name -> orchestrator class (ladder rungs are configured
#: through :func:`make_orchestrator`).
ARCHITECTURES: Dict[str, Type[Orchestrator]] = {
    "non-acc": NonAcceleratedOrchestrator,
    "cpu-centric": CpuCentricOrchestrator,
    "relief": HwManagerOrchestrator,
    "per-acc-type-q": HwManagerOrchestrator,
    "direct": HwManagerOrchestrator,
    "cntrflow": HwManagerOrchestrator,
    "cohort": CohortOrchestrator,
    "accelflow": AccelFlowOrchestrator,
    "accelflow-adaptive": AdaptiveAccelFlowOrchestrator,
    "ideal": IdealOrchestrator,
}


def make_orchestrator(architecture: str, *args, **kwargs) -> Orchestrator:
    """Instantiate the orchestrator for an architecture name."""
    try:
        cls = ARCHITECTURES[architecture]
    except KeyError:
        raise ValueError(
            f"unknown architecture {architecture!r}; "
            f"known: {sorted(ARCHITECTURES)} "
            f"(ladder rungs of the RELIEF family: {sorted(LADDER_VARIANTS)})"
        ) from None
    if architecture in LADDER_VARIANTS:
        kwargs.setdefault("config", LADDER_VARIANTS[architecture])
    return cls(*args, **kwargs)

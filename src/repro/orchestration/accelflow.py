"""The AccelFlow orchestrator (Sections IV-V).

Completion handling is fully decentralized: each accelerator's output
dispatcher executes the Figure 8 flowchart — resolve branch conditions
(7 extra RISC instructions each), run data-format transformations in
its DTE (12 instructions + streaming), read follow-on traces from the
ATM (12 instructions + SRAM latency), or DMA the final result to memory
and send a user-level (non-interrupt) notification to the initiating
core (20 instructions + 80 cycles). Plain hand-offs cost the 15-
instruction base plus one A-DMA transfer into the next input queue.
No CPU core or central manager is ever on the critical path.
"""

from __future__ import annotations

from typing import Optional

from ..core.trace import ResolvedStep
from ..hw.ops import QueueEntry
from ..hw.params import cycles_to_ns
from ..workloads.request import Buckets, Request
from .base import Orchestrator

__all__ = ["AccelFlowOrchestrator", "IdealOrchestrator"]


class AccelFlowOrchestrator(Orchestrator):
    """Decentralized trace-driven orchestration."""

    name = "accelflow"

    def after_step(
        self,
        request: Request,
        step: ResolvedStep,
        entry: QueueEntry,
        next_step: Optional[ResolvedStep],
    ):
        env = self.env
        accel = entry.context["accel"]
        # The output dispatcher is a single FSM: entries serialize on it.
        start = env.now
        with accel.output_dispatcher.request() as dispatcher:
            yield dispatcher
            acquired = env.now
            self.glue.record(step)
            yield env.timeout(self.glue.dispatch_time_ns(step, entry.op.data_out))
            dispatched = env.now
            if step.atm_read_after:
                yield env.process(self.hardware.atm.read(self._atm_slot(step)))
        request.add(Buckets.ORCHESTRATION, env.now - start)
        rid = self._obs_rid(request)
        if rid is not None:
            self._record_dispatch_spans(
                request, step, entry, accel, start, acquired, dispatched, rid
            )
        if step.notify_after:
            yield from self.deliver_result(request, step, entry)
        elif next_step is not None:
            yield from self.dma_to_next(request, step, entry, next_step)

    def _record_dispatch_spans(
        self, request, step, entry, accel, start, acquired, dispatched, rid
    ):
        """Break one output-dispatcher operation into nested spans."""
        env = self.env
        tracer = self.tracer
        tracer.complete(
            "output-dispatch",
            accel.track,
            start,
            env.now,
            rid=rid,
            cat="dispatch",
            args={
                "fsm_wait_ns": round(acquired - start, 1),
                "instructions": self.glue.instructions_for(step),
                "branches": step.branches_after,
                "transforms": step.transforms_after,
            },
        )
        if step.branches_after:
            branch_ns = cycles_to_ns(
                float(self.glue.BRANCH_INSTRUCTIONS * step.branches_after),
                self.glue.ghz,
            )
            tracer.complete(
                "branch-resolve", accel.track, acquired, acquired + branch_ns,
                rid=rid, cat="dispatch",
                args={"branches": step.branches_after},
            )
        if step.transforms_after:
            dte_ns = (
                step.transforms_after
                * entry.op.data_out
                / self.glue.DTE_BYTES_PER_NS
            )
            tracer.complete(
                "dte-transform", accel.track, dispatched - dte_ns, dispatched,
                rid=rid, cat="dispatch",
                args={"bytes": entry.op.data_out},
            )
        if step.atm_read_after:
            tracer.complete(
                "atm-read", accel.track, dispatched, env.now,
                rid=rid, cat="dispatch",
            )

    def _atm_slot(self, step: ResolvedStep) -> int:
        """The ATM address the dispatcher reads for the follow-on trace.

        Cores pre-install the follow-on traces before launching a chain
        (Section IV-A); we lazily install one shared slot per server so
        the read latency and access counting are exercised.
        """
        slot = getattr(self, "_atm_slot_cache", None)
        if slot is None:
            slot = self.hardware.atm.store("preinstalled-chain-traces")
            self._atm_slot_cache = slot
        return slot


class IdealOrchestrator(AccelFlowOrchestrator):
    """The Figure 14 'Ideal' system: direct accelerator-to-accelerator
    communication with no branch-resolution or data-transformation
    overheads (dispatcher work is free; DMA and queues remain)."""

    name = "ideal"

    def after_step(
        self,
        request: Request,
        step: ResolvedStep,
        entry: QueueEntry,
        next_step: Optional[ResolvedStep],
    ):
        if step.notify_after:
            yield from self.deliver_result(request, step, entry)
        elif next_step is not None:
            yield from self.dma_to_next(request, step, entry, next_step)

"""Load-adaptive AccelFlow (the paper's Section IX future work).

AccelFlow falls back to software only when an accelerator is *full*
(queue + overflow exhausted). This variant makes the decision
economically and per operation, using real-time load: before enqueuing,
the core projects the accelerator's queueing delay from its current
input occupancy; if the projected wait plus accelerated compute exceeds
plain software execution, the operation runs on a core instead. Under
light load it behaves exactly like AccelFlow; under accelerator
saturation it sheds load to idle cores instead of letting queues build.
"""

from __future__ import annotations

from ..hw.ops import QueueEntry
from ..workloads.request import Request
from .accelflow import AccelFlowOrchestrator

__all__ = ["AdaptiveAccelFlowOrchestrator"]


class AdaptiveAccelFlowOrchestrator(AccelFlowOrchestrator):
    """AccelFlow with per-operation software bypass under congestion."""

    name = "accelflow-adaptive"

    #: Bypass when projected accelerator completion exceeds this multiple
    #: of the software execution time (>1 biases toward accelerators,
    #: which also saves core energy).
    BYPASS_THRESHOLD = 1.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.bypasses = 0
        self.accelerated_ops = 0

    def run_step(self, request: Request, step):
        accel = self.hardware.accel(step.kind)
        op = self.cost_model.op_for(request.spec, step.kind, request.wire_size)
        pes = len(accel.pes)
        accel_compute = op.accel_time_ns(accel.speedup)
        projected_wait = accel.input_occupancy * accel_compute / pes
        if (
            projected_wait + accel_compute
            > op.cpu_time_ns * self.BYPASS_THRESHOLD
        ):
            # Cheaper in software right now: run the section on a core.
            self.bypasses += 1
            yield from self._run_on_core(request, op.cpu_time_ns)
            entry = QueueEntry(self.env, op, tenant=request.tenant)
            entry.dispatch_time = entry.enqueue_time
            entry.complete_time = self.env.now
            entry.context["software"] = True
            entry.context["accel"] = accel
            return entry
        self.accelerated_ops += 1
        entry = yield from super().run_step(request, step)
        return entry

    def after_step(self, request, step, entry, next_step):
        if entry.context.get("software"):
            # The core already holds the data: branches, transformations
            # and hand-off to the next accelerator are inline code.
            return
        yield from super().after_step(request, step, entry, next_step)

    def stats(self):
        stats = super().stats()
        stats["bypasses"] = float(self.bypasses)
        stats["accelerated_ops"] = float(self.accelerated_ops)
        total = self.bypasses + self.accelerated_ops
        stats["bypass_fraction"] = self.bypasses / total if total else 0.0
        return stats

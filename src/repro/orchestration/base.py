"""Orchestrator base: walks service paths and trace chains.

Every architecture executes the same service paths (Table IV) over the
same hardware; what differs is *who coordinates* the hand-off between
accelerators and what that costs. The base class owns the shared walk —
CPU segments, trace chains across ATM links, remote-response waits,
parallel fan-out, CPU fallback, tenant throttling — and defers three
hooks to subclasses:

* :meth:`submit_overhead` — cost of initiating a chain from a core,
* :meth:`after_step` — what happens when an accelerator finishes one
  operation (the architectural crux),
* :meth:`run_step` — how an operation is admitted to an accelerator.

Latency is attributed to the request's component buckets throughout
(Figure 17).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional

from ..core.glue import GlueCostModel
from ..core.registry import TraceRegistry
from ..core.tenancy import TenantManager
from ..core.trace import ResolvedPath, ResolvedStep
from ..hw.ensemble import ServerHardware
from ..hw.noc import CPU_ENDPOINT
from ..hw.ops import QueueEntry
from ..hw.params import AcceleratorKind
from ..obs.telemetry import RecoveryEvent, RequestEnd
from ..workloads.request import Buckets, Request
from ..sim import Environment, Interrupt, RandomStreams
from ..workloads.calibration import OrchestrationCosts, RemoteLatencies
from ..workloads.costs import CostModel
from ..workloads.spec import CpuSegment, ParallelInvocations, TraceInvocation

__all__ = ["Orchestrator", "StepOutcome", "REMOTE_DEPENDENCY_OF_TRACE"]

#: Which remote dependency a receive-trace waits on (median pick key).
REMOTE_DEPENDENCY_OF_TRACE: Dict[str, str] = {
    "T5": "db_cache",
    "T6": "database",
    "T7": "db_cache",
    "T10": "nested_rpc",
    "T12": "http",
}

#: Remote dependencies (caches, databases, peer services) run on servers
#: with the same architecture, so their response times scale with it.
#: These factors are the measured unloaded-latency ratios of a short
#: service on each architecture relative to the software-only baseline
#: (the RemoteLatencies medians describe non-accelerated responders).
REMOTE_ARCHITECTURE_SCALE: Dict[str, float] = {
    "non-acc": 1.00,
    "cpu-centric": 0.42,
    "relief": 0.37,
    "per-acc-type-q": 0.37,
    "direct": 0.34,
    "cntrflow": 0.32,
    "cohort": 0.33,
    "accelflow": 0.29,
    "accelflow-adaptive": 0.29,
    "ideal": 0.28,
}


class StepOutcome:
    OK = "ok"
    FALLBACK = "fallback"


class Orchestrator:
    """Base orchestrator; subclasses implement the coordination costs."""

    name = "base"
    #: False for the software-only architecture (Non-acc).
    uses_accelerators = True

    def __init__(
        self,
        env: Environment,
        hardware: ServerHardware,
        registry: TraceRegistry,
        cost_model: CostModel,
        streams: RandomStreams,
        orch_costs: Optional[OrchestrationCosts] = None,
        remotes: Optional[RemoteLatencies] = None,
        tracer=None,
        fault_plane=None,
    ):
        self.env = env
        self.hardware = hardware
        self.registry = registry
        self.cost_model = cost_model
        self.streams = streams
        #: Optional :class:`repro.obs.SpanTracer` (one attribute check
        #: per instrumentation point when tracing is off).
        self.tracer = tracer
        #: Optional :class:`repro.obs.TelemetryBus` (same contract);
        #: request terminals and recovery-plane events stream onto it.
        self.bus = None
        self.costs = orch_costs or OrchestrationCosts()
        self.remotes = remotes or RemoteLatencies()
        self.glue = GlueCostModel(hardware.params.cpu.ghz)
        self.tenants = TenantManager(hardware.params.tenant_trace_limit)
        self._remote_stream = streams.stream(f"remote/{self.name}")
        #: Optional :class:`repro.faults.FaultPlane`. When present, the
        #: dispatch path runs under watchdog timeouts with bounded retry
        #: and circuit-breaker health tracking; when None (default) every
        #: code path and every RNG draw matches the fault-free simulator.
        self.fault_plane = fault_plane
        self.recovery = None
        if fault_plane is not None:
            from ..faults.recovery import RecoveryPolicy

            self.recovery = RecoveryPolicy(
                env, fault_plane.config,
                streams.stream(f"faults/recovery/{self.name}"),
            )
        self.fallbacks = 0
        self.tcp_timeouts = 0
        #: Requests that lost at least one remote response but recovered
        #: through a retried wait (vs. tcp_timeouts: fatal, request
        #: errored out). Satellite accounting split.
        self.tcp_recovered = 0
        self.chains_executed = 0
        # Per-tenant FIFO of slot-gate events; deques so the
        # grant path pops in O(1) however deep the throttle backlog.
        self._tenant_waiters: Dict[int, deque] = {}

    # ------------------------------------------------------------------
    # Observability helpers
    # ------------------------------------------------------------------
    def _obs_rid(self, request: Request) -> Optional[int]:
        """The request's id iff this request is being traced."""
        tracer = self.tracer
        if tracer is not None and tracer.is_sampled(request.rid):
            return request.rid
        return None

    # ------------------------------------------------------------------
    # Request-level walk
    # ------------------------------------------------------------------
    def execute_request(self, request: Request):
        """Process: run one request through its service path."""
        env = self.env
        spec = request.spec
        for step in spec.path:
            if isinstance(step, CpuSegment):
                duration = self.cost_model.cpu_segment_ns(spec, step)
                yield from self._run_on_core(request, duration)
            elif isinstance(step, TraceInvocation):
                yield env.process(self.run_chain(request, step))
            elif isinstance(step, ParallelInvocations):
                chains = [
                    env.process(self.run_chain(request, inv))
                    for inv in step.invocations
                ]
                yield env.all_of(chains)
            else:  # pragma: no cover - defensive
                raise TypeError(f"unknown path step {step!r}")
            if request.error or request.timed_out:
                break
        request.complete_ns = env.now
        if self.bus is not None:
            self.bus.publish(
                RequestEnd(
                    t_ns=env.now,
                    service=spec.name,
                    latency_ns=request.latency_ns,
                    ok=not (request.error or request.timed_out),
                    error=request.error,
                    timed_out=request.timed_out,
                    fell_back=request.fell_back,
                )
            )
        rid = self._obs_rid(request)
        if rid is not None:
            self.tracer.complete(
                f"request {spec.name}",
                f"req:{spec.name}",
                request.arrival_ns,
                env.now,
                rid=rid,
                cat="request",
                args={
                    "ops": request.accelerator_ops,
                    "error": request.error,
                    "fell_back": request.fell_back,
                    **{k: round(v, 1) for k, v in request.components.items() if v},
                },
            )
            self.tracer.finish_request(request.rid)

    # ------------------------------------------------------------------
    # Chain-level walk (entry trace + ATM links + remote waits)
    # ------------------------------------------------------------------
    def run_chain(self, request: Request, invocation: TraceInvocation):
        """Process: run one chain with this request's payload fields."""
        state = dict(request.state)
        state.update(invocation.forced)
        yield from self._chain(request, invocation.entry, state, first=True)

    def _chain(self, request: Request, name: str, state: Dict[str, bool], first: bool):
        iteration = 0
        while name:
            trace = self.registry.get(name)
            path = trace.resolve(state)
            self.chains_executed += 1
            initiated_by_core = (
                iteration == 0 and first and path.steps
                and path.steps[0].kind is not AcceleratorKind.TCP
            )
            outcome = yield from self.execute_path(
                request, path, state, initiated_by_core=initiated_by_core
            )
            if path.error:
                request.error = True
                return
            del outcome  # fallback still continues the chain from the CPU
            next_name = path.next_trace
            if next_name:
                next_trace = self.registry.get(next_name)
                if self._is_remote_boundary(path, next_trace):
                    ok = yield from self._wait_remote(request, next_name)
                    if not ok:
                        return
            name = next_name
            first = False
            iteration += 1

    def _is_remote_boundary(self, path: ResolvedPath, next_trace) -> bool:
        """A TCP send followed by a TCP receive crosses the network."""
        if not path.steps:
            return False
        return (
            path.steps[-1].kind is AcceleratorKind.TCP
            and next_trace.first_kind is AcceleratorKind.TCP
        )

    def _wait_remote(self, request: Request, next_name: str) -> bool:
        """Wait for the remote response; False on fatal TCP timeout.

        With recovery installed, a lost response is re-waited up to
        ``tcp_max_retries`` times with jittered backoff (counted in
        ``tcp_recovered`` when a retry eventually lands); without it, the
        first loss is fatal, exactly as in the fault-free simulator.
        """
        env = self.env
        recovery = self.recovery
        attempts = 0
        while self._remote_stream.bernoulli(self.remotes.loss_probability):
            # The response never arrives: the TCP input-queue entry times
            # out and the core is notified (Section IV-B).
            yield env.timeout(self.costs.tcp_response_timeout_ns)
            # Re-waiting is a retry: it must clear both the per-attempt
            # bound and the shared retry budget, else the loss is fatal
            # now instead of re-offering load to a saturated network.
            if (
                recovery is None
                or attempts >= recovery.config.tcp_max_retries
                or not recovery.allow_retry("tcp")
            ):
                request.timed_out = True
                request.error = True
                self.tcp_timeouts += 1
                return False
            attempts += 1
            request.tcp_retries += 1
            yield env.timeout(recovery.backoff_ns(attempts))
        if attempts:
            self.tcp_recovered += 1
        dependency = REMOTE_DEPENDENCY_OF_TRACE.get(next_name, "nested_rpc")
        median = getattr(self.remotes, f"{dependency}_ns")
        median *= REMOTE_ARCHITECTURE_SCALE.get(self.name, 1.0)
        delay = self._remote_stream.lognormal_median(median, self.remotes.sigma)
        start = env.now
        yield env.timeout(delay)
        request.add(Buckets.REMOTE, delay)
        rid = self._obs_rid(request)
        if rid is not None:
            self.tracer.complete(
                f"remote-wait {dependency}",
                f"req:{request.spec.name}",
                start,
                env.now,
                rid=rid,
                cat="remote",
                args={"trace": next_name},
            )
        return True

    # ------------------------------------------------------------------
    # Path-level walk (one resolved trace)
    # ------------------------------------------------------------------
    def execute_path(
        self,
        request: Request,
        path: ResolvedPath,
        state: Dict[str, bool],
        initiated_by_core: bool = False,
    ):
        env = self.env
        steps = path.steps
        if not steps:
            return StepOutcome.OK
        # Per-tenant trace accounting (Section IV-D): a trace may only
        # start while the tenant is below its concurrent-trace limit N.
        wait_start = env.now
        yield from self._acquire_tenant_slot(request.tenant)
        request.add(Buckets.QUEUE, env.now - wait_start)
        try:
            if initiated_by_core:
                yield from self.submit_overhead(request, path)
            for index, step in enumerate(steps):
                entry = yield from self.run_step(request, step)
                if entry is None:
                    yield from self.cpu_fallback(request, steps[index:], state)
                    return StepOutcome.FALLBACK
                request.accelerator_ops += 1
                next_step = steps[index + 1] if index + 1 < len(steps) else None
                yield from self.after_step(request, step, entry, next_step)
                # The output dispatcher has moved the entry onward: free
                # its output-queue slot (unblocks a backpressured PE).
                entry.context["accel"].consume_output(entry)
                if self.recovery is not None and request.error:
                    # A fatally corrupted hand-off already failed the
                    # request; executing the rest of the trace would only
                    # burn simulated hardware on a dead request.
                    return StepOutcome.OK
        finally:
            self._release_tenant_slot(request.tenant)
        # Parallel fan-out: arms start once the forking step is done
        # (each arm's traces claim their own tenant slots).
        last = steps[-1]
        if last.fanout:
            arms = [
                env.process(self._run_arm(request, arm, state))
                for arm in last.fanout
            ]
            yield env.all_of(arms)
        return StepOutcome.OK

    def _run_arm(self, request: Request, arm: ResolvedPath, state: Dict[str, bool]):
        """Process: one parallel arm, following its own chain links."""
        yield from self.execute_path(request, arm, state)
        if arm.next_trace:
            next_trace = self.registry.get(arm.next_trace)
            if self._is_remote_boundary(arm, next_trace):
                ok = yield from self._wait_remote(request, arm.next_trace)
                if not ok:
                    return
            yield from self._chain(request, arm.next_trace, state, first=False)

    # ------------------------------------------------------------------
    # Core execution (deadline-aware when the request carries an SLO)
    # ------------------------------------------------------------------
    def _core_priority(self, request: Request):
        """Core-queue priority: requests closer to their deadline first
        (Section IV-C policy); None means the default priority."""
        if request.slo_deadline_ns is None:
            return None
        # Strictly between the interrupt priority (0) and normal (10).
        return 1.0 + request.slo_deadline_ns * 1e-12

    def _run_on_core(self, request: Request, duration_ns: float):
        """Run ``duration_ns`` of this request's work on a core,
        charging busy time to CPU and any wait to the queue bucket."""
        env = self.env
        start = env.now
        yield env.process(
            self.hardware.cores.execute(
                duration_ns, priority=self._core_priority(request)
            )
        )
        request.add(Buckets.CPU, duration_ns)
        # max(): float cancellation in now - start - duration can land
        # an idle wait a few ulps below zero.
        request.add(Buckets.QUEUE, max(env.now - start - duration_ns, 0.0))
        rid = self._obs_rid(request)
        if rid is not None:
            self.tracer.complete(
                "cpu",
                "cores",
                start,
                env.now,
                rid=rid,
                cat="cpu",
                args={"busy_ns": round(duration_ns, 1),
                      "wait_ns": round(env.now - start - duration_ns, 1)},
            )

    # ------------------------------------------------------------------
    # Tenant slot waiting (event-based, no polling)
    # ------------------------------------------------------------------
    def _acquire_tenant_slot(self, tenant: int):
        while not self.tenants.try_start(tenant):
            gate = self.env.event()
            waiters = self._tenant_waiters.setdefault(tenant, deque())
            waiters.append(gate)
            try:
                yield gate
            except Interrupt:
                # Torn down while throttled (machine failure, watchdog
                # cascade): never swallow a slot-freed wakeup.
                if gate.triggered:
                    if waiters:
                        waiters.popleft().succeed()
                else:
                    waiters.remove(gate)
                raise

    def _release_tenant_slot(self, tenant: int) -> None:
        self.tenants.end(tenant)
        waiters = self._tenant_waiters.get(tenant)
        if waiters:
            waiters.popleft().succeed()

    # ------------------------------------------------------------------
    # Hooks (overridden per architecture)
    # ------------------------------------------------------------------
    def submit_overhead(self, request: Request, path: ResolvedPath):
        """Core-side cost of launching a chain (user-mode Enqueue + DMA)."""
        cost = self.hardware.params.cpu.enqueue_ns
        yield self.env.timeout(cost)
        request.add(Buckets.ORCHESTRATION, cost)

    def run_step(self, request: Request, step: ResolvedStep):
        """Admit one operation and wait for its PE to finish.

        Returns the completed :class:`QueueEntry`, or None when the step
        could not run on hardware (accelerator full after retries; with
        recovery: retry budget exhausted or every instance breaker-open)
        and the trace must fall back to the CPU.
        """
        if self.recovery is not None:
            entry = yield from self._run_step_recovered(request, step)
            return entry
        entry = yield from self._run_step_once(request, step)
        return entry

    def _run_step_once(self, request: Request, step: ResolvedStep):
        """The fault-free dispatch path (identical to the seed model)."""
        env = self.env
        op = self.cost_model.op_for(request.spec, step.kind, request.wire_size)
        entry = QueueEntry(
            env,
            op,
            tenant=request.tenant,
            priority=request.priority,
            deadline_ns=request.slo_deadline_ns,
        )
        rid = self._obs_rid(request)
        if rid is not None:
            # Lets the accelerator attribute queue/PE spans to us.
            entry.context["obs_rid"] = rid
        # Each attempt targets the least-occupied instance of the type
        # (a failing Enqueue "retries with another accelerator of the
        # same type", Section IV-A).
        accel = self.hardware.accel(step.kind)
        retries = 0
        while not accel.try_enqueue(entry):
            retries += 1
            if retries > self.hardware.params.cpu.enqueue_max_retries:
                self.fallbacks += 1
                request.fell_back = True
                return None
            yield env.timeout(200.0)
            accel = self.hardware.accel(step.kind)
        entry.context["accel"] = accel
        yield entry.done
        request.add(Buckets.QUEUE, entry.queue_wait_ns)
        retire_ns = entry.context.get("retire_ns", 0.0)
        request.add(Buckets.ACCEL, entry.service_ns - retire_ns)
        request.add(Buckets.ORCHESTRATION, retire_ns)
        return entry

    # ------------------------------------------------------------------
    # Recovered dispatch (watchdog + retry/backoff + circuit breakers)
    # ------------------------------------------------------------------
    def _pick_accel(self, kind):
        """Healthiest least-occupied instance; None if all tripped."""
        recovery = self.recovery
        if recovery is None:
            return self.hardware.accel(kind)
        return recovery.pick(self.hardware.instances[kind], self.env.now)

    def _run_step_recovered(self, request: Request, step: ResolvedStep):
        """Run one step under a watchdog with bounded backoff retries.

        Each attempt executes in a child process so the watchdog can
        interrupt it cleanly; a returned None degrades the remaining
        trace suffix to the CPU through the caller's fallback path.
        """
        env = self.env
        recovery = self.recovery
        config = recovery.config
        attempts = 0
        while True:
            attempt_start = env.now
            box: Dict[str, object] = {}
            attempt = env.process(
                self._step_attempt(request, step, box),
                name=f"step-{request.rid}-{step.kind.value}",
            )
            watchdog = env.timeout(config.watchdog_timeout_ns)
            try:
                yield env.any_of([attempt, watchdog])
            except Interrupt:
                # Our own process is being torn down (e.g. a machine
                # failure): unwind the attempt before propagating.
                if attempt.is_alive:
                    attempt.interrupt("parent-interrupted")
                    yield attempt
                raise
            if attempt.is_alive:
                recovery.watchdog_timeouts += 1
                if self.tracer is not None:
                    self.tracer.instant(
                        "watchdog-timeout", "faults",
                        args={"step": step.kind.value, "rid": request.rid},
                    )
                if self.bus is not None:
                    self.bus.publish(
                        RecoveryEvent(
                            t_ns=env.now,
                            kind_name="watchdog-timeout",
                            args={"step": step.kind.value, "rid": request.rid},
                        )
                    )
                attempt.interrupt("watchdog")
                yield attempt  # lets the attempt abandon its entry
            entry = box.get("entry")
            if entry is not None:
                recovery.record_success(box["accel"])
                return entry
            # Time burned by the failed attempt reads as queueing delay.
            request.add(Buckets.QUEUE, env.now - attempt_start)
            if box.get("fatal"):
                # Full queues / all-breakers-open: immediate CPU fallback
                # (capacity exhaustion is not an instance-health signal).
                return None
            accel = box.get("accel")
            if accel is not None:
                recovery.record_failure(accel)
            attempts += 1
            # Short-circuit order matters: past the per-attempt bound no
            # token is drawn, so a zero-capacity budget (the default)
            # leaves this path byte-identical to the pre-budget model.
            if attempts > config.step_max_retries or not recovery.allow_retry(
                "step"
            ):
                recovery.degraded_to_cpu += 1
                self.fallbacks += 1
                request.fell_back = True
                if self.bus is not None:
                    self.bus.publish(
                        RecoveryEvent(
                            t_ns=env.now,
                            kind_name="degraded-to-cpu",
                            args={"step": step.kind.value, "rid": request.rid},
                        )
                    )
                return None
            recovery.step_retries += 1
            request.step_retries += 1
            backoff = recovery.backoff_ns(attempts)
            yield env.timeout(backoff)
            request.add(Buckets.QUEUE, backoff)

    def _step_attempt(self, request: Request, step: ResolvedStep, box: Dict):
        """Process: one dispatch attempt; results travel via ``box``.

        Keys: "accel" (instance tried), "entry" (completed, fault-free),
        "fault" (why it failed), "fatal" (no point retrying).
        """
        env = self.env
        op = self.cost_model.op_for(request.spec, step.kind, request.wire_size)
        entry = QueueEntry(
            env,
            op,
            tenant=request.tenant,
            priority=request.priority,
            deadline_ns=request.slo_deadline_ns,
        )
        rid = self._obs_rid(request)
        if rid is not None:
            entry.context["obs_rid"] = rid
        accel = self._pick_accel(step.kind)
        if accel is None:
            # Every instance of the kind is breaker-open: degrade.
            box["fault"] = "breaker-open"
            box["fatal"] = True
            self.fallbacks += 1
            request.fell_back = True
            return
        box["accel"] = accel
        try:
            retries = 0
            while not accel.try_enqueue(entry):
                retries += 1
                if retries > self.hardware.params.cpu.enqueue_max_retries:
                    self.fallbacks += 1
                    request.fell_back = True
                    box["fault"] = "queue-full"
                    box["fatal"] = True
                    return
                yield env.timeout(200.0)
                accel = self._pick_accel(step.kind)
                if accel is None:
                    box["fault"] = "breaker-open"
                    box["fatal"] = True
                    self.fallbacks += 1
                    request.fell_back = True
                    return
                box["accel"] = accel
            entry.context["accel"] = accel
            yield entry.done
        except Interrupt:
            # Watchdog (or teardown): the entry may still be queued or
            # executing; make sure its eventual output slot is freed.
            self._abandon_entry(accel, entry)
            box["fault"] = "watchdog"
            return
        fault = entry.context.get("fault")
        if fault is not None:
            # Corrupted result: retire it and report the fault upward.
            accel.consume_output(entry)
            box["fault"] = fault
            return
        request.add(Buckets.QUEUE, entry.queue_wait_ns)
        retire_ns = entry.context.get("retire_ns", 0.0)
        request.add(Buckets.ACCEL, entry.service_ns - retire_ns)
        request.add(Buckets.ORCHESTRATION, retire_ns)
        box["entry"] = entry

    @staticmethod
    def _abandon_entry(accel, entry: QueueEntry) -> None:
        """Free an abandoned entry's output slot, now or on completion.

        The accelerator will still execute a queued entry we gave up on
        (the work was already admitted); what must not leak is its
        output-queue slot, which would otherwise backpressure a PE
        forever.
        """
        done = entry.done
        if done.callbacks is None:
            accel.consume_output(entry)
        else:
            done.callbacks.append(
                lambda _event, a=accel, e=entry: a.consume_output(e)
            )

    def after_step(
        self,
        request: Request,
        step: ResolvedStep,
        entry: QueueEntry,
        next_step: Optional[ResolvedStep],
    ):
        """Architecture-specific completion handling."""
        raise NotImplementedError

    def cpu_fallback(
        self, request: Request, steps: List[ResolvedStep], state: Dict[str, bool]
    ):
        """Run the remaining operations of a trace in software."""
        kinds = [s.kind for s in steps]
        for step in steps:
            for arm in step.fanout:
                kinds.extend(k for k in arm.kinds())
        duration = self.cost_model.software_chain_ns(
            request.spec, kinds, request.wire_size
        )
        yield from self._run_on_core(request, duration)

    # ------------------------------------------------------------------
    # Shared cost helpers
    # ------------------------------------------------------------------
    def _dma_with_retry(self, request: Request, src, dst, nbytes: int, rid=None):
        """Generator: one DMA leg, re-issuing corrupted transfers.

        Without recovery this is a single transfer (corruption cannot be
        injected then). With recovery, corrupted transfers are re-issued
        with backoff up to ``dma_max_retries``; exhaustion fails the
        request with a sane error status.
        """
        env = self.env
        recovery = self.recovery
        attempt = 0
        while True:
            ok = yield env.process(
                self.hardware.dma.transfer(src, dst, nbytes, obs_rid=rid)
            )
            if ok or recovery is None:
                return ok
            attempt += 1
            if attempt > recovery.config.dma_max_retries or not recovery.allow_retry(
                "dma"
            ):
                recovery.dma_fatal += 1
                request.error = True
                return False
            recovery.dma_retries += 1
            yield env.timeout(recovery.backoff_ns(attempt))

    def dma_to_next(self, request: Request, step: ResolvedStep, entry: QueueEntry,
                    next_step: ResolvedStep):
        """Move the output payload into the next accelerator's queue."""
        start = self.env.now
        yield from self._dma_with_retry(
            request, step.kind, next_step.kind, entry.op.data_out,
            rid=self._obs_rid(request),
        )
        request.add(Buckets.COMMUNICATION, self.env.now - start)

    def deliver_result(self, request: Request, step: ResolvedStep, entry: QueueEntry):
        """DMA the final payload to memory and notify the core."""
        env = self.env
        start = env.now
        rid = self._obs_rid(request)
        yield from self._dma_with_retry(
            request, step.kind, CPU_ENDPOINT, entry.op.data_out, rid=rid
        )
        notify_start = env.now
        notify_ns = self.hardware.cores.notification_ns()
        yield env.timeout(notify_ns)
        request.add(Buckets.COMMUNICATION, env.now - start)
        if rid is not None:
            self.tracer.complete(
                "notify",
                "cores",
                notify_start,
                env.now,
                rid=rid,
                cat="notify",
                args={"from": step.kind.value},
            )

    def stats(self) -> Dict[str, float]:
        stats = {
            "fallbacks": float(self.fallbacks),
            "tcp_timeouts": float(self.tcp_timeouts),
            "tcp_recovered": float(self.tcp_recovered),
            "chains_executed": float(self.chains_executed),
            "glue": self.glue.stats(),
            "tenants": self.tenants.stats(),
        }
        if self.recovery is not None:
            stats["recovery"] = self.recovery.stats()
        return stats

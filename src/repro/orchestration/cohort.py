"""Cohort-style orchestration (ASPLOS'23 [82] baseline).

Cohort statically links pairs of accelerators that frequently execute
back to back; within a linked pair the hand-off flows through a
shared-memory software queue with no CPU involvement. Everywhere else —
unlinked transitions, branch conditions, data transformations, chain
completion — a CPU core shepherds the request by polling shared-memory
completion queues (cheaper than an interrupt, but still core work).
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..core.trace import ResolvedStep
from ..hw.ops import QueueEntry
from ..hw.params import AcceleratorKind
from ..sim import Resource
from ..workloads.request import Buckets, Request
from .base import Orchestrator

__all__ = ["CohortOrchestrator", "DEFAULT_LINKED_PAIRS"]

_K = AcceleratorKind

#: Statically linked pairs: Cohort links only a few accelerators that
#: most frequently execute back to back (Table I): the receive prefix
#: TCP->Decr and the send suffix Encr->TCP.
DEFAULT_LINKED_PAIRS: FrozenSet[Tuple[AcceleratorKind, AcceleratorKind]] = frozenset(
    {
        (_K.TCP, _K.DECR),
        (_K.ENCR, _K.TCP),
    }
)


class CohortOrchestrator(Orchestrator):
    """Statically paired accelerators; cores shepherd the rest.

    Cohort's software framework services its shared-memory queues with a
    small number of dedicated spin-polling threads; every unlinked
    hand-off must be picked up by one of them. Those threads are the
    scheme's scalability limit: bursts saturate them long before the
    accelerators or the general core pool fill up.
    """

    name = "cohort"
    POLLING_THREADS = 2

    def __init__(self, *args, linked_pairs=None, polling_threads=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.linked_pairs = (
            frozenset(linked_pairs) if linked_pairs is not None else DEFAULT_LINKED_PAIRS
        )
        self.linked_hops = 0
        self.cpu_hops = 0
        self._pollers = Resource(
            self.env, capacity=polling_threads or self.POLLING_THREADS
        )

    def _is_linked(self, step: ResolvedStep, next_step: ResolvedStep) -> bool:
        """Pair hand-offs only work for plain transitions: any branch or
        transform needs software, breaking the static link."""
        if step.branches_after or step.transforms_after or step.atm_read_after:
            return False
        return (step.kind, next_step.kind) in self.linked_pairs

    def after_step(
        self,
        request: Request,
        step: ResolvedStep,
        entry: QueueEntry,
        next_step: Optional[ResolvedStep],
    ):
        env = self.env
        if next_step is not None and self._is_linked(step, next_step):
            self.linked_hops += 1
            yield env.timeout(self.costs.cohort_pair_hop_ns)
            request.add(Buckets.ORCHESTRATION, self.costs.cohort_pair_hop_ns)
            yield from self.dma_to_next(request, step, entry, next_step)
            return
        # Unlinked: a core polls the completion out of a shared-memory
        # queue and drives the next submission (plus any software branch
        # resolution / data transformation). The completion first waits
        # for the polling thread to come around.
        self.cpu_hops += 1
        shepherd_ns = self.costs.cohort_cpu_hop_ns
        shepherd_ns += step.branches_after * self.costs.cpu_branch_resolution_ns
        if step.transforms_after:
            kb = entry.op.data_out / 1024.0
            shepherd_ns += (
                step.transforms_after * self.costs.cpu_transform_ns_per_kb * kb
            )
        # The fixed poll delay is the average time until a polling
        # thread's next sweep; under load, queueing for a free polling
        # thread (which only holds for the shepherd work itself) adds
        # the rest.
        start = env.now
        yield env.timeout(self.costs.cohort_poll_delay_ns)
        with self._pollers.request() as poller:
            yield poller
            yield env.timeout(shepherd_ns)
        request.add(Buckets.ORCHESTRATION, env.now - start)
        if step.notify_after:
            yield from self.deliver_result(request, step, entry)
        elif next_step is not None:
            yield from self.dma_to_next(request, step, entry, next_step)

    def stats(self):
        stats = super().stats()
        stats["linked_hops"] = float(self.linked_hops)
        stats["cpu_hops"] = float(self.cpu_hops)
        return stats

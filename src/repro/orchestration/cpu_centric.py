"""CPU-Centric orchestration (Section III baseline, after [27]).

A CPU core invokes one accelerator at a time. When an accelerator
completes, it raises a device interrupt; the core runs the completion
handler, resolves any branch condition in software, performs any data
transformation in software, and submits the next accelerator. Both the
latency of each interrupt round trip and the core cycles it consumes
(contending with application logic) are modeled.
"""

from __future__ import annotations

from typing import Optional

from ..core.trace import ResolvedStep
from ..hw.ops import QueueEntry
from ..workloads.request import Buckets, Request
from .base import Orchestrator

__all__ = ["CpuCentricOrchestrator"]


class CpuCentricOrchestrator(Orchestrator):
    """One interrupt to a core per accelerator completion."""

    name = "cpu-centric"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # The accelerator cannot retire a job (and start the next one)
        # until a core has taken the completion interrupt and run the
        # handler — the defining cost of CPU-centric orchestration.
        for accel in self.hardware.all_accelerators():
            accel.retire_hook = self._retire

    def _retire(self, entry: QueueEntry):
        yield self.env.process(
            self.hardware.cores.handle_interrupt(
                self.costs.cpu_centric_per_completion_ns
            )
        )

    def after_step(
        self,
        request: Request,
        step: ResolvedStep,
        entry: QueueEntry,
        next_step: Optional[ResolvedStep],
    ):
        env = self.env
        # Software branch resolution / data transformation in the
        # handler's continuation (the interrupt itself was charged as
        # accelerator retire time).
        extra_ns = step.branches_after * self.costs.cpu_branch_resolution_ns
        if step.transforms_after:
            kb = entry.op.data_out / 1024.0
            extra_ns += (
                step.transforms_after * self.costs.cpu_transform_ns_per_kb * kb
            )
        if extra_ns > 0:
            start = env.now
            yield env.process(self.hardware.cores.handle_interrupt(extra_ns))
            request.add(Buckets.ORCHESTRATION, env.now - start)
        if step.notify_after:
            # The completion interrupt already reaches the core; only the
            # result payload still has to land in memory.
            yield from self.deliver_result(request, step, entry)
        elif next_step is not None:
            yield from self.dma_to_next(request, step, entry, next_step)

"""Centralized hardware-manager orchestration: RELIEF and the ablation
ladder of Figure 13.

The manager is a single hardware unit (modeled as a one-server queue):
every event it handles occupies it for ~1.5 us (the paper's RELIEF
number), and under load it becomes the bottleneck — exactly the effect
the paper quantifies ("for 10K RPS of a service using 87 accelerators,
the manager is busy 1.3 seconds per second").

The ladder (Figure 13) progressively moves work out of the manager:

====================  ===========================================================
variant               upgrade over the previous rung
====================  ===========================================================
``relief``            everything centralized; one queue shared by all accelerators
``per-acc-type-q``    one queue per accelerator type (admission decentralized)
``direct``            traces + direct accelerator-to-accelerator data transfers
``cntrflow``          output dispatchers resolve branches (no manager fallbacks)
(AccelFlow)           dispatchers also transform data and handle large payloads
====================  ===========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.trace import ResolvedPath, ResolvedStep
from ..hw.ops import QueueEntry
from ..workloads.request import Buckets, Request
from ..sim import Resource, Store
from .base import Orchestrator

__all__ = ["LadderConfig", "HwManagerOrchestrator", "LADDER_VARIANTS"]


@dataclass(frozen=True)
class LadderConfig:
    """Which responsibilities have moved out of the central manager."""

    name: str
    per_type_queues: bool
    direct_transfers: bool
    dispatcher_branches: bool
    dispatcher_transforms: bool


LADDER_VARIANTS = {
    "relief": LadderConfig("relief", False, False, False, False),
    "per-acc-type-q": LadderConfig("per-acc-type-q", True, False, False, False),
    "direct": LadderConfig("direct", True, True, False, False),
    "cntrflow": LadderConfig("cntrflow", True, True, True, False),
}


class HwManagerOrchestrator(Orchestrator):
    """RELIEF-style centralized manager, parameterized by ladder rung."""

    def __init__(self, *args, config: LadderConfig = None, **kwargs):
        self.config = config or LADDER_VARIANTS["relief"]
        self.name = self.config.name
        super().__init__(*args, **kwargs)
        self.manager = Resource(self.env, capacity=1)
        self.manager_busy_ns = 0.0
        self.manager_events = 0
        # RELIEF base: a single centralized queue shared by all 8 PEs of
        # all 9 accelerator types, modeled as a global admission budget
        # equal to one accelerator's queue depth.
        self._admission: Optional[Store] = None
        if not self.config.per_type_queues:
            depth = self.hardware.params.accelerator.input_queue_entries
            self._admission = Store(self.env)
            for _ in range(depth):
                self._admission.try_put(object())
        if not self.config.direct_transfers:
            # Centralized scheduling: a PE cannot retire its job and take
            # the next one until the manager has processed the completion
            # interrupt. This dead time is the key throughput cost of a
            # centralized manager (removed by the Direct rung's traces).
            for accel in self.hardware.all_accelerators():
                accel.retire_hook = self._retire
        if (
            self.fault_plane is not None
            and self.fault_plane.config.manager_outage_interval_ns > 0
        ):
            # Manager outages are the centralized architectures' Achilles
            # heel: the single hardware unit goes dark and every
            # submission, completion and retirement queues behind it.
            # Decentralized orchestrators have no manager to lose.
            self.env.process(
                self._manager_outage_injector(), name="fault-manager-outage"
            )

    def _manager_outage_injector(self):
        """Bounded process: periodically hold the manager unit busy."""
        env = self.env
        plane = self.fault_plane
        config = plane.config
        stream = plane.manager_stream
        for _ in range(config.manager_outage_max):
            yield env.timeout(stream.exponential(config.manager_outage_interval_ns))
            plane.manager_outages += 1
            plane.emit(
                "manager-outage",
                {"orchestrator": self.name, "ns": config.manager_outage_ns},
            )
            with self.manager.request() as req:
                yield req
                yield env.timeout(config.manager_outage_ns)

    def _retire(self, entry):
        """Process (PE retire hook): the manager processes the completion
        and the output is copied out to memory before the accelerator can
        take its next job (no local output buffering under centralized
        scheduling)."""
        from ..hw.noc import MEMORY_ENDPOINT

        env = self.env
        with self.manager.request() as req:
            yield req
            yield env.timeout(self.costs.relief_manager_per_completion_ns)
        self.manager_busy_ns += self.costs.relief_manager_per_completion_ns
        self.manager_events += 1
        yield env.process(
            self.hardware.dma.transfer(
                entry.op.kind, MEMORY_ENDPOINT, entry.op.data_out
            )
        )

    # -- manager occupancy -------------------------------------------------
    def _manager_work(self, request: Request, duration_ns: float):
        """Process: occupy the central manager (queueing included)."""
        env = self.env
        start = env.now
        with self.manager.request() as req:
            yield req
            yield env.timeout(duration_ns)
        self.manager_busy_ns += duration_ns
        self.manager_events += 1
        request.add(Buckets.ORCHESTRATION, env.now - start)

    # -- hooks ---------------------------------------------------------------
    def submit_overhead(self, request: Request, path: ResolvedPath):
        yield from super().submit_overhead(request, path)
        yield from self._manager_work(
            request, self.costs.relief_manager_per_submission_ns
        )

    def run_step(self, request: Request, step: ResolvedStep):
        if self._admission is None:
            entry = yield from super().run_step(request, step)
            return entry
        # Centralized queue: block for a global slot first.
        env = self.env
        start = env.now
        token = yield self._admission.get()
        request.add(Buckets.QUEUE, env.now - start)
        try:
            entry = yield from super().run_step(request, step)
        finally:
            self._admission.try_put(token)
        return entry

    def after_step(
        self,
        request: Request,
        step: ResolvedStep,
        entry: QueueEntry,
        next_step: Optional[ResolvedStep],
    ):
        env = self.env
        # The per-completion manager interrupt is modeled as PE retire
        # time (see _retire); only the extra fallbacks accrue here.
        manager_ns = 0.0
        if step.branches_after:
            if self.config.dispatcher_branches:
                pass  # resolved locally; charged via glue below
            else:
                # Manager fallback per branch condition.
                manager_ns += (
                    step.branches_after * self.costs.relief_manager_per_completion_ns
                )
        if step.transforms_after and not self.config.dispatcher_transforms:
            kb = entry.op.data_out / 1024.0
            manager_ns += self.costs.relief_manager_per_completion_ns
            manager_ns += self.costs.cpu_transform_ns_per_kb * kb
        if entry.op.data_out > self.hardware.params.accelerator.inline_data_bytes:
            # Large payloads need manager help to stage the memory buffer
            # (removed only by the final AccelFlow rung).
            manager_ns += self.costs.relief_manager_large_data_ns
        if manager_ns > 0:
            yield from self._manager_work(request, manager_ns)

        if self.config.direct_transfers:
            # Trace-driven hand-off: local dispatcher does the base work
            # (and branches, on the cntrflow rung).
            local = ResolvedStep(step.kind)
            if self.config.dispatcher_branches:
                local.branches_after = step.branches_after
            local.atm_read_after = step.atm_read_after
            start = env.now
            with entry.context["accel"].output_dispatcher.request() as disp:
                yield disp
                self.glue.record(local)
                yield env.timeout(self.glue.dispatch_time_ns(local))
            request.add(Buckets.ORCHESTRATION, env.now - start)

        if step.notify_after:
            if self.config.direct_transfers:
                yield from self.deliver_result(request, step, entry)
            else:
                # The manager interrupts the initiating CPU core.
                start = env.now
                yield env.process(self.hardware.cores.handle_interrupt())
                request.add(Buckets.ORCHESTRATION, env.now - start)
                yield from self.deliver_result(request, step, entry)
        elif next_step is not None:
            if self.config.direct_transfers:
                yield from self.dma_to_next(request, step, entry, next_step)
            else:
                # Without trace-driven direct transfers, outputs are
                # staged through the memory hierarchy: one DMA out of the
                # producer, one into the consumer (twice the movement).
                yield from self._staged_transfer(request, step, entry, next_step)

    def _staged_transfer(self, request, step, entry, next_step):
        # The producer side already copied out to memory while the PE
        # retired (_retire); only the memory -> consumer leg remains.
        from ..hw.noc import MEMORY_ENDPOINT

        env = self.env
        start = env.now
        yield env.process(
            self.hardware.dma.transfer(
                MEMORY_ENDPOINT, next_step.kind, entry.op.data_out
            )
        )
        request.add(Buckets.COMMUNICATION, env.now - start)

    def stats(self):
        stats = super().stats()
        stats["manager_busy_ns"] = self.manager_busy_ns
        stats["manager_events"] = float(self.manager_events)
        stats["manager_utilization"] = (
            self.manager_busy_ns / self.env.now if self.env.now > 0 else 0.0
        )
        return stats

"""The non-accelerated baseline: every tax operation runs in software.

All TCP/crypto/RPC/(de)serialization/(de)compression/load-balancing
work executes on CPU cores at full software cost; the only
"orchestration" is ordinary function calls, which are free. This is the
``Non-acc`` system of Figures 11-16.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.trace import ResolvedPath, ResolvedStep
from ..hw.ops import QueueEntry
from ..workloads.request import Request
from .base import Orchestrator, StepOutcome

__all__ = ["NonAcceleratedOrchestrator"]


class NonAcceleratedOrchestrator(Orchestrator):
    """Software-only execution on the core pool."""

    name = "non-acc"
    uses_accelerators = False

    def execute_path(
        self,
        request: Request,
        path: ResolvedPath,
        state: Dict[str, bool],
        initiated_by_core: bool = False,
    ):
        env = self.env
        kinds = path.kinds()
        if kinds:
            duration = self.cost_model.software_chain_ns(
                request.spec, kinds, request.wire_size
            )
            yield from self._run_on_core(request, duration)
            request.accelerator_ops += len(kinds)
        last = path.steps[-1] if path.steps else None
        if last is not None and last.fanout:
            arms = [
                env.process(self._run_arm(request, arm, state))
                for arm in last.fanout
            ]
            yield env.all_of(arms)
        return StepOutcome.OK

    def after_step(
        self,
        request: Request,
        step: ResolvedStep,
        entry: QueueEntry,
        next_step: Optional[ResolvedStep],
    ):  # pragma: no cover - never reached (execute_path overridden)
        raise AssertionError("Non-acc does not execute accelerator steps")
        yield

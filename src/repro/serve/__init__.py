"""Live serving façade: drive the simulated fleet as a wall-clock service.

Batch experiments (:func:`repro.cluster.run_cluster`) fold a whole run
and report afterwards. This package turns the same
:class:`~repro.cluster.SimulatedCluster` into something you can *talk
to* while it runs:

* :class:`SimClock` — maps wall time onto simulated nanoseconds at a
  configurable time-dilation factor and steps the kernel incrementally
  between asyncio awaits (``dilation=inf`` disables pacing entirely,
  keeping replays byte-deterministic for CI).
* :class:`ServiceFacade` — ``await facade.submit("UniqId")`` injects an
  arrival at the cluster front door and resolves with a
  :class:`Response` when the matching terminal event comes off the
  telemetry bus, carrying shed / degraded / lost outcomes.
* :mod:`repro.serve.replay` — ``python -m repro.serve.replay`` replays
  recorded or synthetic open-loop traces in wall-clock time with
  per-request latency logging.
* :mod:`repro.serve.soak` — ``python -m repro.serve.soak`` sustains
  load for N wall-clock seconds with the live dashboard attached and
  emits a final scorecard in the ``fig_campaign`` format.

See ``docs/serving.md`` for the architecture walkthrough.
"""

from .clock import SimClock
from .facade import Response, ServiceFacade, build_scorecard

# The replay/soak drivers are runnable modules (python -m ...); import
# them explicitly (repro.serve.replay / repro.serve.soak) rather than
# from here, so running them with -m does not re-import the package's
# own submodule under runpy.
__all__ = [
    "Response",
    "ServiceFacade",
    "SimClock",
    "build_scorecard",
]

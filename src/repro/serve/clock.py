"""Wall-clock pacing for the simulated fleet.

The :class:`SimClock` maps wall time onto simulated nanoseconds at a
configurable *time-dilation* factor and advances an
:class:`~repro.sim.Environment` in bounded slices between asyncio
awaits. ``dilation`` is the number of simulated seconds that elapse
per wall-clock second:

* ``dilation=1.0`` — real time: a 40 us simulated request takes 40 us
  of wall time to come back.
* ``dilation=10.0`` — the sim runs 10x faster than the wall clock
  (compressed soak runs).
* ``dilation=float("inf")`` — pacing disabled: :meth:`advance_to` steps
  the kernel synchronously with **zero** wall-clock reads, so a replay
  under ``--dilation inf`` is exactly as deterministic as a batch
  experiment run. This is how CI exercises the serving stack.

Pacing never blocks the asyncio loop for long: each catch-up step runs
through :meth:`Environment.run_wall_slice` with a wall budget, so a
backlogged simulation (one that cannot keep up with the dilated wall
clock) degrades into measured *lag* instead of a frozen event loop.
"""

from __future__ import annotations

import asyncio
import math
from time import perf_counter
from typing import Optional

from ..sim import Environment

__all__ = ["SimClock"]

_SECOND_NS = 1e9


class SimClock:
    """Paces a simulation :class:`Environment` against the wall clock."""

    def __init__(
        self,
        env: Environment,
        dilation: float = 1.0,
        tick_wall_s: float = 0.005,
        slice_wall_budget_s: float = 0.05,
    ):
        if not dilation > 0:
            raise ValueError(f"dilation must be positive, got {dilation}")
        if tick_wall_s <= 0 or slice_wall_budget_s <= 0:
            raise ValueError("tick and slice budget must be positive")
        self.env = env
        self.dilation = float(dilation)
        #: Pacing granularity: the longest single asyncio sleep taken
        #: while waiting for the wall clock to catch up.
        self.tick_wall_s = tick_wall_s
        #: Wall budget of one kernel slice (keeps the loop responsive).
        self.slice_wall_budget_s = slice_wall_budget_s
        #: True when the clock actually paces (finite dilation).
        self.paced = math.isfinite(self.dilation)
        self._wall_origin: Optional[float] = None
        self._sim_origin_ns = env.now
        #: Peak observed sim-behind-wall lag (sim ns), paced mode only.
        self.max_lag_ns = 0.0

    # -- mapping -----------------------------------------------------------
    def start(self) -> None:
        """Pin the wall origin (implicit on the first paced advance)."""
        if self._wall_origin is None:
            self._wall_origin = perf_counter()
            self._sim_origin_ns = self.env.now

    @property
    def wall_elapsed_s(self) -> float:
        """Wall seconds since :meth:`start` (0.0 before it)."""
        if self._wall_origin is None:
            return 0.0
        return perf_counter() - self._wall_origin

    def sim_target_ns(self) -> float:
        """The sim time the wall clock has currently 'paid for'."""
        if not self.paced:
            return float("inf")
        self.start()
        return self._sim_origin_ns + self.wall_elapsed_s * self.dilation * _SECOND_NS

    def wall_for_ns(self, sim_ns: float) -> float:
        """Wall seconds (since origin) at which ``sim_ns`` is due."""
        if not self.paced:
            return 0.0
        self.start()
        return (sim_ns - self._sim_origin_ns) / (self.dilation * _SECOND_NS)

    def lag_ns(self) -> float:
        """How far the sim clock trails its wall-mapped target (>= 0)."""
        if not self.paced:
            return 0.0
        return max(0.0, self.sim_target_ns() - self.env.now)

    # -- advancing ---------------------------------------------------------
    async def advance_to(self, sim_ns: float) -> None:
        """Advance the simulation to ``sim_ns``, paced by the wall clock.

        Unpaced (``dilation=inf``): a synchronous ``env.run(until=...)``
        with no wall-clock reads — fully deterministic. Paced: sleeps in
        ticks until the wall clock reaches each slice's due time, then
        steps the kernel under a wall budget; concurrent callers are
        safe (whoever advances past another caller's target simply
        satisfies it).
        """
        env = self.env
        # Clamp to "no earlier than now": advancing to the current sim
        # time still processes events *due* at it (a fresh submission
        # schedules at t == now; skipping those would spin the caller).
        target_ns = max(float(sim_ns), env.now)
        if not self.paced:
            env.run(until=target_ns)
            return
        self.start()
        while True:
            if env.now > target_ns:
                # A concurrent caller advanced the sim past our target
                # while we were parked on an await: already satisfied.
                return
            paid = self.sim_target_ns()
            if paid >= target_ns:
                # The wall clock already paid for the whole span: catch
                # up in bounded slices, yielding between them.
                reached = env.run_wall_slice(
                    target_ns, wall_budget_s=self.slice_wall_budget_s
                )
                lag = self.lag_ns()
                if lag > self.max_lag_ns:
                    self.max_lag_ns = lag
                if reached:
                    return
                await asyncio.sleep(0)
                continue
            if paid > env.now:
                env.run_wall_slice(
                    paid, wall_budget_s=self.slice_wall_budget_s
                )
            remaining_wall = self.wall_for_ns(target_ns) - self.wall_elapsed_s
            await asyncio.sleep(
                min(self.tick_wall_s, max(remaining_wall, 0.0))
            )

    async def advance_for_wall(self, wall_s: float) -> None:
        """Run paced for ``wall_s`` wall seconds from now (paced only)."""
        if not self.paced:
            raise ValueError("advance_for_wall requires a finite dilation")
        self.start()
        await self.advance_to(
            self.sim_target_ns() + wall_s * self.dilation * _SECOND_NS
        )

    def stats(self) -> dict:
        return {
            "dilation": self.dilation,
            "paced": self.paced,
            "wall_elapsed_s": self.wall_elapsed_s,
            "sim_elapsed_ns": self.env.now - self._sim_origin_ns,
            "max_lag_ns": self.max_lag_ns,
        }

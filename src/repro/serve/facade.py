"""The request-level front door of the simulated fleet.

:class:`ServiceFacade` wraps a :class:`~repro.cluster.SimulatedCluster`
behind an asyncio request API: ``await facade.submit("UniqId")`` injects
an arrival at the cluster front door, lets the :class:`SimClock` pace
the kernel, and resolves with a :class:`Response` when the *matching*
:class:`~repro.obs.telemetry.RequestEnd` comes off the telemetry bus —
carrying shed / degraded / lost / failed outcomes, not just latencies.

The façade requires the cluster's streaming telemetry plane
(``ObsConfig(telemetry=True)``): terminal events are how responses are
matched (by front-door request id), which is also what makes the same
bus drive the live dashboard and SLO alerting during a soak run.

Determinism contract: with an unpaced clock (``dilation=inf``) nothing
here reads the wall clock and the submission order fully determines the
event order, so a façade-driven run is as reproducible as a batch
:func:`~repro.cluster.run_cluster` run.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..cluster import ClusterConfig, SimulatedCluster, fold_cluster_result
from ..cluster.cluster import RequestStatus
from ..obs.telemetry import AdmissionEvent, RequestEnd, TelemetryEvent
from ..workloads.spec import ServiceSpec
from .clock import SimClock

__all__ = ["Response", "ServiceFacade", "build_scorecard"]

_SECOND_NS = 1e9

#: Terminal status of a request that was still unresolved when the
#: driver gave up waiting (the wall-clock analogue of a horizon cut).
CENSORED = "censored"


@dataclass(frozen=True)
class Response:
    """Outcome of one façade submission."""

    service: str
    #: ``"ok"`` / ``"shed"`` / ``"lost"`` / ``"fluid"`` / ``"censored"``.
    status: str
    #: Completed without error or timeout (sheds and losses are False).
    ok: bool
    latency_ns: float
    arrival_ns: float
    rid: int
    #: The front door admitted this request in degraded (brown-out) mode.
    degraded: bool = False
    error: bool = False
    timed_out: bool = False
    fell_back: bool = False


class ServiceFacade:
    """Async request API over one simulated cluster."""

    def __init__(
        self,
        cluster: SimulatedCluster,
        services: List[ServiceSpec],
        clock: Optional[SimClock] = None,
    ):
        if cluster.bus is None:
            raise ValueError(
                "ServiceFacade needs the streaming telemetry plane: build "
                "the cluster with ClusterConfig(obs=ObsConfig(telemetry=True))"
            )
        self.cluster = cluster
        self.env = cluster.env
        self.clock = clock if clock is not None else SimClock(
            cluster.env, dilation=float("inf")
        )
        self.specs: Dict[str, ServiceSpec] = {s.name: s for s in services}
        #: ``(service, arrival_ns, process)`` per submission — the same
        #: shape run_cluster folds, so :meth:`fold` can reuse it.
        self.sink: List[Tuple[str, float, object]] = []
        self.submitted = 0
        self.responses: List[Response] = []
        #: rid -> (future, service, arrival_ns) for in-flight requests.
        self._waiters: Dict[int, Tuple[asyncio.Future, str, float]] = {}
        self._degraded: Dict[int, bool] = {}
        cluster.bus.subscribe(self._on_event, kinds=(RequestEnd, AdmissionEvent))

    @classmethod
    def build(
        cls,
        services: List[ServiceSpec],
        config: ClusterConfig,
        clock: Optional[SimClock] = None,
    ) -> "ServiceFacade":
        """Construct the cluster from ``config`` and wrap it."""
        return cls(SimulatedCluster(config), list(services), clock=clock)

    # -- bus intake --------------------------------------------------------
    def _on_event(self, event: TelemetryEvent) -> None:
        if isinstance(event, AdmissionEvent):
            if event.rid is not None and event.decision == "degrade":
                self._degraded[event.rid] = True
            return
        rid = event.rid
        if rid is None:
            return
        waiter = self._waiters.pop(rid, None)
        if waiter is None:
            return
        future = waiter[0]
        if future.done():
            return
        self._resolve(
            future,
            Response(
                service=event.service,
                status=event.status,
                ok=event.ok,
                latency_ns=event.latency_ns,
                arrival_ns=event.t_ns - event.latency_ns,
                rid=rid,
                degraded=self._degraded.pop(rid, False),
                error=event.error,
                timed_out=event.timed_out,
                fell_back=event.fell_back,
            ),
        )

    # -- submission --------------------------------------------------------
    def submit_nowait(
        self, service: str, payload: Optional[object] = None
    ) -> "asyncio.Future":
        """Inject one arrival now; the future resolves to a :class:`Response`.

        ``payload`` overrides the sampled wire size: an int is taken as
        bytes, ``bytes``/``str`` payloads contribute their length.
        Requires a running asyncio event loop.
        """
        spec = self.specs.get(service)
        if spec is None:
            raise KeyError(
                f"unknown service {service!r}; known: {sorted(self.specs)}"
            )
        request = self.cluster.make_request(spec)
        if payload is not None:
            if isinstance(payload, (bytes, str)):
                request.wire_size = max(len(payload), 1)
            else:
                request.wire_size = max(int(payload), 1)
        future = asyncio.get_running_loop().create_future()
        self._waiters[request.rid] = (future, service, request.arrival_ns)
        proc = self.cluster.submit(request)
        self.sink.append((service, request.arrival_ns, proc))
        self.submitted += 1
        # Fallback terminal: a fluid-tier absorption ends the lifecycle
        # without a per-request RequestEnd on the bus.
        proc.callbacks.append(
            lambda event, rid=request.rid: self._on_proc_done(rid, event)
        )
        return future

    def _on_proc_done(self, rid: int, proc) -> None:
        waiter = self._waiters.pop(rid, None)
        if waiter is None:
            return
        future = waiter[0]
        if future.done():
            return
        if not proc.ok:
            return  # lifecycle crashed; the failure propagates from run()
        status, request = proc.value
        self._resolve(
            future,
            Response(
                service=request.spec.name,
                status=status,
                ok=False,
                latency_ns=float("nan"),
                arrival_ns=request.arrival_ns,
                rid=rid,
                degraded=self._degraded.pop(rid, False),
            ),
        )

    def _resolve(self, future: "asyncio.Future", response: Response) -> None:
        # Collect synchronously: an asyncio done-callback would only run
        # once the loop cycles, and an unpaced replay never yields to it
        # before folding the scorecard.
        self.responses.append(response)
        future.set_result(response)

    async def submit(
        self, service: str, payload: Optional[object] = None, drive: bool = True
    ) -> Response:
        """Submit one request and await its outcome.

        With ``drive=True`` (the default) the façade advances the sim —
        paced by its clock — until the response lands; pass
        ``drive=False`` when a separate pump task (the soak runner's
        open-loop injectors) is advancing the clock.
        """
        future = self.submit_nowait(service, payload)
        if drive:
            await self.drive_until(future.done)
            if not future.done():
                raise RuntimeError(
                    f"simulation ran out of events before request to "
                    f"{service!r} resolved"
                )
        return await future

    # -- driving -----------------------------------------------------------
    async def drive_until(
        self,
        done,
        horizon_ns: Optional[float] = None,
        quantum_ns: float = 0.0,
    ) -> bool:
        """Advance the sim until ``done()`` (or horizon).

        Steps event-by-event by default, so the sim stops exactly where
        the condition first holds; a positive ``quantum_ns`` advances in
        strides of at least that much sim time instead (much cheaper for
        bulk drains, at the cost of overshooting by up to one stride).
        Returns True when ``done()`` held, False when the calendar ran
        dry or the sim clock hit ``horizon_ns`` first.
        """
        env = self.env
        while not done():
            next_at = env.peek()
            if next_at == float("inf"):
                return done()
            target = max(next_at, env.now + quantum_ns) if quantum_ns else next_at
            if horizon_ns is not None and target > horizon_ns:
                if next_at > horizon_ns:
                    await self.clock.advance_to(horizon_ns)
                    return done()
                target = horizon_ns
            await self.clock.advance_to(target)
        return True

    async def drain(
        self, drain_ns: float = 200e6, horizon_ns: Optional[float] = None
    ) -> int:
        """Run until every pending submission resolves (bounded).

        Waits at most ``drain_ns`` past the current sim time (or to the
        explicit ``horizon_ns``); whatever is still unresolved is then
        finalized as censored. Returns the number censored.
        """
        deadline = (
            horizon_ns if horizon_ns is not None else self.env.now + drain_ns
        )
        await self.drive_until(
            lambda: not self._waiters, horizon_ns=deadline, quantum_ns=1e6
        )
        return self.finalize_pending()

    def finalize_pending(self) -> int:
        """Resolve every still-pending future as censored."""
        pending = list(self._waiters.items())
        self._waiters.clear()
        for rid, (future, service, arrival_ns) in pending:
            if future.done():
                continue
            self._resolve(
                future,
                Response(
                    service=service,
                    status=CENSORED,
                    ok=False,
                    latency_ns=float("nan"),
                    arrival_ns=arrival_ns,
                    rid=rid,
                    degraded=self._degraded.pop(rid, False),
                ),
            )
        return len(pending)

    # -- folding -----------------------------------------------------------
    def fold(self, config: ClusterConfig):
        """The standard :class:`~repro.cluster.ClusterResult` over
        everything submitted through the façade so far."""
        return fold_cluster_result(
            self.cluster, list(self.specs.values()), config, self.sink
        )


# ----------------------------------------------------------------------
# Scorecard
# ----------------------------------------------------------------------
def build_scorecard(
    responses: List[Response],
    elapsed_ns: float,
    alerts_fired: int = 0,
    title: str = "Serving scorecard",
) -> Dict[str, object]:
    """Fold façade responses into the fleet scorecard.

    Same fixed-width :func:`~repro.experiments.common.format_table`
    rendering as ``fig_campaign``; the headline footer carries the
    soak/replay acceptance numbers (achieved RPS, P99, availability,
    alert count). Deterministic for a deterministic response list.
    """
    from ..experiments.common import format_table
    from ..sim import summarize

    per_service: Dict[str, List[Response]] = {}
    for response in responses:
        per_service.setdefault(response.service, []).append(response)

    def _fold(name: str, group: List[Response]) -> List[object]:
        ok = [r for r in group if r.ok]
        latencies = [r.latency_ns for r in ok if math.isfinite(r.latency_ns)]
        stats = summarize(latencies)
        shed = sum(1 for r in group if r.status == RequestStatus.SHED)
        lost = sum(1 for r in group if r.status == RequestStatus.LOST)
        censored = sum(1 for r in group if r.status == CENSORED)
        degraded = sum(1 for r in group if r.degraded)
        avail = 100.0 * len(ok) / len(group) if group else 0.0
        rps = (
            len(ok) / (elapsed_ns * 1e-9) if elapsed_ns > 0 else 0.0
        )
        return [
            name,
            len(group),
            len(ok),
            shed,
            lost,
            censored,
            degraded,
            avail,
            stats.get("p50", 0.0) / 1e3,
            stats.get("p99", 0.0) / 1e3,
            rps,
        ]

    rows = [
        _fold(name, per_service[name]) for name in sorted(per_service)
    ]
    total_row = _fold("TOTAL", responses) if responses else None
    if total_row is not None and len(per_service) > 1:
        rows.append(total_row)
    table = format_table(
        [
            "Service",
            "Submitted",
            "OK",
            "Shed",
            "Lost",
            "Censored",
            "Degraded",
            "Avail%",
            "P50(us)",
            "P99(us)",
            "RPS",
        ],
        rows,
        title=title,
    )
    totals = total_row or ["TOTAL", 0, 0, 0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0]
    headline = (
        f"Achieved RPS {totals[10]:,.1f}  P99 {totals[9]:,.1f} us  "
        f"availability {totals[7]:.1f}%  alerts fired {alerts_fired}"
    )
    table += "\n\n" + headline
    return {
        "table": table,
        "submitted": totals[1],
        "ok": totals[2],
        "shed": totals[3],
        "lost": totals[4],
        "censored": totals[5],
        "degraded": totals[6],
        "availability": totals[7] / 100.0,
        "p50_us": totals[8],
        "p99_us": totals[9],
        "achieved_rps": totals[10],
        "alerts_fired": alerts_fired,
        "elapsed_ns": elapsed_ns,
    }

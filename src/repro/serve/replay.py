"""Trace replay against the live serving façade.

``python -m repro.serve.replay`` replays an open-loop arrival trace —
recorded (JSONL) or synthesized from the :func:`make_arrivals` load
models — through a :class:`~repro.serve.ServiceFacade` in wall-clock
time, logging per-request latencies and finishing with the fleet
scorecard.

Determinism: the trace is materialized up front (plain CRN draws, no
asyncio involved) and injected by a single task, so under
``--dilation inf`` the whole replay makes zero wall-clock reads and two
runs with the same seed produce byte-identical scorecards. That is the
mode CI exercises; finite dilations add pacing (and pacing statistics)
on top of the *same* sim-side event sequence.

Examples::

    # Deterministic CI smoke: unpaced, 2 machines, 40 requests/service.
    python -m repro.serve.replay --dilation inf --requests 40

    # Real-time-ish: 1 sim second per wall second, log each request.
    python -m repro.serve.replay --dilation 1.0 --log-latencies -

    # Record a trace, then replay the recording.
    python -m repro.serve.replay --save-trace /tmp/t.jsonl --requests 80
    python -m repro.serve.replay --trace /tmp/t.jsonl
"""

from __future__ import annotations

import argparse
import asyncio
import json
import math
import sys
from typing import Dict, List, Optional, Sequence, TextIO, Tuple

from ..cluster import AdmissionConfig, ClusterConfig
from ..obs import ObsConfig
from ..obs.slo import SLOMonitorConfig, SLOTarget
from ..sim import RandomStreams, derive_seed
from ..workloads import social_network_services
from ..workloads.arrivals import make_arrivals
from ..workloads.spec import ServiceSpec
from .clock import SimClock
from .facade import ServiceFacade, build_scorecard

__all__ = [
    "build_serving_stack",
    "load_trace",
    "main",
    "replay_trace",
    "save_trace",
    "synthetic_trace",
]

_SECOND_NS = 1e9

#: One trace entry: (arrival sim time in ns, service name).
TraceEvent = Tuple[float, str]


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def synthetic_trace(
    services: Sequence[ServiceSpec],
    mode: str = "poisson",
    rate_rps: Optional[float] = None,
    requests_per_service: int = 50,
    seed: int = 0,
    burst_factor: float = 6.0,
    burst_share: float = 0.15,
    mean_dwell_ns: float = 2e6,
) -> List[TraceEvent]:
    """Materialize an open-loop trace from the named load model.

    Reuses the :func:`make_arrivals` shapes (poisson / alibaba / azure /
    mmpp) with per-service CRN streams derived from ``seed``, so the
    trace — like a batch run — is a pure function of its parameters.
    """
    streams = RandomStreams(derive_seed(seed, "replay-trace"))
    events: List[TraceEvent] = []
    for spec in services:
        rate = rate_rps if rate_rps is not None else spec.rate_rps
        arrivals = make_arrivals(
            mode,
            rate,
            streams.stream(f"arrivals/{spec.name}"),
            burst_factor=burst_factor,
            burst_share=burst_share,
            mean_dwell_ns=mean_dwell_ns,
        )
        t_ns = 0.0
        for _ in range(requests_per_service):
            t_ns += arrivals.next_gap_ns()
            events.append((t_ns, spec.name))
    events.sort(key=lambda event: (event[0], event[1]))
    return events


def save_trace(path: str, trace: Sequence[TraceEvent]) -> None:
    """Write a trace as JSONL (one ``{"t_ns", "service"}`` per line)."""
    with open(path, "w") as handle:
        for t_ns, service in trace:
            handle.write(
                json.dumps({"t_ns": t_ns, "service": service}) + "\n"
            )


def load_trace(path: str) -> List[TraceEvent]:
    """Read a JSONL trace written by :func:`save_trace` (or a real
    front-door access log massaged into the same shape)."""
    events: List[TraceEvent] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                events.append((float(record["t_ns"]), str(record["service"])))
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: expected t_ns/service, got {line!r}"
                ) from exc
    events.sort(key=lambda event: (event[0], event[1]))
    return events


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
async def replay_trace(
    facade: ServiceFacade,
    trace: Sequence[TraceEvent],
    drain_ns: float = 500e6,
    log: Optional[TextIO] = None,
) -> Dict[str, object]:
    """Replay ``trace`` through ``facade`` and return its scorecard.

    A single injector advances the façade's clock to each arrival time
    and submits; after the last arrival the run drains (bounded by
    ``drain_ns``) and pending requests are censored. With ``log``, one
    line per completed request is written in completion order.
    """
    env = facade.env
    for t_ns, service in trace:
        if t_ns > env.now:
            await facade.clock.advance_to(t_ns)
        facade.submit_nowait(service)
    await facade.drain(drain_ns=drain_ns)
    if log is not None:
        for response in facade.responses:
            latency = (
                f"{response.latency_ns / 1e3:10.1f}us"
                if math.isfinite(response.latency_ns)
                else f"{'-':>12}"
            )
            log.write(
                f"{response.service:<16} {response.status:<8} {latency}"
                f"  degraded={int(response.degraded)}\n"
            )
    monitor = None
    obs = facade.cluster.config.obs
    if obs is not None:
        monitor = obs.slo_monitor
    if monitor is not None:
        monitor.sweep(env.now)
    alerts = len(monitor.fired_ever()) if monitor is not None else 0
    return build_scorecard(
        facade.responses,
        elapsed_ns=env.now,
        alerts_fired=alerts,
        title="Replay scorecard",
    )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _parse_dilation(value: str) -> float:
    dilation = float(value)  # accepts "inf"
    if not dilation > 0:
        raise argparse.ArgumentTypeError(
            f"dilation must be positive (or inf), got {value}"
        )
    return dilation


def pick_services(names: Optional[str]) -> List[ServiceSpec]:
    """The SocialNetwork specs named in a comma list (None = first 3)."""
    catalog = {spec.name: spec for spec in social_network_services()}
    if not names:
        return list(catalog.values())[:3]
    picked = []
    for name in names.split(","):
        name = name.strip()
        if name not in catalog:
            raise SystemExit(
                f"unknown service {name!r}; known: {', '.join(catalog)}"
            )
        picked.append(catalog[name])
    return picked


def build_serving_stack(
    services: Sequence[ServiceSpec],
    machines: int = 2,
    policy: str = "round-robin",
    seed: int = 0,
    dilation: float = float("inf"),
    admission: Optional[str] = None,
    slo_ms: float = 2.0,
    with_slo_monitor: bool = True,
) -> ServiceFacade:
    """One-stop construction of cluster + telemetry + clock + façade."""
    slo = (
        SLOMonitorConfig(
            targets=tuple(
                SLOTarget(
                    service=spec.name,
                    availability=0.99,
                    latency_ns=slo_ms * 1e6,
                )
                for spec in services
            ),
            fast_window_ns=20e6,
            slow_window_ns=200e6,
            burn_threshold=2.0,
        )
        if with_slo_monitor
        else None
    )
    config = ClusterConfig(
        machines=machines,
        policy=policy,
        seed=seed,
        admission=(
            AdmissionConfig(slo_ns=slo_ms * 1e6, mode=admission)
            if admission
            else None
        ),
        obs=ObsConfig(telemetry=True, slo=slo),
    )
    facade = ServiceFacade.build(list(services), config)
    facade.clock = SimClock(facade.env, dilation=dilation)
    return facade


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.replay",
        description="Replay an open-loop trace against the simulated fleet.",
    )
    parser.add_argument(
        "--dilation",
        type=_parse_dilation,
        default=float("inf"),
        help="sim seconds per wall second; 'inf' disables pacing "
        "(deterministic, the CI mode). Default: inf.",
    )
    parser.add_argument(
        "--services",
        default=None,
        help="comma list of SocialNetwork services (default: first 3)",
    )
    parser.add_argument("--machines", type=int, default=2)
    parser.add_argument("--policy", default="round-robin")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode",
        default="poisson",
        choices=["poisson", "alibaba", "azure", "mmpp"],
        help="synthetic load model (ignored with --trace)",
    )
    parser.add_argument(
        "--rate", type=float, default=None, help="per-service RPS override"
    )
    parser.add_argument("--requests", type=int, default=50,
                        help="synthetic requests per service")
    parser.add_argument(
        "--admission",
        default=None,
        choices=["shed", "degrade", "proportional"],
        help="front-door admission control mode (default: off)",
    )
    parser.add_argument("--slo-ms", type=float, default=2.0,
                        help="per-request latency SLO in milliseconds")
    parser.add_argument("--drain-ms", type=float, default=500.0,
                        help="sim milliseconds to wait past the last arrival")
    parser.add_argument("--trace", default=None,
                        help="replay this JSONL trace instead of synthesizing")
    parser.add_argument("--save-trace", default=None,
                        help="write the (synthetic) trace to this path")
    parser.add_argument(
        "--log-latencies",
        default=None,
        metavar="PATH",
        help="per-request completion log ('-' for stdout)",
    )
    args = parser.parse_args(argv)

    services = pick_services(args.services)
    if args.trace:
        trace = load_trace(args.trace)
        known = {spec.name for spec in services}
        missing = sorted({s for _, s in trace} - known)
        if missing:
            raise SystemExit(
                f"trace references services not in --services: {missing}"
            )
    else:
        trace = synthetic_trace(
            services,
            mode=args.mode,
            rate_rps=args.rate,
            requests_per_service=args.requests,
            seed=args.seed,
        )
    if args.save_trace:
        save_trace(args.save_trace, trace)

    facade = build_serving_stack(
        services,
        machines=args.machines,
        policy=args.policy,
        seed=args.seed,
        dilation=args.dilation,
        admission=args.admission,
        slo_ms=args.slo_ms,
    )
    log: Optional[TextIO] = None
    close_log = False
    if args.log_latencies == "-":
        log = sys.stdout
    elif args.log_latencies:
        log = open(args.log_latencies, "w")
        close_log = True
    try:
        scorecard = asyncio.run(
            replay_trace(
                facade, trace, drain_ns=args.drain_ms * 1e6, log=log
            )
        )
    finally:
        if close_log and log is not None:
            log.close()
    print(scorecard["table"])
    if facade.clock.paced:
        # Pacing stats read the wall clock, so they are only printed in
        # paced mode — unpaced output stays byte-deterministic.
        stats = facade.clock.stats()
        print(
            f"\nPacing: dilation {stats['dilation']:g}x, "
            f"wall {stats['wall_elapsed_s']:.2f} s for "
            f"{stats['sim_elapsed_ns'] / 1e6:.2f} ms sim, "
            f"max lag {stats['max_lag_ns'] / 1e6:.2f} ms sim"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

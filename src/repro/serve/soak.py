"""Wall-clock soak runs against the live serving façade.

``python -m repro.serve.soak`` sustains open-loop load on a simulated
fleet for N *wall-clock* seconds — arrivals paced by the
:class:`~repro.serve.SimClock` at a finite dilation — with the live
:class:`~repro.obs.dashboard.Dashboard` attached to the same telemetry
bus the façade matches responses on. When the timer expires the run
drains, pending requests are censored, and a final scorecard (achieved
RPS, P99, availability, alert count) is emitted in the same
:func:`~repro.experiments.common.format_table` style as
``fig_campaign``.

Unlike replay, a soak is inherently wall-clocked: how much simulated
time fits into the run depends on the host. The *sim-side* behaviour at
any given arrival sequence is still exact — pacing only decides when
the kernel is stepped, never how.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, TextIO

from ..obs.dashboard import Dashboard
from ..workloads.arrivals import make_arrivals
from ..workloads.spec import ServiceSpec
from .facade import ServiceFacade, build_scorecard
from .replay import _parse_dilation, build_serving_stack, pick_services

__all__ = ["SoakConfig", "main", "run_soak"]


@dataclass
class SoakConfig:
    """Shape of one soak run."""

    #: Wall-clock duration of the injection phase.
    wall_seconds: float = 5.0
    #: Sim seconds per wall second (must be finite: a soak is paced).
    dilation: float = 50.0
    #: Wall seconds between live dashboard refreshes (0 disables).
    refresh_wall_s: float = 0.5
    #: Arrival model (poisson / alibaba / azure / mmpp).
    mode: str = "poisson"
    #: Per-service RPS override (None: each spec's own rate).
    rate_rps: Optional[float] = None
    #: Sim time allowed for the post-injection drain.
    drain_ns: float = 100e6
    #: Redraw in place with ANSI escapes instead of appending blocks.
    live: bool = False


async def _inject(
    facade: ServiceFacade,
    spec: ServiceSpec,
    config: SoakConfig,
    stop: asyncio.Event,
) -> int:
    """Open-loop arrivals for one service until ``stop`` is set."""
    arrivals = make_arrivals(
        config.mode,
        config.rate_rps if config.rate_rps is not None else spec.rate_rps,
        facade.cluster.streams.stream(f"serve-arrivals/{spec.name}"),
    )
    injected = 0
    next_ns = facade.env.now
    while not stop.is_set():
        next_ns += arrivals.next_gap_ns()
        await facade.clock.advance_to(next_ns)
        if stop.is_set():
            break
        facade.submit_nowait(spec.name)
        injected += 1
    return injected


async def _refresh(
    dashboard: Dashboard,
    config: SoakConfig,
    stop: asyncio.Event,
    out: TextIO,
) -> None:
    while not stop.is_set():
        try:
            await asyncio.wait_for(stop.wait(), timeout=config.refresh_wall_s)
        except asyncio.TimeoutError:
            pass
        if config.live:
            dashboard.render_live(out)
        else:
            out.write(dashboard.snapshot() + "\n\n")
            out.flush()


async def run_soak(
    services: Sequence[ServiceSpec],
    facade: ServiceFacade,
    config: Optional[SoakConfig] = None,
    out: Optional[TextIO] = None,
) -> Dict[str, object]:
    """Drive ``facade`` under open-loop load for a wall-clock window.

    Returns the final scorecard dict (see
    :func:`~repro.serve.build_scorecard`), extended with the clock's
    pacing statistics under ``"pacing"`` and the live dashboard's final
    snapshot under ``"dashboard"``.
    """
    config = config or SoakConfig()
    out = out or sys.stdout
    if not facade.clock.paced:
        raise ValueError(
            "a soak run needs a finite dilation (the wall clock is the "
            "stop condition); use repro.serve.replay for unpaced runs"
        )
    obs = facade.cluster.config.obs
    dashboard = Dashboard(
        facade.cluster.bus, slo=obs.slo if obs is not None else None
    )
    stop = asyncio.Event()
    tasks: List[asyncio.Task] = [
        asyncio.ensure_future(_inject(facade, spec, config, stop))
        for spec in services
    ]
    if config.refresh_wall_s > 0:
        tasks.append(
            asyncio.ensure_future(_refresh(dashboard, config, stop, out))
        )
    await asyncio.sleep(config.wall_seconds)
    stop.set()
    for task in tasks:
        task.cancel()
    await asyncio.gather(*tasks, return_exceptions=True)
    await facade.drain(drain_ns=config.drain_ns)

    monitor = obs.slo_monitor if obs is not None else None
    if monitor is not None:
        monitor.sweep(facade.env.now)
    alerts = len(monitor.fired_ever()) if monitor is not None else 0
    scorecard = build_scorecard(
        facade.responses,
        elapsed_ns=facade.env.now,
        alerts_fired=alerts,
        title="Soak scorecard",
    )
    scorecard["pacing"] = facade.clock.stats()
    scorecard["dashboard"] = dashboard.snapshot()
    return scorecard


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.soak",
        description="Sustain wall-clock load on the simulated fleet with "
        "the live dashboard attached.",
    )
    parser.add_argument("--seconds", type=float, default=5.0,
                        help="wall-clock soak duration (default 5)")
    parser.add_argument(
        "--dilation",
        type=_parse_dilation,
        default=50.0,
        help="sim seconds per wall second (finite; default 50)",
    )
    parser.add_argument("--services", default=None,
                        help="comma list of SocialNetwork services")
    parser.add_argument("--machines", type=int, default=2)
    parser.add_argument("--policy", default="round-robin")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--mode",
        default="poisson",
        choices=["poisson", "alibaba", "azure", "mmpp"],
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=1000.0,
        help="per-service RPS (default 1000; pass 0 for each spec's "
        "own — much heavier — rate)",
    )
    parser.add_argument("--drain-ms", type=float, default=100.0,
                        help="sim milliseconds allowed for the final drain")
    parser.add_argument(
        "--admission",
        default=None,
        choices=["shed", "degrade", "proportional"],
    )
    parser.add_argument("--slo-ms", type=float, default=2.0)
    parser.add_argument("--refresh", type=float, default=0.5,
                        help="dashboard refresh period, wall seconds")
    parser.add_argument("--live", action="store_true",
                        help="redraw the dashboard in place (ANSI)")
    args = parser.parse_args(argv)

    services = pick_services(args.services)
    facade = build_serving_stack(
        services,
        machines=args.machines,
        policy=args.policy,
        seed=args.seed,
        dilation=args.dilation,
        admission=args.admission,
        slo_ms=args.slo_ms,
    )
    config = SoakConfig(
        wall_seconds=args.seconds,
        dilation=args.dilation,
        refresh_wall_s=args.refresh,
        mode=args.mode,
        rate_rps=args.rate if args.rate > 0 else None,
        drain_ns=args.drain_ms * 1e6,
        live=args.live,
    )
    scorecard = asyncio.run(run_soak(services, facade, config))
    print(scorecard["table"])
    pacing = scorecard["pacing"]
    print(
        f"\nPacing: dilation {pacing['dilation']:g}x, "
        f"wall {pacing['wall_elapsed_s']:.2f} s for "
        f"{pacing['sim_elapsed_ns'] / 1e6:.2f} ms sim, "
        f"max lag {pacing['max_lag_ns'] / 1e6:.2f} ms sim"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Server assembly, experiment driver and metrics."""

from .driver import (
    RunConfig,
    combine_dedicated,
    max_throughput_search,
    run_dedicated_service,
    run_experiment,
    run_unloaded,
    saturation_throughput,
)
from .machine import SimulatedServer
from .metrics import ExperimentResult, ServiceResult, energy_summary
from ..workloads.request import Buckets, Request

__all__ = [
    "Buckets",
    "ExperimentResult",
    "Request",
    "RunConfig",
    "ServiceResult",
    "SimulatedServer",
    "combine_dedicated",
    "energy_summary",
    "max_throughput_search",
    "run_dedicated_service",
    "run_experiment",
    "saturation_throughput",
    "run_unloaded",
]

"""Experiment driver: open-loop load generation and measurement runs.

The driver builds a :class:`SimulatedServer`, plays an arrival process
per service, and collects per-service latency distributions plus
hardware statistics. Two deployment modes match the paper's setups:

* dedicated — each service measured on its own server instance
  (Figures 11-14, 18-20); results are merged across services.
* colocated — all services share one server (the serverless study,
  Figure 16).

``run_unloaded`` executes requests one at a time (Figure 17 and the
SLO reference latencies), and ``max_throughput_search`` binary-searches
the highest per-service load whose P99 stays within the SLO (Fig 14).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..faults import FaultConfig
from ..hw.accelerator import QueuePolicy
from ..hw.params import MachineParams
from ..obs import ObsConfig
from ..workloads.arrivals import make_arrivals
from ..workloads.calibration import (
    BranchProbabilities,
    OrchestrationCosts,
    RemoteLatencies,
)
from ..core.registry import TraceRegistry
from ..workloads.spec import ServiceSpec
from .machine import SimulatedServer
from .metrics import ExperimentResult, ServiceResult

__all__ = [
    "RunConfig",
    "run_experiment",
    "run_dedicated_service",
    "combine_dedicated",
    "run_unloaded",
    "max_throughput_search",
]

_SECOND_NS = 1e9


@dataclass(frozen=True)
class RunConfig:
    """Parameters of one measurement run."""

    architecture: str
    requests_per_service: int = 300
    seed: int = 0
    queue_policy: str = QueuePolicy.FIFO
    machine_params: Optional[MachineParams] = None
    #: "poisson" (Fig 12 sweeps) or "alibaba"/"azure" (MMPP bursty).
    arrival_mode: str = "alibaba"
    #: Overrides every service's own rate when set (RPS per service).
    rate_rps: Optional[float] = None
    rate_scale: float = 1.0
    #: True: all services share one server. False: one server each.
    colocated: bool = False
    warmup_fraction: float = 0.1
    #: Run at most this much simulated time past the last arrival.
    drain_ns: float = 200e6
    #: Multiplies mean unloaded latency to set the per-request soft
    #: deadline when the EDF queue policy is active.
    slo_multiplier: float = 5.0
    #: Reference unloaded latency per service (for EDF deadlines).
    unloaded_reference_ns: Dict[str, float] = field(default_factory=dict)
    orch_costs: Optional[OrchestrationCosts] = None
    remotes: Optional[RemoteLatencies] = None
    branch_probs: Optional[BranchProbabilities] = None
    #: Custom trace catalogue (defaults to the standard T1-T12 set).
    registry: Optional[TraceRegistry] = None
    #: Observability switchboard (tracing / metrics / kernel profiling).
    #: Dedicated-mode runs create one server per service, each appending
    #: its own session to this config; use colocated or single-service
    #: runs for one consolidated trace.
    obs: Optional[ObsConfig] = None
    #: Fault injection + recovery knobs (None or all-zero rates = the
    #: fault-free simulator, bit for bit).
    faults: Optional[FaultConfig] = None


def _make_server(config: RunConfig, seed_offset: int = 0) -> SimulatedServer:
    return SimulatedServer(
        config.architecture,
        machine_params=config.machine_params,
        registry=config.registry,
        seed=config.seed + seed_offset,
        queue_policy=config.queue_policy,
        orch_costs=config.orch_costs,
        remotes=config.remotes,
        branch_probs=config.branch_probs,
        obs=config.obs,
        faults=config.faults,
    )


def _arrivals_for(server: SimulatedServer, spec: ServiceSpec, config: RunConfig):
    rate = config.rate_rps if config.rate_rps is not None else spec.rate_rps
    rate *= config.rate_scale
    stream = server.streams.stream(f"arrivals/{spec.name}")
    return make_arrivals(config.arrival_mode, rate, stream)


def _source(server: SimulatedServer, spec: ServiceSpec, config: RunConfig, sink):
    """Process: generate open-loop arrivals for one service."""
    arrivals = _arrivals_for(server, spec, config)
    for _ in range(config.requests_per_service):
        yield server.env.timeout(arrivals.next_gap_ns())
        request = server.make_request(spec)
        if server.params and config.queue_policy == QueuePolicy.EDF:
            reference = config.unloaded_reference_ns.get(spec.name)
            if reference:
                request.slo_deadline_ns = (
                    server.env.now + config.slo_multiplier * reference
                )
        sink.append((request, server.submit(request)))


def _run_on_server(
    server: SimulatedServer, services: List[ServiceSpec], config: RunConfig
) -> Dict[str, ServiceResult]:
    if server.bus is not None:
        from ..obs.telemetry import Marker

        server.bus.publish(
            Marker(
                t_ns=server.env.now,
                name="run-start",
                args={
                    "architecture": config.architecture,
                    "services": [spec.name for spec in services],
                    "requests_per_service": config.requests_per_service,
                },
            )
        )
    in_flight: List = []
    sources = [
        server.env.process(
            _source(server, spec, config, in_flight), name=f"src-{spec.name}"
        )
        for spec in services
    ]
    # Horizon: expected arrival span of the slowest source + drain.
    span = max(
        config.requests_per_service
        / ((config.rate_rps or spec.rate_rps) * config.rate_scale)
        for spec in services
    )
    horizon_ns = span * _SECOND_NS + config.drain_ns

    def _watch_completion(env):
        for source in sources:
            yield source
        yield env.all_of([proc for _, proc in in_flight])

    watcher = server.env.process(_watch_completion(server.env))
    # Stop at full completion or at the horizon, whichever comes first,
    # so idle drain time never dilutes utilization statistics.
    server.env.run(
        until=server.env.any_of([watcher, server.env.timeout(horizon_ns)])
    )

    if server.bus is not None:
        from ..obs.telemetry import Marker

        completed = sum(1 for request, _ in in_flight if request.completed)
        server.bus.publish(
            Marker(
                t_ns=server.env.now,
                name="run-end",
                args={"submitted": len(in_flight), "completed": completed},
            )
        )
    results = {
        spec.name: ServiceResult(spec.name, warmup_fraction=config.warmup_fraction)
        for spec in services
    }
    for request, _process in in_flight:
        result = results[request.spec.name]
        if request.completed:
            result.record(request)
        else:
            result.record_censored(server.env.now - request.arrival_ns)
    return results


def run_dedicated_service(
    spec: ServiceSpec, config: RunConfig, seed_offset: int = 0
) -> Dict[str, object]:
    """Measure one service on its own server (one dedicated-mode cell).

    Returns a plain picklable dict so parallel experiment shards can
    ship it across process boundaries; :func:`combine_dedicated` folds
    any number of such cells back into an :class:`ExperimentResult`.
    """
    server = _make_server(config, seed_offset=seed_offset)
    per_service = _run_on_server(server, [spec], config)
    return {
        "service": per_service[spec.name],
        "elapsed_ns": server.env.now,
        "hardware_stats": server.hardware.stats(),
        "orchestrator_stats": server.orchestrator.stats(),
        "utilizations": server.hardware.accelerator_utilizations(),
        "offered_rps": (config.rate_rps or spec.rate_rps) * config.rate_scale,
    }


def combine_dedicated(
    architecture: str, cells: Dict[str, Dict[str, object]]
) -> ExperimentResult:
    """Merge per-service dedicated cells (service name -> cell dict)."""
    return ExperimentResult(
        architecture=architecture,
        services={name: cell["service"] for name, cell in cells.items()},
        elapsed_ns=max((cell["elapsed_ns"] for cell in cells.values()), default=0.0),
        hardware_stats={
            "per_service": {
                name: cell["hardware_stats"] for name, cell in cells.items()
            }
        },
        orchestrator_stats={
            "per_service": {
                name: cell["orchestrator_stats"] for name, cell in cells.items()
            }
        },
        utilizations={
            name: cell["utilizations"] for name, cell in cells.items()
        },
        offered_rps={
            name: cell["offered_rps"] for name, cell in cells.items()
        },
    )


def run_experiment(
    services: List[ServiceSpec], config: RunConfig
) -> ExperimentResult:
    """Run one measurement; merges per-service servers unless colocated."""
    if config.colocated:
        server = _make_server(config)
        per_service = _run_on_server(server, services, config)
        return _finish(server, per_service, config, services)

    cells = {
        spec.name: run_dedicated_service(spec, config, seed_offset=index)
        for index, spec in enumerate(services)
    }
    return combine_dedicated(config.architecture, cells)


def _finish(
    server: SimulatedServer,
    per_service: Dict[str, ServiceResult],
    config: RunConfig,
    services: List[ServiceSpec],
) -> ExperimentResult:
    return ExperimentResult(
        architecture=config.architecture,
        services=per_service,
        elapsed_ns=server.env.now,
        hardware_stats=server.hardware.stats(),
        orchestrator_stats=server.orchestrator.stats(),
        utilizations=server.hardware.accelerator_utilizations(),
        offered_rps={
            spec.name: (config.rate_rps or spec.rate_rps) * config.rate_scale
            for spec in services
        },
    )


def run_unloaded(
    architecture: str,
    spec: ServiceSpec,
    requests: int = 20,
    seed: int = 0,
    machine_params: Optional[MachineParams] = None,
    orch_costs: Optional[OrchestrationCosts] = None,
    remotes: Optional[RemoteLatencies] = None,
    registry: Optional[TraceRegistry] = None,
    obs: Optional[ObsConfig] = None,
) -> ServiceResult:
    """Run requests one at a time (no contention; Fig 17 methodology)."""
    server = SimulatedServer(
        architecture,
        machine_params=machine_params,
        registry=registry,
        seed=seed,
        orch_costs=orch_costs,
        remotes=remotes,
        obs=obs,
    )
    result = ServiceResult(spec.name, warmup_fraction=0.0)

    def closed_loop(env):
        for _ in range(requests):
            request = server.make_request(spec)
            yield server.submit(request)
            result.record(request)

    server.env.process(closed_loop(server.env))
    server.env.run()
    return result


def saturation_throughput(
    architecture: str,
    spec: ServiceSpec,
    requests: int = 300,
    seed: int = 0,
    machine_params: Optional[MachineParams] = None,
    queue_policy: str = QueuePolicy.FIFO,
    registry: Optional[TraceRegistry] = None,
) -> float:
    """Sustainable completion rate (RPS) under a closed burst.

    All requests arrive almost at once; the completion span measures the
    server's drain rate, i.e. its saturation throughput.
    """
    server = SimulatedServer(
        architecture,
        machine_params=machine_params,
        registry=registry,
        seed=seed,
        queue_policy=queue_policy,
    )
    in_flight = []

    def burst(env):
        for _ in range(requests):
            yield env.timeout(50.0)  # effectively simultaneous
            request = server.make_request(spec)
            in_flight.append((request, server.submit(request)))

    server.env.process(burst(server.env))
    server.env.run()
    last_completion = max(r.complete_ns for r, _ in in_flight)
    if last_completion <= 0:
        return 0.0
    return requests / (last_completion * 1e-9)


def max_throughput_search(
    architecture: str,
    spec: ServiceSpec,
    slo_ns: float,
    requests: int = 250,
    seed: int = 0,
    lo_rps: float = 200.0,
    hi_rps: Optional[float] = None,
    iterations: int = 7,
    machine_params: Optional[MachineParams] = None,
    queue_policy: str = QueuePolicy.FIFO,
    unloaded_reference_ns: Optional[float] = None,
    probe_duration_s: float = 0.05,
    probe_cap: int = 1500,
    registry: Optional[TraceRegistry] = None,
) -> float:
    """Highest per-service load (RPS) whose P99 stays within the SLO.

    Two phases: a closed burst measures the saturation throughput to
    bracket the search; duration-based open-loop probes then binary
    search the SLO knee. A probe violates the SLO when its P99 exceeds
    ``slo_ns`` or any request is still unfinished at the horizon.
    """
    if hi_rps is None:
        capacity = saturation_throughput(
            architecture,
            spec,
            requests=max(100, requests // 2),
            seed=seed,
            machine_params=machine_params,
            queue_policy=queue_policy,
            registry=registry,
        )
        hi_rps = max(capacity * 1.2, lo_rps * 2)

    def violates(rate: float) -> bool:
        probe_requests = int(
            min(probe_cap, max(requests, rate * probe_duration_s))
        )
        config = RunConfig(
            architecture=architecture,
            requests_per_service=probe_requests,
            seed=seed,
            arrival_mode="poisson",
            rate_rps=rate,
            machine_params=machine_params,
            queue_policy=queue_policy,
            drain_ns=20e6,
            registry=registry,
            unloaded_reference_ns=(
                {spec.name: unloaded_reference_ns} if unloaded_reference_ns else {}
            ),
        )
        result = run_experiment([spec], config)
        if result.total_censored() > 0:
            return True
        return result.p99_ns(spec.name) > slo_ns

    if violates(lo_rps):
        return lo_rps
    lo, hi = lo_rps, hi_rps
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if violates(mid):
            hi = mid
        else:
            lo = mid
    return lo

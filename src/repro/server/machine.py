"""One simulated server: hardware + orchestrator + cost model, wired up."""

from __future__ import annotations

from typing import Dict, Optional

from ..core.registry import TraceRegistry
from ..faults import FaultConfig, FaultPlane
from ..hw.accelerator import QueuePolicy
from ..hw.ensemble import ServerHardware
from ..hw.params import MachineParams
from ..obs import MetricsRegistry, ObsConfig, SpanTracer
from ..orchestration import make_orchestrator
from ..sim import Environment, RandomStreams
from ..workloads.calibration import (
    BranchProbabilities,
    OrchestrationCosts,
    RemoteLatencies,
)
from ..workloads.costs import CostModel
from ..workloads.payloads import PayloadModel
from ..workloads.spec import ServiceSpec
from ..workloads.request import Request

__all__ = ["SimulatedServer"]


class SimulatedServer:
    """A 36-core server with the nine-accelerator ensemble.

    Pass ``env`` to place several servers in one simulation (the
    cluster subsystem runs a whole fleet on a shared event calendar);
    by default each server owns a fresh :class:`Environment`.
    """

    def __init__(
        self,
        architecture: str,
        machine_params: Optional[MachineParams] = None,
        registry: Optional[TraceRegistry] = None,
        seed: int = 0,
        queue_policy: str = QueuePolicy.FIFO,
        orch_costs: Optional[OrchestrationCosts] = None,
        remotes: Optional[RemoteLatencies] = None,
        branch_probs: Optional[BranchProbabilities] = None,
        obs: Optional[ObsConfig] = None,
        env: Optional[Environment] = None,
        faults: Optional[FaultConfig] = None,
    ):
        self.architecture = architecture
        self.params = machine_params or MachineParams()
        self.registry = registry or TraceRegistry.with_standard_templates()
        self.obs = obs
        if env is None:
            env = Environment(
                profile=obs.profile_kernel if obs is not None else False
            )
        elif obs is not None and obs.profile_kernel:
            env.enable_profiling()
        self.env = env
        self.tracer: Optional[SpanTracer] = None
        self.metrics: Optional[MetricsRegistry] = None
        self.bus = None
        if obs is not None:
            session = obs.make_session(self.env)
            self.tracer = session.tracer
            self.metrics = session.registry
            self.bus = session.bus
        self.streams = RandomStreams(seed)
        self.hardware = ServerHardware(
            self.env,
            self.params,
            self.streams,
            queue_policy=queue_policy,
            tracer=self.tracer,
        )
        #: The fault plane is only instantiated when the config actually
        #: injects something; with zero rates (or faults=None) every code
        #: path and RNG draw matches the fault-free simulator exactly.
        self.fault_plane: Optional[FaultPlane] = None
        if faults is not None and faults.enabled:
            self.fault_plane = FaultPlane(
                self.env, faults, self.streams, tracer=self.tracer
            )
            self.fault_plane.bus = self.bus
            self.fault_plane.attach(self.hardware)
        self.cost_model = CostModel(self.registry, generation=self.params.generation)
        self.orchestrator = make_orchestrator(
            architecture,
            self.env,
            self.hardware,
            self.registry,
            self.cost_model,
            self.streams,
            orch_costs=orch_costs,
            remotes=remotes,
            tracer=self.tracer,
            fault_plane=self.fault_plane,
        )
        self.orchestrator.bus = self.bus
        if self.orchestrator.recovery is not None:
            self.orchestrator.recovery.bus = self.bus
        self.branch_probs = branch_probs or BranchProbabilities()
        self._field_stream = self.streams.stream("fields")
        self._payload_models: Dict[str, PayloadModel] = {}
        self._inflight = 0
        self._completed = 0
        if self.metrics is not None:
            self._register_gauges()
            self.metrics.start()

    def _register_gauges(self) -> None:
        """Default time series: queues, utilization, in-flight, RPS."""
        registry = self.metrics
        registry.gauge("inflight", lambda: float(self._inflight))
        registry.rate_gauge("rps", lambda: float(self._completed))
        registry.gauge("cores_busy", lambda: float(self.hardware.cores.in_use))
        for kind, instances in self.hardware.instances.items():
            registry.gauge(
                f"qdepth:{kind.value}",
                lambda insts=instances: float(
                    sum(a.input_occupancy for a in insts)
                ),
            )
            registry.gauge(
                f"util:{kind.value}",
                lambda k=kind: self.hardware.busy_pe_fraction(k),
            )
        fabric = self.hardware.fabric
        if fabric is not None:
            for placement in sorted(fabric.hop_transfers, key=lambda p: p.value):
                registry.gauge(
                    f"placement:hops:{placement.value}",
                    lambda f=fabric, p=placement: float(f.hop_transfers[p]),
                )
                registry.gauge(
                    f"placement:inflight:{placement.value}",
                    lambda f=fabric, p=placement: f.in_flight(p),
                )
        plane = self.fault_plane
        if plane is not None:
            registry.gauge(
                "faults:injected", lambda p=plane: float(p.total_injected())
            )
            recovery = self.orchestrator.recovery
            if recovery is not None:
                registry.gauge(
                    "faults:watchdog_timeouts",
                    lambda r=recovery: float(r.watchdog_timeouts),
                )
                registry.gauge(
                    "faults:open_breakers",
                    lambda r=recovery: float(r.open_breakers()),
                )
                registry.gauge(
                    "faults:degraded_to_cpu",
                    lambda r=recovery: float(r.degraded_to_cpu),
                )

    def _payload_model(self, spec: ServiceSpec) -> PayloadModel:
        model = self._payload_models.get(spec.name)
        if model is None:
            model = PayloadModel(
                self.streams.stream(f"payload/{spec.name}"),
                median_bytes=spec.wire_median_bytes,
            )
            self._payload_models[spec.name] = model
        return model

    def make_request(self, spec: ServiceSpec) -> Request:
        """Sample a new request: payload fields + wire size."""
        probs = self.branch_probs.as_dict()
        state = {
            field: self._field_stream.bernoulli(p) for field, p in probs.items()
        }
        wire_size = self._payload_model(spec).sample_wire_size()
        return Request(
            spec,
            arrival_ns=self.env.now,
            state=state,
            wire_size=wire_size,
            tenant=spec.tenant,
            priority=spec.priority,
        )

    def submit(self, request: Request):
        """Start executing ``request``; returns its completion process."""
        tracer = self.tracer
        if tracer is not None and tracer.sample_request(request):
            tracer.instant(
                "arrival",
                f"req:{request.spec.name}",
                rid=request.rid,
                args={"wire_size": request.wire_size},
            )
        process = self.env.process(
            self.orchestrator.execute_request(request),
            name=f"req-{request.rid}",
        )
        if self.metrics is not None:
            self._inflight += 1
            process.callbacks.append(self._request_retired)
        return process

    def _request_retired(self, _event) -> None:
        self._inflight -= 1
        self._completed += 1

"""One simulated server: hardware + orchestrator + cost model, wired up."""

from __future__ import annotations

from typing import Dict, Optional

from ..core.registry import TraceRegistry
from ..hw.accelerator import QueuePolicy
from ..hw.ensemble import ServerHardware
from ..hw.params import MachineParams
from ..orchestration import make_orchestrator
from ..sim import Environment, RandomStreams
from ..workloads.calibration import (
    BranchProbabilities,
    OrchestrationCosts,
    RemoteLatencies,
)
from ..workloads.costs import CostModel
from ..workloads.payloads import PayloadModel
from ..workloads.spec import ServiceSpec
from ..workloads.request import Request

__all__ = ["SimulatedServer"]


class SimulatedServer:
    """A 36-core server with the nine-accelerator ensemble."""

    def __init__(
        self,
        architecture: str,
        machine_params: Optional[MachineParams] = None,
        registry: Optional[TraceRegistry] = None,
        seed: int = 0,
        queue_policy: str = QueuePolicy.FIFO,
        orch_costs: Optional[OrchestrationCosts] = None,
        remotes: Optional[RemoteLatencies] = None,
        branch_probs: Optional[BranchProbabilities] = None,
    ):
        self.architecture = architecture
        self.params = machine_params or MachineParams()
        self.registry = registry or TraceRegistry.with_standard_templates()
        self.env = Environment()
        self.streams = RandomStreams(seed)
        self.hardware = ServerHardware(
            self.env, self.params, self.streams, queue_policy=queue_policy
        )
        self.cost_model = CostModel(self.registry, generation=self.params.generation)
        self.orchestrator = make_orchestrator(
            architecture,
            self.env,
            self.hardware,
            self.registry,
            self.cost_model,
            self.streams,
            orch_costs=orch_costs,
            remotes=remotes,
        )
        self.branch_probs = branch_probs or BranchProbabilities()
        self._field_stream = self.streams.stream("fields")
        self._payload_models: Dict[str, PayloadModel] = {}

    def _payload_model(self, spec: ServiceSpec) -> PayloadModel:
        model = self._payload_models.get(spec.name)
        if model is None:
            model = PayloadModel(
                self.streams.stream(f"payload/{spec.name}"),
                median_bytes=spec.wire_median_bytes,
            )
            self._payload_models[spec.name] = model
        return model

    def make_request(self, spec: ServiceSpec) -> Request:
        """Sample a new request: payload fields + wire size."""
        probs = self.branch_probs.as_dict()
        state = {
            field: self._field_stream.bernoulli(p) for field, p in probs.items()
        }
        wire_size = self._payload_model(spec).sample_wire_size()
        return Request(
            spec,
            arrival_ns=self.env.now,
            state=state,
            wire_size=wire_size,
            tenant=spec.tenant,
            priority=spec.priority,
        )

    def submit(self, request: Request):
        """Start executing ``request``; returns its completion process."""
        return self.env.process(
            self.orchestrator.execute_request(request),
            name=f"req-{request.rid}",
        )

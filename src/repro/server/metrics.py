"""Experiment result containers and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..hw.params import AcceleratorKind
from ..hw.power import EnergyModel
from ..sim import LatencyRecorder
from ..workloads.request import Buckets, Request

__all__ = ["ServiceResult", "ExperimentResult", "energy_summary"]


class ServiceResult:
    """Per-service outcome of one run."""

    def __init__(self, name: str, warmup_fraction: float = 0.1):
        self.name = name
        self.recorder = LatencyRecorder(warmup_fraction=warmup_fraction)
        self.completed = 0
        self.censored = 0  # still in flight at the horizon
        self.errors = 0
        self.timeouts = 0
        #: Requests that lost at least one remote response but recovered
        #: through retried waits (disjoint from ``timeouts``, which are
        #: the fatal ones).
        self.recovered_timeouts = 0
        self.fallback_requests = 0
        self.component_sums: Dict[str, float] = {b: 0.0 for b in Buckets.ALL}
        #: Work completed analytically by the cluster's fluid tier
        #: (continuous mass, not discrete samples) plus its latency
        #: estimates; merged with the exact samples by the
        #: ``merged_*`` accessors. All zero for fluid-free runs.
        self.fluid_completed_mass = 0.0
        self.fluid_mean_latency_ns = 0.0
        self.fluid_est_p99_ns = 0.0
        self.fluid_residual_mass = 0.0

    def record(self, request: Request) -> None:
        self.recorder.record(request.latency_ns)
        self.completed += 1
        if request.error:
            self.errors += 1
        if request.timed_out:
            self.timeouts += 1
        elif request.tcp_retries > 0:
            self.recovered_timeouts += 1
        if request.fell_back:
            self.fallback_requests += 1
        for bucket, value in request.components.items():
            self.component_sums[bucket] += value

    def record_censored(self, latency_so_far_ns: float) -> None:
        """An unfinished request at the horizon: its latency is at least
        this much; including it keeps saturated tails honest."""
        self.recorder.record(latency_so_far_ns)
        self.censored += 1

    def record_fluid(
        self,
        completed_mass: float,
        mean_latency_ns: float,
        residual_mass: float = 0.0,
        est_p99_ns: float = 0.0,
    ) -> None:
        """Fold in the fluid tier's analytical completions for this
        service (see :mod:`repro.cluster.fluid`)."""
        self.fluid_completed_mass = completed_mass
        self.fluid_mean_latency_ns = mean_latency_ns
        self.fluid_residual_mass = residual_mass
        self.fluid_est_p99_ns = est_p99_ns

    # -- derived -------------------------------------------------------------
    def p99_ns(self) -> float:
        return self.recorder.p99()

    def mean_ns(self) -> float:
        return self.recorder.mean()

    def merged_completed(self) -> float:
        """Exact completions plus analytically completed fluid mass."""
        return self.completed + self.fluid_completed_mass

    def merged_mean_ns(self) -> float:
        """Mean latency across both tiers, weighted by completed work."""
        exact_n = len(self.recorder)
        total = exact_n + self.fluid_completed_mass
        if total <= 0:
            raise ValueError(f"service {self.name!r} completed no requests")
        exact_part = self.recorder.mean() * exact_n if exact_n else 0.0
        return (
            exact_part + self.fluid_completed_mass * self.fluid_mean_latency_ns
        ) / total

    def merged_p99_ns(self) -> float:
        """P99 across both tiers: the exact empirical P99 when exact
        samples dominate, otherwise the fluid estimate (calibration
        p99/mean shape ratio applied to the fluid mean)."""
        exact_n = len(self.recorder)
        if exact_n >= self.fluid_completed_mass and exact_n > 0:
            return self.recorder.p99()
        if self.fluid_completed_mass > 0:
            return self.fluid_est_p99_ns
        return self.recorder.p99()

    def component_fractions(self) -> Dict[str, float]:
        total = sum(self.component_sums.values())
        if total <= 0:
            return {bucket: 0.0 for bucket in self.component_sums}
        return {b: v / total for b, v in self.component_sums.items()}


@dataclass
class ExperimentResult:
    """Outcome of one (architecture, workload, load) run."""

    architecture: str
    services: Dict[str, ServiceResult]
    elapsed_ns: float
    hardware_stats: Dict[str, object]
    orchestrator_stats: Dict[str, object]
    utilizations: Dict[AcceleratorKind, float] = field(default_factory=dict)
    offered_rps: Dict[str, float] = field(default_factory=dict)

    # -- aggregates -------------------------------------------------------
    def total_completed(self) -> int:
        return sum(s.completed for s in self.services.values())

    def total_censored(self) -> int:
        return sum(s.censored for s in self.services.values())

    def p99_ns(self, service: str) -> float:
        return self.services[service].p99_ns()

    def mean_ns(self, service: str) -> float:
        return self.services[service].mean_ns()

    def mean_p99_ns(self) -> float:
        """Unweighted mean of per-service P99s (the paper's averages)."""
        values = [s.p99_ns() for s in self.services.values() if len(s.recorder)]
        if not values:
            raise ValueError("no completed requests")
        return sum(values) / len(values)

    def mean_latency_ns(self) -> float:
        values = [s.mean_ns() for s in self.services.values() if len(s.recorder)]
        if not values:
            raise ValueError("no completed requests")
        return sum(values) / len(values)

    def achieved_rps(self) -> float:
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_completed() / (self.elapsed_ns * 1e-9)

    def orchestration_fraction(self) -> float:
        """Orchestration share of total attributed time (Figure 3)."""
        total = 0.0
        orchestration = 0.0
        for service in self.services.values():
            for bucket, value in service.component_sums.items():
                total += value
                if bucket == Buckets.ORCHESTRATION:
                    orchestration += value
        return orchestration / total if total > 0 else 0.0


def energy_summary(result: ExperimentResult, pes: int = 8) -> Dict[str, float]:
    """Energy/power summary of a run (Section VII.B.5 substitute)."""
    model = EnergyModel()
    elapsed = result.elapsed_ns
    hardware = result.hardware_stats
    core_stats = hardware["cores"]
    cores = int(core_stats["cores"])
    core_j = model.core_energy_j(cores, elapsed, core_stats["busy_ns"])
    accel_j = 0.0
    for kind in AcceleratorKind:
        accel_stats = hardware["accelerators"][kind.value]
        accel_j += model.accel_energy_j(kind, elapsed, accel_stats["busy_ns"], pes)
    glue = result.orchestrator_stats.get("glue", {})
    dispatcher_ops = int(glue.get("operations", 0))
    orch_j = model.orchestration_energy_j(
        elapsed, hardware["dma"]["busy_ns"], dispatcher_ops
    )
    total_j = core_j + accel_j + orch_j
    return {
        "core_j": core_j,
        "accel_j": accel_j,
        "orchestration_j": orch_j,
        "total_j": total_j,
        "perf_per_watt": model.performance_per_watt(
            result.total_completed(), elapsed, total_j
        ),
    }

"""Discrete-event simulation substrate (kernel, resources, stores, RNG)."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    KernelProfile,
    Process,
    SimulationError,
    Timeout,
)
from .monitor import (
    Counter,
    LatencyRecorder,
    SlidingWindow,
    TimeWeightedValue,
    percentile,
    summarize,
)
from .resources import PriorityResource, Resource
from .rng import RandomStreams, Stream, derive_seed
from .stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "KernelProfile",
    "LatencyRecorder",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "SlidingWindow",
    "Store",
    "Stream",
    "TimeWeightedValue",
    "Timeout",
    "derive_seed",
    "percentile",
    "summarize",
]

"""Discrete-event simulation substrate (kernel, resources, stores, RNG)."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    KernelProfile,
    Process,
    SimulationError,
    Timeout,
)
from .fluid import (
    FluidQueue,
    FluidStepper,
    MMKSteadyState,
    StaticTierPolicy,
    TierPolicy,
    UtilizationTierPolicy,
    erlang_b,
    erlang_c,
    mmk_steady_state,
)
from .monitor import (
    Counter,
    LatencyRecorder,
    SlidingWindow,
    TimeWeightedValue,
    percentile,
    summarize,
)
from .resources import PriorityResource, Resource
from .rng import RandomStreams, Stream, derive_seed
from .stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "FluidQueue",
    "FluidStepper",
    "Interrupt",
    "KernelProfile",
    "LatencyRecorder",
    "MMKSteadyState",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "SlidingWindow",
    "StaticTierPolicy",
    "Store",
    "Stream",
    "TierPolicy",
    "TimeWeightedValue",
    "Timeout",
    "UtilizationTierPolicy",
    "derive_seed",
    "erlang_b",
    "erlang_c",
    "mmk_steady_state",
    "percentile",
    "summarize",
]

"""Discrete-event simulation substrate (kernel, resources, stores, RNG)."""

from .core import (
    AllOf,
    AnyOf,
    Condition,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .monitor import Counter, LatencyRecorder, TimeWeightedValue, percentile, summarize
from .resources import PriorityResource, Resource
from .rng import RandomStreams, Stream
from .stores import FilterStore, PriorityItem, PriorityStore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "Counter",
    "Environment",
    "Event",
    "FilterStore",
    "Interrupt",
    "LatencyRecorder",
    "PriorityItem",
    "PriorityResource",
    "PriorityStore",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "Stream",
    "TimeWeightedValue",
    "Timeout",
    "percentile",
    "summarize",
]

"""Discrete-event simulation kernel.

A small, fast, simpy-like engine: simulation logic is written as Python
generator functions ("processes") that yield :class:`Event` objects. The
:class:`Environment` owns the event calendar and advances virtual time.

The kernel is self-contained (no third-party dependencies) and is the
substrate for every hardware and workload model in this repository. Time
is a float; the AccelFlow models use nanoseconds throughout.

Example
-------
>>> env = Environment()
>>> def proc(env):
...     yield env.timeout(5.0)
...     return "done"
>>> p = env.process(proc(env))
>>> env.run()
>>> env.now
5.0
"""

from __future__ import annotations

from heapq import heappop, heappush
from time import perf_counter
from typing import Any, Callable, Dict, Generator, Iterable, List, Optional

__all__ = [
    "Environment",
    "Event",
    "KernelProfile",
    "Timeout",
    "Process",
    "Interrupt",
    "Condition",
    "AllOf",
    "AnyOf",
    "SimulationError",
    "StopSimulation",
    "URGENT",
    "NORMAL",
]

# Scheduling priorities: URGENT events (e.g. process resumptions that must
# observe state before same-time timeouts) sort ahead of NORMAL ones.
URGENT = 0
NORMAL = 1

_PENDING = object()


class SimulationError(Exception):
    """Base class for kernel errors."""


class StopSimulation(Exception):
    """Raised internally to end :meth:`Environment.run` early."""

    def __init__(self, value: Any = None):
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    @property
    def cause(self) -> Any:
        return self.args[0]


class Event:
    """An event that may happen at some point in simulated time.

    An event starts *pending*, becomes *triggered* once it has a value and
    is scheduled, and is *processed* after its callbacks have run. Events
    may succeed (carrying a value) or fail (carrying an exception).
    """

    __slots__ = ("env", "callbacks", "_value", "_defused")

    def __init__(self, env: "Environment"):
        self.env = env
        #: Callables invoked with this event when it is processed. ``None``
        #: once the event has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._defused = False

    def __repr__(self) -> str:
        state = "pending" if not self.triggered else ("ok" if self.ok else "failed")
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"

    @property
    def triggered(self) -> bool:
        """True once the event has a value and has been scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded. Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("Event value not yet available")
        return not isinstance(self._value, _Failure)

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is _PENDING:
            raise SimulationError("Event value not yet available")
        if isinstance(self._value, _Failure):
            return self._value.exc
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL, env._eid, self))
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._value = _Failure(exception)
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL, env._eid, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state of another (already triggered) event."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = event._value
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL, env._eid, self))

    # -- composition ------------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])


class _Failure:
    """Wrapper marking an event value as an exception."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException):
        self.exc = exc


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"Negative delay {delay}")
        self.env = env
        self.callbacks = []
        self._value = value
        self._defused = False
        self.delay = delay
        # Timeouts dominate event allocation; scheduling is inlined
        # (no Environment._schedule call) on this path.
        env._eid += 1
        heappush(env._queue, (env._now + delay, NORMAL, env._eid, self))

    def __repr__(self) -> str:
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Initialize(Event):
    """Immediate event that starts a newly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process"):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._defused = False
        env._eid += 1
        heappush(env._queue, (env._now, URGENT, env._eid, self))


class Process(Event):
    """Wraps a generator so that it executes as a simulation process.

    The process itself is an event that triggers when the generator
    returns (with the generator's return value) or raises (failed).
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._defused = False
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process is currently waiting for.
        self._target: Optional[Event] = Initialize(env, self)

    def __repr__(self) -> str:
        return f"<Process {self.name} at {id(self):#x}>"

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not terminated."""
        return self._value is _PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for (if alive)."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process stops waiting for its current target event and instead
        sees ``Interrupt(cause)`` raised at its current yield point.

        Interrupting a process that has already terminated, or one whose
        previous interrupt has not been delivered yet, is a safe no-op:
        fault-recovery watchdogs and cluster rerouting both race against
        normal completion, and the loser of that race must not blow up
        the simulation (nor double-deliver).
        """
        if not self.is_alive:
            return
        if self is self.env.active_process:
            raise SimulationError("A process is not allowed to interrupt itself")
        if self._target is None:
            # An interrupt is already in flight (the target was detached
            # and the Interrupt event scheduled): collapse duplicates.
            return
        interrupt_event = Event(self.env)
        interrupt_event._value = _Failure(Interrupt(cause))
        interrupt_event._defused = True
        interrupt_event.callbacks = [self._deliver_interrupt]
        self.env._schedule(interrupt_event, URGENT, 0.0)
        # Stop listening on the old target (if it is still pending).
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
            if not target.callbacks:
                # Nobody is waiting on the target anymore: withdraw it
                # from whatever queue it sits in (store/resource waiter
                # lists) so an interrupted process cannot swallow a slot
                # or an item meant for a live waiter.
                cancel = getattr(target, "cancel", None)
                if cancel is not None:
                    cancel()
        self._target = None

    def _deliver_interrupt(self, event: Event) -> None:
        """Deliver a scheduled interrupt unless the process already died
        (e.g. it completed at the same timestamp the interrupt fired)."""
        if not self.is_alive:
            return
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the value of ``event``."""
        env = self.env
        env._active_process = self
        # Hot path: the generator's bound send/throw are hoisted out of
        # the loop, and failure detection is an exact-type check
        # (``_Failure`` is a final internal class) instead of isinstance.
        send = self._generator.send
        throw = self._generator.throw
        while True:
            value = event._value
            if type(value) is _Failure:
                event._defused = True
                try:
                    next_event = throw(value.exc)
                except StopIteration as stop:
                    self._terminate(stop.value)
                    break
                except BaseException as error:
                    self._fail_with(error)
                    break
            else:
                try:
                    next_event = send(value)
                except StopIteration as stop:
                    self._terminate(stop.value)
                    break
                except BaseException as error:
                    self._fail_with(error)
                    break

            if not isinstance(next_event, Event):
                self._fail_with(
                    SimulationError(
                        f"Process {self.name} yielded a non-event: {next_event!r}"
                    )
                )
                break
            if next_event.callbacks is not None:
                # The target is still pending: wait for it.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                break
            # Target already processed: feed its value back immediately.
            event = next_event
        env._active_process = None

    def _terminate(self, value: Any) -> None:
        self._value = value
        self._target = None
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL, env._eid, self))

    def _fail_with(self, error: BaseException) -> None:
        self._value = _Failure(error)
        self._target = None
        env = self.env
        env._eid += 1
        heappush(env._queue, (env._now, NORMAL, env._eid, self))


class Condition(Event):
    """An event that triggers once a predicate over child events holds.

    Used through the ``&``/``|`` operators on events or through
    :meth:`Environment.all_of` / :meth:`Environment.any_of`.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._defused = False
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0
        for event in self._events:
            if event.env is not env:
                raise SimulationError("Condition spans multiple environments")
        if not self._events:
            self.succeed(ConditionValue([]))
            return
        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events

    def _check(self, event: Event) -> None:
        value = event._value
        if self._value is not _PENDING:
            # The condition already triggered, but late child events still
            # report here. A child that fails *after* the trigger must be
            # defused on the spot — otherwise the unhandled _Failure
            # escapes Environment.step() and crashes run() even though
            # the condition's waiter never sees the loser's result (e.g.
            # an AnyOf whose losing branch errors later).
            if type(value) is _Failure:
                event._defused = True
            return
        self._count += 1
        if type(value) is _Failure:
            event._defused = True
            self.fail(value.exc)
        elif self._evaluate(self._events, self._count):
            self.succeed(
                ConditionValue([e for e in self._events if e.callbacks is None])
            )


class ConditionValue:
    """Result of a condition: the triggered child events, dict-like."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]):
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key.value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, ConditionValue):
            return self.events == other.events
        return NotImplemented

    def todict(self) -> dict:
        return {event: event.value for event in self.events}


class AllOf(Condition):
    """Condition that triggers once all child events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that triggers once any child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, Condition.any_events, events)


class KernelProfile:
    """Opt-in simulator self-profiling (events, heap, time attribution).

    Event counts and wall time are attributed per *process group*: a
    process name with trailing digits/dashes stripped, so ``req-17`` and
    ``req-203`` aggregate under ``req``. Non-process callbacks (stop
    hooks, condition checks) aggregate under the event's class name.
    """

    __slots__ = ("events", "peak_queue", "wall_s", "by_process")

    def __init__(self):
        self.events = 0
        self.peak_queue = 0
        self.wall_s = 0.0
        self.by_process: Dict[str, Dict[str, float]] = {}

    @staticmethod
    def group_of(callback: Callable, event: "Event") -> str:
        owner = getattr(callback, "__self__", None)
        if isinstance(owner, Process):
            return owner.name.rstrip("-0123456789") or owner.name
        return type(event).__name__

    def attribute(self, group: str, elapsed_s: float) -> None:
        row = self.by_process.get(group)
        if row is None:
            row = self.by_process[group] = {"events": 0, "wall_s": 0.0}
        row["events"] += 1
        row["wall_s"] += elapsed_s
        self.wall_s += elapsed_s

    def summary(self) -> Dict[str, Any]:
        return {
            "events": self.events,
            "peak_queue": self.peak_queue,
            "wall_s": self.wall_s,
            "by_process": {
                name: dict(row) for name, row in self.by_process.items()
            },
        }


class Environment:
    """The simulation environment: event calendar and virtual clock.

    Pass ``profile=True`` (or call :meth:`enable_profiling`) to collect
    kernel statistics in :attr:`profile`; disabled profiling costs one
    ``is None`` check per :meth:`step`.

    **Runaway guard** (opt-in): ``max_events`` bounds the total number
    of events processed by :meth:`run` across the environment's life,
    and ``max_wall_s`` bounds the wall-clock time of a single
    :meth:`run` call. Exceeding either raises :class:`SimulationError`
    instead of spinning forever — a hung fault-injection scenario fails
    fast instead of wedging CI. The class attributes
    :attr:`default_max_events` / :attr:`default_max_wall_s` set the
    default for newly created environments (the test suite turns them
    on globally); both default to ``None`` (off, zero overhead).
    """

    #: Class-wide defaults for the runaway guard (None = disabled).
    default_max_events: Optional[int] = None
    default_max_wall_s: Optional[float] = None

    def __init__(
        self,
        initial_time: float = 0.0,
        profile: bool = False,
        max_events: Optional[int] = None,
        max_wall_s: Optional[float] = None,
    ):
        self._now = float(initial_time)
        self._queue: List[tuple] = []
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: The :class:`KernelProfile`, or None when profiling is off.
        self.profile: Optional[KernelProfile] = KernelProfile() if profile else None
        self.max_events = (
            max_events if max_events is not None else type(self).default_max_events
        )
        self.max_wall_s = (
            max_wall_s if max_wall_s is not None else type(self).default_max_wall_s
        )
        self._events_processed = 0

    def enable_profiling(self) -> KernelProfile:
        """Turn on kernel profiling (keeps existing data if already on).

        Takes effect at the next :meth:`run` call: the event loop
        snapshots the switch when it starts (and :meth:`step` always
        honours it).
        """
        if self.profile is None:
            self.profile = KernelProfile()
        return self.profile

    # -- clock and scheduling ---------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    @property
    def scheduled_events(self) -> int:
        """Total events scheduled so far (monotonic).

        Deterministic for a deterministic simulation, so experiments
        use it as a machine-independent work proxy (e.g. the fluid
        tier's event-reduction figures) where wall-clock would make
        golden fixtures unstable.
        """
        return self._eid

    def _schedule(self, event: Event, priority: int, delay: float) -> None:
        self._eid += 1
        heappush(self._queue, (self._now + delay, priority, self._eid, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process the next scheduled event."""
        queue = self._queue
        try:
            self._now, _, _, event = heappop(queue)
        except IndexError:
            raise SimulationError("No scheduled events") from None
        callbacks = event.callbacks
        event.callbacks = None
        profile = self.profile
        if profile is None:
            for callback in callbacks:
                callback(event)
        else:
            profile.events += 1
            queued = len(queue)
            if queued > profile.peak_queue:
                profile.peak_queue = queued
            for callback in callbacks:
                start = perf_counter()
                callback(event)
                profile.attribute(
                    KernelProfile.group_of(callback, event),
                    perf_counter() - start,
                )
        # Failure fast path: most events carry a plain value (often
        # None); one exact-type check rejects those without touching
        # ``_defused``.
        value = event._value
        if type(value) is _Failure and not event._defused:
            # Nobody handled the failure: propagate it out of run().
            raise value.exc

    def run(self, until: Any = None) -> Any:
        """Run until ``until`` (a time, an event, or exhaustion).

        * ``None`` — run until no events remain.
        * number — run until the clock reaches that time.
        * :class:`Event` — run until that event is processed and return
          its value.
        """
        stop_at = float("inf")
        if until is not None:
            if isinstance(until, Event):
                if until.callbacks is None:
                    # Already processed: mirror _stop_on — a failed event
                    # raises its exception instead of returning it as a
                    # value (callers must never receive an exception
                    # object where they expect a result).
                    value = until._value
                    if type(value) is _Failure:
                        until._defused = True
                        raise value.exc
                    return value
                until.callbacks.append(self._stop_on)
            else:
                stop_at = float(until)
                if stop_at < self._now:
                    raise ValueError(
                        f"until ({stop_at}) must not be before now ({self._now})"
                    )
        max_events = self.max_events
        deadline = (
            perf_counter() + self.max_wall_s if self.max_wall_s is not None else None
        )
        guarded = max_events is not None or deadline is not None
        queue = self._queue
        # Snapshot of the profiling switch: it is flipped between runs
        # (construction or enable_profiling), never mid-run.
        profiled = self.profile is not None
        try:
            # The event loop is inlined (rather than calling self.step()
            # per event): one Python frame per event is the single
            # largest fixed cost of the kernel. step() remains the
            # profiled / manually-driven path and must stay
            # behaviourally identical to the inlined body below.
            while queue and queue[0][0] <= stop_at:
                if profiled:
                    self.step()
                else:
                    self._now, _, _, event = heappop(queue)
                    callbacks = event.callbacks
                    event.callbacks = None
                    for callback in callbacks:
                        callback(event)
                    value = event._value
                    if type(value) is _Failure and not event._defused:
                        # Nobody handled the failure: propagate it.
                        raise value.exc
                if guarded:
                    self._events_processed += 1
                    if max_events is not None and self._events_processed > max_events:
                        raise SimulationError(
                            f"runaway guard: more than {max_events} events "
                            f"processed (sim time {self._now:.0f})"
                        )
                    # Wall-clock checks are amortized: one perf_counter()
                    # call every 4096 events.
                    if (
                        deadline is not None
                        and self._events_processed % 4096 == 0
                        and perf_counter() > deadline
                    ):
                        raise SimulationError(
                            f"runaway guard: run() exceeded {self.max_wall_s}s "
                            f"wall clock (sim time {self._now:.0f}, "
                            f"{self._events_processed} events)"
                        )
        except StopSimulation as stop:
            return stop.value
        if stop_at != float("inf"):
            self._now = stop_at
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError(
                "No scheduled events left but the until-event was not triggered"
            )
        return None

    def run_wall_slice(
        self,
        until: float,
        wall_budget_s: Optional[float] = None,
        check_every: int = 256,
    ) -> bool:
        """Advance toward sim time ``until``, bounded by wall-clock time.

        Processes scheduled events whose time is <= ``until``; when
        ``wall_budget_s`` is given, stops early once that much wall time
        has elapsed (checked every ``check_every`` events, so the
        overhead stays amortized). Returns True when the clock reached
        ``until`` (the clock is then advanced to exactly ``until``, as
        :meth:`run` would), False when the slice ran out of wall budget
        with events still pending.

        This is the incremental entry point the live-serving façade
        paces against wall time (:mod:`repro.serve`): a backlogged sim
        never wedges the asyncio event loop, because each slice hands
        control back after its budget regardless of how many events
        remain. With ``wall_budget_s=None`` it behaves exactly like
        ``run(until=...)`` for a plain time horizon.
        """
        until = float(until)
        if until < self._now:
            raise ValueError(
                f"until ({until}) must not be before now ({self._now})"
            )
        queue = self._queue
        deadline = (
            perf_counter() + wall_budget_s if wall_budget_s is not None else None
        )
        processed = 0
        while queue and queue[0][0] <= until:
            self.step()
            if deadline is not None:
                processed += 1
                if processed % check_every == 0 and perf_counter() > deadline:
                    if not (queue and queue[0][0] <= until):
                        break
                    return False
        self._now = until
        return True

    def _stop_on(self, event: Event) -> None:
        value = event._value
        if type(value) is _Failure:
            event._defused = True
            raise value.exc
        raise StopSimulation(value)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event triggering when all of ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event triggering when any of ``events`` has triggered."""
        return AnyOf(self, events)

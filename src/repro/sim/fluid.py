"""Fluid (mean-field) approximation tier for the simulation substrate.

The exact DES kernel processes every request as a chain of discrete
events; at fleet scale (thousands of servers at 13.4K RPS each) that is
minutes of wall clock per simulated second. This module provides the
analytical complement: a :class:`FluidQueue` advances a queue's state as
a continuous *mass* of work under the M/M/k fluid limit, integrated in
closed form over fixed sim-time quanta by a :class:`FluidStepper`
process that coexists with exact discrete simulation on the same
:class:`~repro.sim.Environment`.

Model
-----
A queue holds ``x`` jobs (a float mass) served by ``k`` servers, each
completing work at rate ``mu`` (1/ns). Between arrival impulses the
mass obeys::

    dx/dt = -mu * min(x, k)

which is integrated *exactly* piecewise (linear drain while ``x > k``,
exponential decay below), so the stepper is unconditionally stable for
any quantum size and conserves mass to float precision. Latency
estimates come from the M/M/k closed form (Erlang-C waiting time at the
smoothed arrival-rate estimate) plus a transient term for backlog in
excess of the steady state — in steady state the estimator *is* the
textbook M/M/k result, which the validation harness
(``tests/sim/test_fluid_accuracy.py``) asserts property-style.

Tier selection is pluggable: a :class:`TierPolicy` decides per store
whether it advances analytically ("fluid") or exactly ("exact"), either
statically or from a utilization signal with hysteresis
(:class:`UtilizationTierPolicy`). The cluster-side integration
(handoff, calibration, accounting) lives in :mod:`repro.cluster.fluid`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .core import Environment

__all__ = [
    "FLUID",
    "EXACT",
    "erlang_b",
    "erlang_c",
    "mmk_steady_state",
    "MMKSteadyState",
    "FluidQueue",
    "FluidStepper",
    "TierPolicy",
    "StaticTierPolicy",
    "UtilizationTierPolicy",
]

#: Tier labels (strings so they serialize cleanly into stats dicts).
FLUID = "fluid"
EXACT = "exact"


def erlang_b(servers: int, offered: float) -> float:
    """Erlang-B blocking probability for ``offered`` Erlangs, ``servers``
    servers (stable iterative recurrence)."""
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered < 0:
        raise ValueError(f"offered load must be >= 0, got {offered}")
    if offered == 0.0:
        return 0.0
    b = 1.0
    for i in range(1, servers + 1):
        b = offered * b / (i + offered * b)
    return b


def erlang_c(servers: int, offered: float) -> float:
    """Erlang-C probability that an arriving job must wait (M/M/k).

    Only defined for stable queues (``offered < servers``); returns 1.0
    at or beyond saturation (every arrival waits).
    """
    if offered >= servers:
        return 1.0
    b = erlang_b(servers, offered)
    return servers * b / (servers - offered * (1.0 - b))


@dataclass(frozen=True)
class MMKSteadyState:
    """Closed-form M/M/k steady state at one operating point."""

    utilization: float  #: rho = lambda / (k mu), clipped to [0, 1]
    wait_probability: float  #: Erlang-C
    mean_wait_ns: float  #: E[Wq], inf when unstable
    mean_latency_ns: float  #: E[T] = E[Wq] + 1/mu, inf when unstable
    mean_jobs: float  #: E[N] = lambda E[T], inf when unstable


def mmk_steady_state(rate_per_ns: float, mu: float, servers: int) -> MMKSteadyState:
    """The M/M/k steady state for arrival rate ``rate_per_ns`` (1/ns),
    per-server service rate ``mu`` (1/ns) and ``servers`` servers."""
    if mu <= 0:
        raise ValueError(f"service rate must be positive, got {mu}")
    if rate_per_ns < 0:
        raise ValueError(f"arrival rate must be >= 0, got {rate_per_ns}")
    offered = rate_per_ns / mu
    rho = offered / servers
    if rho >= 1.0:
        return MMKSteadyState(1.0, 1.0, math.inf, math.inf, math.inf)
    c = erlang_c(servers, offered)
    mean_wait = c / (servers * mu - rate_per_ns)
    mean_latency = mean_wait + 1.0 / mu
    return MMKSteadyState(rho, c, mean_wait, mean_latency, rate_per_ns * mean_latency)


class FluidQueue:
    """One queue advanced analytically as continuous mass.

    Arrivals enter as impulses via :meth:`arrive`; :meth:`step` drains
    the mass in closed form up to the current sim time and accumulates
    throughput, busy-server and mass integrals plus a latency estimate
    for the mass completed in the step.
    """

    __slots__ = (
        "name",
        "servers",
        "mu",
        "mass",
        "arrived_mass",
        "completed_mass",
        "removed_mass",
        "latency_mass_ns",
        "busy_integral_ns",
        "mass_integral_ns",
        "rate_estimate",
        "rate_alpha",
        "_last_step_ns",
        "_pending_arrivals",
        "_start_ns",
    )

    def __init__(
        self,
        name: str,
        service_time_ns: float,
        servers: int = 1,
        start_ns: float = 0.0,
        rate_alpha: float = 0.3,
    ):
        if service_time_ns <= 0:
            raise ValueError(f"service time must be positive, got {service_time_ns}")
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        self.name = name
        self.servers = servers
        #: Per-server service rate (jobs per ns).
        self.mu = 1.0 / service_time_ns
        self.mass = 0.0
        self.arrived_mass = 0.0
        self.completed_mass = 0.0
        #: Mass withdrawn by fluid->exact materialization (not completed
        #: analytically; it finishes as discrete requests instead).
        self.removed_mass = 0.0
        #: Sum over steps of completed_mass_in_step * latency_estimate.
        self.latency_mass_ns = 0.0
        #: Integral of busy servers over time (server-ns).
        self.busy_integral_ns = 0.0
        #: Integral of jobs in system over time (job-ns); mean jobs via
        #: Little's law comparisons divides by elapsed time.
        self.mass_integral_ns = 0.0
        #: EWMA arrival-rate estimate (jobs per ns), fed by the stepper.
        self.rate_estimate = 0.0
        self.rate_alpha = rate_alpha
        self._last_step_ns = start_ns
        self._start_ns = start_ns
        self._pending_arrivals = 0.0

    # -- intake ------------------------------------------------------------
    def arrive(self, mass: float = 1.0) -> None:
        """Add ``mass`` jobs to the queue (an arrival impulse)."""
        if mass < 0:
            raise ValueError(f"arrival mass must be >= 0, got {mass}")
        self.mass += mass
        self.arrived_mass += mass
        self._pending_arrivals += mass

    def remove_mass(self, mass: float) -> float:
        """Withdraw up to ``mass`` jobs (fluid->exact materialization).

        Returns the mass actually removed.
        """
        taken = min(mass, self.mass)
        self.mass -= taken
        self.removed_mass += taken
        return taken

    # -- integration -------------------------------------------------------
    def step(self, now_ns: float) -> float:
        """Advance the queue to ``now_ns``; returns mass completed.

        Exact piecewise integration of ``dx/dt = -mu min(x, k)``: a
        linear segment while the backlog exceeds the server count, then
        exponential decay. Both segments contribute their closed-form
        busy and mass integrals, so utilization and Little's-law
        comparisons are free of time-discretization error.
        """
        dt = now_ns - self._last_step_ns
        if dt < 0:
            raise ValueError(f"step backwards: {now_ns} < {self._last_step_ns}")
        # Update the smoothed arrival-rate estimate from the impulses
        # that landed since the previous step.
        if dt > 0:
            instant = self._pending_arrivals / dt
            alpha = self.rate_alpha
            self.rate_estimate += alpha * (instant - self.rate_estimate)
            self._pending_arrivals = 0.0
        x0 = self.mass
        x = x0
        k = float(self.servers)
        mu = self.mu
        remaining = dt
        if x > k:
            # Linear drain at full capacity until the backlog reaches k.
            t_hit = (x - k) / (k * mu)
            seg = min(t_hit, remaining)
            x_end = x - k * mu * seg
            self.busy_integral_ns += k * seg
            self.mass_integral_ns += 0.5 * (x + x_end) * seg
            x = x_end
            remaining -= seg
        if remaining > 0 and x > 0:
            # Exponential decay: every job is in service, so the busy
            # and mass integrals coincide and equal drained/mu.
            x_end = x * math.exp(-mu * remaining)
            drained = x - x_end
            self.busy_integral_ns += drained / mu
            self.mass_integral_ns += drained / mu
            x = x_end
        completed = x0 - x
        self.mass = x
        self._last_step_ns = now_ns
        if completed > 0:
            self.completed_mass += completed
            self.latency_mass_ns += completed * self.latency_estimate_ns()
        return completed

    # -- estimators --------------------------------------------------------
    def latency_estimate_ns(self) -> float:
        """Mean-latency estimate at the current operating point.

        Steady state: the M/M/k closed form at the smoothed arrival
        rate. Transient: backlog in excess of the steady-state job
        count drains at full capacity and is charged as extra wait.
        """
        steady = mmk_steady_state(self.rate_estimate, self.mu, self.servers)
        if math.isinf(steady.mean_latency_ns):
            # Saturated: service time plus time to drain the backlog.
            return 1.0 / self.mu + self.mass / (self.servers * self.mu)
        excess = max(0.0, self.mass - steady.mean_jobs)
        return steady.mean_latency_ns + excess / (self.servers * self.mu)

    def utilization(self, now_ns: float) -> float:
        """Time-averaged busy-server fraction since construction."""
        elapsed = now_ns - self._start_ns
        if elapsed <= 0:
            return 0.0
        return self.busy_integral_ns / (self.servers * elapsed)

    def offered_utilization(self) -> float:
        """Instantaneous rho estimate = lambda_hat / (k mu)."""
        return self.rate_estimate / (self.servers * self.mu)

    def mean_jobs(self, now_ns: float) -> float:
        """Time-averaged jobs in system since construction."""
        elapsed = now_ns - self._start_ns
        if elapsed <= 0:
            return 0.0
        return self.mass_integral_ns / elapsed

    def mean_latency_ns(self) -> float:
        """Completion-weighted mean of the per-step latency estimates."""
        if self.completed_mass <= 0:
            return 0.0
        return self.latency_mass_ns / self.completed_mass

    def throughput_per_ns(self, now_ns: float) -> float:
        elapsed = now_ns - self._start_ns
        if elapsed <= 0:
            return 0.0
        return self.completed_mass / elapsed

    def __repr__(self) -> str:
        return (
            f"FluidQueue({self.name}, mass={self.mass:.2f}, "
            f"k={self.servers}, mu={self.mu:.3g}/ns)"
        )


class TierPolicy:
    """Decides, per store, which tier advances it.

    ``decide`` is consulted at every stepper quantum with the store's
    current tier and its offered-utilization estimate; it returns the
    tier the store should be in next.
    """

    def decide(self, store_id, current_tier: str, utilization: float) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StaticTierPolicy(TierPolicy):
    """Fixed assignment: the named stores are fluid, the rest exact."""

    def __init__(self, fluid_stores=()):
        self.fluid_stores = frozenset(fluid_stores)

    def decide(self, store_id, current_tier: str, utilization: float) -> str:
        return FLUID if store_id in self.fluid_stores else EXACT

    def __repr__(self) -> str:
        return f"StaticTierPolicy({sorted(self.fluid_stores)!r})"


class UtilizationTierPolicy(TierPolicy):
    """Hysteresis on the utilization signal: cold stores go fluid below
    ``go_fluid_below``, hot ones return to exact above ``go_exact_above``.

    The dead band between the thresholds prevents tier flapping (and
    with it repeated materialization churn) when a store's load hovers
    near a single threshold.
    """

    def __init__(self, go_fluid_below: float = 0.4, go_exact_above: float = 0.75):
        if not 0.0 <= go_fluid_below < go_exact_above:
            raise ValueError(
                f"need 0 <= go_fluid_below < go_exact_above, got "
                f"{go_fluid_below} / {go_exact_above}"
            )
        self.go_fluid_below = go_fluid_below
        self.go_exact_above = go_exact_above

    def decide(self, store_id, current_tier: str, utilization: float) -> str:
        if current_tier == FLUID:
            return EXACT if utilization > self.go_exact_above else FLUID
        return FLUID if utilization < self.go_fluid_below else EXACT

    def __repr__(self) -> str:
        return (
            f"UtilizationTierPolicy(<{self.go_fluid_below}, "
            f">{self.go_exact_above})"
        )


class FluidStepper:
    """Simulation process advancing registered fluid queues on a fixed
    sim-time quantum, with an optional per-step hook (the cluster uses
    it for tier-policy evaluation and accounting)."""

    def __init__(
        self,
        env: Environment,
        quantum_ns: float,
        until_ns: Optional[float] = None,
        on_step: Optional[Callable[[float], None]] = None,
    ):
        if quantum_ns <= 0:
            raise ValueError(f"quantum must be positive, got {quantum_ns}")
        self.env = env
        self.quantum_ns = quantum_ns
        #: Stop stepping after this sim time (None = run until stopped;
        #: only safe when the surrounding run has its own horizon).
        self.until_ns = until_ns
        self.on_step = on_step
        self.queues: List[FluidQueue] = []
        self._queues_by_name: Dict[str, FluidQueue] = {}
        self.steps = 0
        self._stopped = False
        self._process = None

    def register(self, queue: FluidQueue) -> FluidQueue:
        self.queues.append(queue)
        self._queues_by_name[queue.name] = queue
        return queue

    def queue(self, name: str) -> FluidQueue:
        return self._queues_by_name[name]

    def start(self):
        """Launch the stepping process (idempotent)."""
        if self._process is None:
            self._process = self.env.process(self._run(), name="fluid-stepper")
        return self._process

    def stop(self) -> None:
        self._stopped = True

    def step_now(self) -> None:
        """Advance every queue to the current sim time immediately."""
        now = self.env.now
        for queue in self.queues:
            queue.step(now)

    def _run(self):
        env = self.env
        while not self._stopped:
            if self.until_ns is not None and env.now >= self.until_ns:
                break
            yield env.timeout(self.quantum_ns)
            now = env.now
            for queue in self.queues:
                queue.step(now)
            self.steps += 1
            if self.on_step is not None:
                self.on_step(now)

"""Measurement primitives: counters, utilization trackers, latency stats.

These are deliberately simple and allocation-light because they sit on
the simulator's hot paths.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "TimeWeightedValue",
    "LatencyRecorder",
    "SlidingWindow",
    "percentile",
    "summarize",
]


def percentile(sorted_values: List[float], p: float) -> float:
    """Linear-interpolation percentile of an already-sorted list.

    ``p`` is in [0, 100]. Raises ``ValueError`` on an empty list.
    """
    if not sorted_values:
        raise ValueError("percentile of empty list")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    if len(sorted_values) == 1:
        return sorted_values[0]
    rank = (p / 100.0) * (len(sorted_values) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return sorted_values[low]
    frac = rank - low
    return sorted_values[low] * (1.0 - frac) + sorted_values[high] * frac


class Counter:
    """Named integer event counters."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def add(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __getitem__(self, name: str) -> int:
        return self.get(name)


class TimeWeightedValue:
    """Tracks the time-weighted average of a piecewise-constant value.

    Used for resource utilization: set the value whenever it changes and
    read ``average(now)`` at the end of a run.
    """

    def __init__(self, initial: float = 0.0, start_time: float = 0.0):
        self._value = initial
        self._last_change = start_time
        self._weighted_sum = 0.0
        self._start_time = start_time

    @property
    def value(self) -> float:
        return self._value

    def set(self, value: float, now: float) -> None:
        self._weighted_sum += self._value * (now - self._last_change)
        self._value = value
        self._last_change = now

    def add(self, delta: float, now: float) -> None:
        self.set(self._value + delta, now)

    def average(self, now: float) -> float:
        """Time-weighted average over [start_time, now]."""
        elapsed = now - self._start_time
        if elapsed <= 0:
            return self._value
        return (self._weighted_sum + self._value * (now - self._last_change)) / elapsed

    def reset(self, now: float) -> None:
        """Restart averaging from ``now``, keeping the current value."""
        self._weighted_sum = 0.0
        self._last_change = now
        self._start_time = now


class LatencyRecorder:
    """Collects per-request latency samples and summarizes them."""

    def __init__(self, warmup_fraction: float = 0.0):
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        self.samples: List[float] = []
        self.warmup_fraction = warmup_fraction
        #: Sorted view of the effective samples, invalidated on record().
        self._sorted: Optional[List[float]] = None

    def record(self, latency: float) -> None:
        self.samples.append(latency)
        self._sorted = None

    def __len__(self) -> int:
        return len(self.samples)

    def _effective(self) -> List[float]:
        skip = int(len(self.samples) * self.warmup_fraction)
        return self.samples[skip:]

    def _effective_sorted(self) -> List[float]:
        if self._sorted is None:
            self._sorted = sorted(self._effective())
        return self._sorted

    @property
    def count(self) -> int:
        return len(self._effective())

    def mean(self) -> float:
        values = self._effective()
        if not values:
            raise ValueError("no samples recorded")
        return sum(values) / len(values)

    def pct(self, p: float) -> float:
        return percentile(self._effective_sorted(), p)

    def p50(self) -> float:
        return self.pct(50.0)

    def p99(self) -> float:
        return self.pct(99.0)

    def max(self) -> float:
        values = self._effective()
        if not values:
            raise ValueError("no samples recorded")
        return max(values)

    def summary(self) -> Dict[str, float]:
        ordered = self._effective_sorted()
        if not ordered:
            return {"count": 0}
        return {
            "count": len(ordered),
            "mean": sum(ordered) / len(ordered),
            "p50": percentile(ordered, 50.0),
            "p95": percentile(ordered, 95.0),
            "p99": percentile(ordered, 99.0),
            "max": ordered[-1],
        }


def summarize(values: List[float]) -> Dict[str, float]:
    """Mean/p50/p95/p99/max summary of a sample list."""
    if not values:
        return {"count": 0}
    ordered = sorted(values)
    return {
        "count": len(ordered),
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 50.0),
        "p95": percentile(ordered, 95.0),
        "p99": percentile(ordered, 99.0),
        "max": ordered[-1],
    }


class SlidingWindow:
    """Fixed-capacity FIFO of recent samples (for adaptive policies)."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._items: deque = deque(maxlen=capacity)

    def push(self, value: float) -> None:
        self._items.append(value)

    def mean(self) -> Optional[float]:
        if not self._items:
            return None
        return sum(self._items) / len(self._items)

    def __len__(self) -> int:
        return len(self._items)

"""Shared-resource primitives built on the simulation kernel.

:class:`Resource` models a pool of identical servers with a FIFO wait
queue; :class:`PriorityResource` serves waiters lowest-priority-value
first. Both are used throughout the hardware models (CPU cores, PEs,
dispatchers, DMA engines, network links).
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import List, Optional

from .core import Environment, Event

__all__ = ["Resource", "PriorityResource", "Request", "Release", "Preempted"]


class Preempted(Exception):
    """Cause delivered to a process whose resource usage was preempted."""

    def __init__(self, by: object, usage_since: float):
        super().__init__(by, usage_since)
        self.by = by
        self.usage_since = usage_since


class Request(Event):
    """A pending or granted claim on a :class:`Resource`.

    Usable as a context manager so the claim is always released::

        with resource.request() as req:
            yield req
            ...
    """

    __slots__ = ("resource", "priority", "time", "key")

    def __init__(self, resource: "Resource", priority: int = 0):
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        self.time = resource.env.now
        resource._request(self)

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the claim (or withdraw it if still queued)."""
        self.resource._release(self)


class Release(Event):
    """Immediate event confirming a release (kept for API symmetry)."""

    __slots__ = ("request",)

    def __init__(self, resource: "Resource", request: Request):
        super().__init__(resource.env)
        self.request = request
        resource._release(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` identical servers with a FIFO queue."""

    def __init__(self, env: Environment, capacity: int = 1):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[Request] = []
        #: FIFO wait queue; a deque so grants are O(1) popleft instead
        #: of the O(n) ``list.pop(0)`` the kernel used to pay per grant.
        self.queue: deque = deque()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of servers currently in use."""
        return len(self.users)

    def request(self, priority: int = 0) -> Request:
        """Claim one server; the returned event triggers when granted."""
        return Request(self, priority)

    def release(self, request: Request) -> Release:
        """Release a previously granted claim."""
        return Release(self, request)

    # -- internal ---------------------------------------------------------
    def _request(self, request: Request) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            request.succeed()
        else:
            self._enqueue(request)

    def _enqueue(self, request: Request) -> None:
        self.queue.append(request)

    def _release(self, request: Request) -> None:
        try:
            self.users.remove(request)
        except ValueError:
            # Not a user: withdraw from the wait queue if still there.
            self._dequeue(request)
            return
        self._grant_next()

    def _dequeue(self, request: Request) -> None:
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    def _grant_next(self) -> None:
        while self.queue and len(self.users) < self._capacity:
            nxt = self._pop_next()
            if nxt is None:
                return
            self.users.append(nxt)
            nxt.succeed()

    def _pop_next(self) -> Optional[Request]:
        if not self.queue:
            return None
        return self.queue.popleft()


class PriorityResource(Resource):
    """Resource whose queue is served lowest ``priority`` value first.

    Ties break FIFO (by request creation order).
    """

    def __init__(self, env: Environment, capacity: int = 1):
        super().__init__(env, capacity)
        self._heap: List[tuple] = []
        self._order = 0

    def _enqueue(self, request: Request) -> None:
        self._order += 1
        request.key = (request.priority, self._order)
        heapq.heappush(self._heap, (request.key, request))
        self.queue.append(request)

    def _dequeue(self, request: Request) -> None:
        super()._dequeue(request)
        # Lazily ignore withdrawn entries when popping.

    def _pop_next(self) -> Optional[Request]:
        while self._heap:
            _, request = heapq.heappop(self._heap)
            if request in self.queue:
                self.queue.remove(request)
                return request
        return None

"""Deterministic random-number streams for reproducible experiments.

Every stochastic model component draws from its own named stream derived
from a single experiment seed, so adding a new component never perturbs
the draws of existing ones, and re-running an experiment with the same
seed reproduces it exactly.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Sequence

__all__ = ["RandomStreams", "Stream", "derive_seed"]


def derive_seed(seed: int, *labels: object) -> int:
    """Derive an independent 64-bit sub-seed from ``seed`` and labels.

    The derivation is a stable hash, so it is reproducible across
    processes and Python versions (unlike built-in ``hash``), and two
    different label tuples virtually never collide. Used both for the
    named streams of :class:`RandomStreams` and for per-shard seeds in
    the parallel experiment runner, so that results depend only on the
    (experiment, design point) identity — never on worker count or
    scheduling order.
    """
    text = "/".join(str(part) for part in (seed, *labels))
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class Stream:
    """A named, seeded random stream with distribution helpers."""

    def __init__(self, seed: int, name: str):
        self.name = name
        self._rng = random.Random(seed)

    # -- raw --------------------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence):
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return self._rng.random() < p

    # -- distributions ------------------------------------------------------
    def exponential(self, mean: float) -> float:
        """Exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return self._rng.expovariate(1.0 / mean)

    def lognormal_median(self, median: float, sigma: float) -> float:
        """Lognormal variate parameterized by its median and log-sigma."""
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        return self._rng.lognormvariate(math.log(median), sigma)

    def bounded_lognormal(
        self, median: float, sigma: float, low: float, high: float
    ) -> float:
        """Lognormal clipped to ``[low, high]``.

        Clipping (rather than rejection) keeps the draw count per call
        constant, which preserves stream alignment across experiments.
        """
        return min(high, max(low, self.lognormal_median(median, sigma)))

    def pareto(self, shape: float, scale: float) -> float:
        """Pareto variate: scale * (1/U)^(1/shape)."""
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        return scale * self._rng.paretovariate(shape) / 1.0

    def normal(self, mean: float, std: float) -> float:
        return self._rng.gauss(mean, std)

    def poisson(self, mean: float) -> int:
        """Poisson variate with the given mean.

        Knuth's product method below ``mean < 64`` (one uniform per
        unit of mean, exact); above that a rounded normal approximation
        (one gauss draw) — the batched fluid arrival path uses large
        per-quantum means where the approximation error is far below
        the fluid tier's documented tolerance.
        """
        if mean < 0:
            raise ValueError(f"mean must be >= 0, got {mean}")
        if mean == 0:
            return 0
        if mean < 64.0:
            limit = math.exp(-mean)
            count = 0
            product = self._rng.random()
            while product > limit:
                count += 1
                product *= self._rng.random()
            return count
        return max(0, round(self._rng.gauss(mean, math.sqrt(mean))))

    def binomial(self, n: int, p: float) -> int:
        """Binomial variate: successes in ``n`` Bernoulli(p) trials.

        Plain inversion by summed Bernoulli trials — n is small on the
        batched-arrival split path, and a fixed n draws per call keeps
        stream alignment independent of the outcome.
        """
        if n < 0:
            raise ValueError(f"n must be >= 0, got {n}")
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        rnd = self._rng.random
        return sum(1 for _ in range(n) if rnd() < p)

    def triangular(self, low: float, high: float, mode: float) -> float:
        return self._rng.triangular(low, high, mode)


class RandomStreams:
    """Registry of named :class:`Stream` objects derived from one seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Get (or lazily create) the stream called ``name``."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        stream = Stream(derive_seed(self.seed, name), name)
        self._streams[name] = stream
        return stream

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def names(self):
        return sorted(self._streams)

"""Buffered producer/consumer channels for the simulation kernel.

:class:`Store` is a bounded FIFO buffer of arbitrary items with blocking
``put``/``get``; :class:`PriorityStore` pops the smallest item first; and
:class:`FilterStore` lets consumers wait for items matching a predicate.
The hardware queues of the accelerator models are built on these.

Performance notes
-----------------
Waiter queues and the FIFO item buffer are :class:`collections.deque`:
``_dispatch`` serves waiters with O(1) ``popleft`` instead of the O(n)
``list.pop(0)`` that used to dominate store-contention profiles (every
queued put/get shifted the whole waiter array). :class:`PriorityStore`
keeps a plain list because ``heapq`` requires one; :class:`FilterStore`
scans (predicates force that) but still pops matched positions in one
pass. See ``docs/performance.md`` and ``benchmarks/bench_kernel.py``.
"""

from __future__ import annotations

import heapq
from collections import deque
from heapq import heappush
from typing import Any, Callable

from .core import NORMAL, Environment, Event
from .core import _PENDING  # kernel-internal sentinel, shared in-package

__all__ = ["Store", "PriorityStore", "FilterStore", "PriorityItem"]


class StorePut(Event):
    """Pending put: triggers when the item has been accepted."""

    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any):
        # Event.__init__ is inlined: puts/gets are the second-hottest
        # allocation in the kernel after Timeout.
        env = store.env
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._defused = False
        self.item = item
        self.store = store
        # The store is dispatched to fixpoint after every mutation, so
        # on entry here either the buffer has room and no puts are
        # queued, or it is full. A put into a full store cannot make
        # progress — park it without paying for a dispatch pass.
        items = store.items
        if len(items) >= store.capacity:
            store._put_waiters.append(self)
        elif not store._put_waiters:
            # Room and no queued puts: accept immediately (inlined
            # succeed), then only dispatch if a getter may now be
            # servable.
            store._insert(item)
            self._value = None
            env._eid += 1
            heappush(env._queue, (env._now, NORMAL, env._eid, self))
            if store._get_waiters:
                store._dispatch()
        else:
            store._put_waiters.append(self)
            store._dispatch()

    def cancel(self) -> None:
        """Withdraw the pending put (no-op once the item was accepted).

        Called by :meth:`repro.sim.Process.interrupt` when the waiting
        process is torn down, so an abandoned put never lands later.
        """
        if not self.triggered:
            try:
                self.store._put_waiters.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    """Pending get: triggers with the retrieved item."""

    __slots__ = ("filter", "store")

    def __init__(self, store: "Store", filter: Callable[[Any], bool] = None):
        env = store.env
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._defused = False
        self.filter = filter
        self.store = store
        # Mirror of the StorePut fast path: a filterless get from a
        # non-empty store is served inline; dispatch only runs when the
        # extraction freed capacity a queued put was waiting for. An
        # unservable filterless get cannot unblock anything (an empty
        # buffer means every admissible put was already admitted), so
        # it parks without a dispatch pass; predicate gets always take
        # the scanning path.
        if filter is None and store.items:
            self._value = store._extract(self)
            env._eid += 1
            heappush(env._queue, (env._now, NORMAL, env._eid, self))
            if store._put_waiters:
                store._dispatch()
        else:
            store._get_waiters.append(self)
            if filter is not None:
                store._dispatch()

    def cancel(self) -> None:
        """Withdraw the pending get; return an already-granted item.

        If the get was already served but its value never consumed (the
        waiter was interrupted in the same instant), the item is pushed
        back so capacity-token stores (e.g. the RELIEF admission queue)
        do not leak slots.
        """
        if not self.triggered:
            try:
                self.store._get_waiters.remove(self)
            except ValueError:
                pass
        elif self.ok:
            store = self.store
            store._insert(self.value)
            # The returned item consumes capacity again; only a waiting
            # getter can make progress on it.
            if store._get_waiters:
                store._dispatch()


class Store:
    """Bounded FIFO buffer with blocking put/get.

    ``items`` is a :class:`collections.deque` (ordered oldest first);
    compare against lists with ``list(store.items)``.
    """

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items = self._new_items()
        self._put_waiters: deque = deque()
        self._get_waiters: deque = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the returned event triggers once accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove an item; the returned event triggers with it."""
        return StoreGet(self)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: returns False if the buffer is full."""
        if len(self.items) >= self.capacity:
            return False
        self._insert(item)
        # Inserting consumes capacity, so queued puts cannot progress;
        # only a waiting getter can.
        if self._get_waiters:
            self._dispatch()
        return True

    def try_get(self) -> Any:
        """Non-blocking get: returns None if empty."""
        if not self.items:
            return None
        item = self._extract(None)
        # Extracting frees capacity, so only queued puts can progress.
        if self._put_waiters:
            self._dispatch()
        return item

    def remove(self, item: Any) -> bool:
        """Remove a specific item (identity match), unblocking putters."""
        items = self.items
        for index, existing in enumerate(items):
            if existing is item:
                del items[index]
                if self._put_waiters:
                    self._dispatch()
                return True
        return False

    # -- storage policy (overridden by subclasses) --------------------------
    def _new_items(self):
        return deque()

    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _extract(self, getter) -> Any:
        return self.items.popleft()

    def _can_serve(self, getter) -> bool:
        return bool(self.items)

    # -- waiter matching ----------------------------------------------------
    def _dispatch(self) -> None:
        # FIFO/priority stores serve getters strictly in arrival order
        # (``_can_serve`` only asks "any items?"), so both waiter queues
        # drain with O(1) popleft. Admitting a put can unblock a getter
        # and vice versa, hence the outer progress loop. Event.succeed
        # is inlined (queued waiters are pending by construction, so
        # the already-triggered check is skipped).
        items = self.items
        put_waiters = self._put_waiters
        get_waiters = self._get_waiters
        capacity = self.capacity
        env = self.env
        event_queue = env._queue
        insert = self._insert
        extract = self._extract
        now = env._now
        eid = env._eid
        while True:
            progress = False
            while put_waiters and len(items) < capacity:
                putter = put_waiters.popleft()
                insert(putter.item)
                putter._value = None
                eid += 1
                heappush(event_queue, (now, NORMAL, eid, putter))
                progress = True
            while get_waiters and items:
                getter = get_waiters.popleft()
                getter._value = extract(getter)
                eid += 1
                heappush(event_queue, (now, NORMAL, eid, getter))
                progress = True
            if not progress:
                env._eid = eid
                return


class PriorityItem:
    """Wrap an arbitrary item with an orderable priority key."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, PriorityItem):
            return self.priority == other.priority and self.item == other.item
        return NotImplemented

    def __repr__(self) -> str:
        return f"PriorityItem(priority={self.priority!r}, item={self.item!r})"


class PriorityStore(Store):
    """Store that pops the smallest item first (heap ordered)."""

    def _new_items(self):
        # heapq requires a list; the heap never pops from index 0 via
        # the deque path.
        return []

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _extract(self, getter) -> Any:
        return heapq.heappop(self.items)

    def remove(self, item: Any) -> bool:
        """Heap-preserving remove (identity match).

        The base implementation deletes an arbitrary position, which
        breaks the heap invariant and makes later ``heappop`` calls
        return non-minimal items; here the hole is back-filled with the
        last element and the heap re-established.
        """
        items = self.items
        for index, existing in enumerate(items):
            if existing is item:
                last = items.pop()
                if index < len(items):
                    items[index] = last
                    heapq.heapify(items)
                if self._put_waiters:
                    self._dispatch()
                return True
        return False


class FilterStore(Store):
    """Store whose consumers can wait for items matching a predicate."""

    def get(self, filter: Callable[[Any], bool] = None) -> StoreGet:  # noqa: A002
        return StoreGet(self, filter)

    def _can_serve(self, getter) -> bool:
        if getter is None or getter.filter is None:
            return bool(self.items)
        return any(getter.filter(item) for item in self.items)

    def _extract(self, getter) -> Any:
        items = self.items
        if getter is None or getter.filter is None:
            return items.popleft()
        for idx, item in enumerate(items):
            if getter.filter(item):
                del items[idx]
                return item
        raise LookupError("FilterStore._extract called with no matching item")

    def _dispatch(self) -> None:
        # Predicate getters are not FIFO-drainable: a blocked getter at
        # the head must not starve a later getter whose filter matches,
        # so the getter queue is scanned left-to-right each round
        # (exactly the pre-deque semantics).
        items = self.items
        put_waiters = self._put_waiters
        get_waiters = self._get_waiters
        capacity = self.capacity
        while True:
            progress = False
            while put_waiters and len(items) < capacity:
                putter = put_waiters.popleft()
                self._insert(putter.item)
                putter.succeed()
                progress = True
            for getter in list(get_waiters):
                if self._can_serve(getter):
                    get_waiters.remove(getter)
                    getter.succeed(self._extract(getter))
                    progress = True
            if not progress:
                return

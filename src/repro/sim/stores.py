"""Buffered producer/consumer channels for the simulation kernel.

:class:`Store` is a bounded FIFO buffer of arbitrary items with blocking
``put``/``get``; :class:`PriorityStore` pops the smallest item first; and
:class:`FilterStore` lets consumers wait for items matching a predicate.
The hardware queues of the accelerator models are built on these.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List

from .core import Environment, Event

__all__ = ["Store", "PriorityStore", "FilterStore", "PriorityItem"]


class StorePut(Event):
    """Pending put: triggers when the item has been accepted."""

    __slots__ = ("item", "store")

    def __init__(self, store: "Store", item: Any):
        super().__init__(store.env)
        self.item = item
        self.store = store
        store._put_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the pending put (no-op once the item was accepted).

        Called by :meth:`repro.sim.Process.interrupt` when the waiting
        process is torn down, so an abandoned put never lands later.
        """
        if not self.triggered:
            try:
                self.store._put_waiters.remove(self)
            except ValueError:
                pass


class StoreGet(Event):
    """Pending get: triggers with the retrieved item."""

    __slots__ = ("filter", "store")

    def __init__(self, store: "Store", filter: Callable[[Any], bool] = None):
        super().__init__(store.env)
        self.filter = filter
        self.store = store
        store._get_waiters.append(self)
        store._dispatch()

    def cancel(self) -> None:
        """Withdraw the pending get; return an already-granted item.

        If the get was already served but its value never consumed (the
        waiter was interrupted in the same instant), the item is pushed
        back so capacity-token stores (e.g. the RELIEF admission queue)
        do not leak slots.
        """
        if not self.triggered:
            try:
                self.store._get_waiters.remove(self)
            except ValueError:
                pass
        elif self.ok:
            self.store._insert(self.value)
            self.store._dispatch()


class Store:
    """Bounded FIFO buffer with blocking put/get."""

    def __init__(self, env: Environment, capacity: float = float("inf")):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_waiters: List[StorePut] = []
        self._get_waiters: List[StoreGet] = []

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    def put(self, item: Any) -> StorePut:
        """Add ``item``; the returned event triggers once accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Remove an item; the returned event triggers with it."""
        return StoreGet(self)

    def try_put(self, item: Any) -> bool:
        """Non-blocking put: returns False if the buffer is full."""
        if self.is_full:
            return False
        self._insert(item)
        self._dispatch()
        return True

    def try_get(self) -> Any:
        """Non-blocking get: returns None if empty."""
        if not self.items:
            return None
        item = self._extract(None)
        self._dispatch()
        return item

    def remove(self, item: Any) -> bool:
        """Remove a specific item (identity match), unblocking putters."""
        for index, existing in enumerate(self.items):
            if existing is item:
                self.items.pop(index)
                self._dispatch()
                return True
        return False

    # -- storage policy (overridden by subclasses) --------------------------
    def _insert(self, item: Any) -> None:
        self.items.append(item)

    def _extract(self, getter) -> Any:
        return self.items.pop(0)

    def _can_serve(self, getter) -> bool:
        return bool(self.items)

    # -- waiter matching ----------------------------------------------------
    def _dispatch(self) -> None:
        # Admit queued puts while there is room.
        progress = True
        while progress:
            progress = False
            while self._put_waiters and not self.is_full:
                putter = self._put_waiters.pop(0)
                self._insert(putter.item)
                putter.succeed()
                progress = True
            idx = 0
            while idx < len(self._get_waiters):
                getter = self._get_waiters[idx]
                if self._can_serve(getter):
                    self._get_waiters.pop(idx)
                    getter.succeed(self._extract(getter))
                    progress = True
                else:
                    idx += 1


class PriorityItem:
    """Wrap an arbitrary item with an orderable priority key."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: Any, item: Any):
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, PriorityItem):
            return self.priority == other.priority and self.item == other.item
        return NotImplemented

    def __repr__(self) -> str:
        return f"PriorityItem(priority={self.priority!r}, item={self.item!r})"


class PriorityStore(Store):
    """Store that pops the smallest item first (heap ordered)."""

    def _insert(self, item: Any) -> None:
        heapq.heappush(self.items, item)

    def _extract(self, getter) -> Any:
        return heapq.heappop(self.items)


class FilterStore(Store):
    """Store whose consumers can wait for items matching a predicate."""

    def get(self, filter: Callable[[Any], bool] = None) -> StoreGet:  # noqa: A002
        return StoreGet(self, filter)

    def _can_serve(self, getter) -> bool:
        if getter is None or getter.filter is None:
            return bool(self.items)
        return any(getter.filter(item) for item in self.items)

    def _extract(self, getter) -> Any:
        if getter is None or getter.filter is None:
            return self.items.pop(0)
        for idx, item in enumerate(self.items):
            if getter.filter(item):
                return self.items.pop(idx)
        raise LookupError("FilterStore._extract called with no matching item")

"""Workload models: services, costs, payloads, arrival processes."""

from .alibaba import alibaba_arrivals, verify_average_rate
from .arrivals import ClosedBatch, MmppArrivals, PoissonArrivals, make_arrivals
from .azure import azure_arrivals
from .calibration import (
    ALIBABA_AVERAGE_RPS,
    AVERAGE_TAX_FRACTIONS,
    MS,
    US,
    BranchProbabilities,
    OrchestrationCosts,
    RemoteLatencies,
    TaxCategory,
)
from .costs import CostModel
from .deathstarbench import hotel_reservation_services, media_services
from .payloads import SIZE_FACTORS, PayloadModel
from .request import Buckets, Request
from .relief_suite import (
    COARSE_ACCELERATOR_SLOTS,
    COARSE_SPEEDUPS,
    coarse_machine_params,
    relief_suite_registry,
    relief_suite_services,
)
from .serverless import SERVERLESS_NAMES, serverless_functions
from .socialnetwork import SOCIAL_NETWORK_NAMES, social_network_services
from .trainticket import train_ticket_services
from .usuite import usuite_services
from .spec import (
    CATEGORY_OF_KIND,
    CpuSegment,
    ParallelInvocations,
    PathStep,
    ServiceSpec,
    TraceInvocation,
    count_ops_by_category,
    expand_chain,
    most_common_state,
    total_accelerators,
)

__all__ = [
    "ALIBABA_AVERAGE_RPS",
    "AVERAGE_TAX_FRACTIONS",
    "BranchProbabilities",
    "CATEGORY_OF_KIND",
    "COARSE_ACCELERATOR_SLOTS",
    "COARSE_SPEEDUPS",
    "ClosedBatch",
    "CostModel",
    "CpuSegment",
    "MS",
    "MmppArrivals",
    "OrchestrationCosts",
    "ParallelInvocations",
    "PathStep",
    "PayloadModel",
    "Request",
    "Buckets",
    "PoissonArrivals",
    "RemoteLatencies",
    "SERVERLESS_NAMES",
    "SIZE_FACTORS",
    "SOCIAL_NETWORK_NAMES",
    "ServiceSpec",
    "TaxCategory",
    "TraceInvocation",
    "US",
    "alibaba_arrivals",
    "azure_arrivals",
    "make_arrivals",
    "coarse_machine_params",
    "count_ops_by_category",
    "expand_chain",
    "hotel_reservation_services",
    "media_services",
    "most_common_state",
    "relief_suite_registry",
    "relief_suite_services",
    "serverless_functions",
    "social_network_services",
    "train_ticket_services",
    "usuite_services",
    "total_accelerators",
]

"""Synthetic Alibaba-production-trace substitute (Fig 11-13 load model).

The paper picks 8 Alibaba services [54] with size/call structure
matching the 8 SocialNetwork services and replays their real invocation
rates (average 13.4K RPS per service). The public characterization of
those traces shows diurnal rate skew across services and short bursty
regimes; we reproduce both with per-service rates fixed in the service
specs (averaging 13.4K RPS) and MMPP burstiness.
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import RandomStreams
from .arrivals import MmppArrivals
from .calibration import ALIBABA_AVERAGE_RPS
from .spec import ServiceSpec

__all__ = ["alibaba_arrivals", "verify_average_rate"]

#: Alibaba-like burstiness: moderate bursts, ~4x rate inflation.
BURST_FACTOR = 5.0
BURST_SHARE = 0.10


def alibaba_arrivals(
    services: List[ServiceSpec],
    streams: RandomStreams,
    rate_scale: float = 1.0,
) -> Dict[str, MmppArrivals]:
    """Per-service bursty arrival generators at production-like rates."""
    return {
        spec.name: MmppArrivals(
            rate_rps=spec.rate_rps * rate_scale,
            stream=streams.stream(f"arrivals/{spec.name}"),
            burst_factor=BURST_FACTOR,
            burst_share=BURST_SHARE,
        )
        for spec in services
    }


def verify_average_rate(services: List[ServiceSpec], tolerance: float = 0.02) -> bool:
    """Whether the per-service rates average the paper's 13.4K RPS."""
    average = sum(spec.rate_rps for spec in services) / len(services)
    return abs(average - ALIBABA_AVERAGE_RPS) / ALIBABA_AVERAGE_RPS <= tolerance

"""Open-loop arrival generators.

Three generators cover the paper's load models:

* :class:`PoissonArrivals` — the Figure 12 load sweeps (5K/10K/15K RPS
  Poisson inter-arrivals).
* :class:`MmppArrivals` — a two-state Markov-modulated Poisson process
  used as the synthetic substitute for Alibaba's production traces
  (Fig 11) and, with spikier parameters, Azure's serverless traces
  (Fig 16). Real production traces alternate calm and bursty regimes;
  MMPP-2 is the standard parsimonious model of that behaviour.
* :class:`ClosedBatch` — a fixed number of back-to-back requests, one
  in flight at a time (the unloaded single-request runs of Fig 17).
"""

from __future__ import annotations

from typing import Iterator

from ..sim import Stream

__all__ = ["PoissonArrivals", "MmppArrivals", "ClosedBatch", "make_arrivals"]

_SECOND_NS = 1e9


def make_arrivals(
    mode: str,
    rate_rps: float,
    stream: Stream,
    *,
    burst_factor: float = 4.0,
    burst_share: float = 0.15,
    mean_dwell_ns: float = 20e6,
):
    """Build the arrival generator for one of the named load models.

    ``"poisson"`` is the Figure 12 sweep; ``"alibaba"`` and ``"azure"``
    are fixed MMPP-2 parameterizations standing in for the respective
    production traces; ``"mmpp"`` is an MMPP-2 with caller-chosen burst
    shape (the keyword arguments, ignored by the named modes) for runs
    whose horizon is shorter than the trace-scale 20 ms regime dwells.
    Both the single-server driver and the cluster driver resolve their
    ``arrival_mode`` through this factory.
    """
    if mode == "poisson":
        return PoissonArrivals(rate_rps, stream)
    if mode == "alibaba":
        return MmppArrivals(rate_rps, stream, burst_factor=5.0, burst_share=0.10)
    if mode == "azure":
        return MmppArrivals(rate_rps, stream, burst_factor=10.0, burst_share=0.06)
    if mode == "mmpp":
        return MmppArrivals(
            rate_rps,
            stream,
            burst_factor=burst_factor,
            burst_share=burst_share,
            mean_dwell_ns=mean_dwell_ns,
        )
    raise ValueError(f"unknown arrival mode {mode!r}")


class PoissonArrivals:
    """Exponential inter-arrival times at a fixed average rate."""

    def __init__(self, rate_rps: float, stream: Stream):
        if rate_rps <= 0:
            raise ValueError(f"rate must be positive, got {rate_rps}")
        self.rate_rps = rate_rps
        self.stream = stream

    @property
    def mean_gap_ns(self) -> float:
        return _SECOND_NS / self.rate_rps

    def next_gap_ns(self) -> float:
        return self.stream.exponential(self.mean_gap_ns)

    def gaps(self, count: int) -> Iterator[float]:
        for _ in range(count):
            yield self.next_gap_ns()


class MmppArrivals:
    """Two-state Markov-modulated Poisson process.

    The process alternates between a *calm* state and a *burst* state;
    each state holds for an exponentially distributed dwell time and
    arrivals within a state are Poisson. The overall average rate
    equals ``rate_rps``; ``burst_factor`` sets how much faster the
    burst state is and ``burst_share`` how much of the time is bursty.
    """

    def __init__(
        self,
        rate_rps: float,
        stream: Stream,
        burst_factor: float = 4.0,
        burst_share: float = 0.15,
        mean_dwell_ns: float = 20e6,  # 20 ms regimes
    ):
        if rate_rps <= 0:
            raise ValueError(f"rate must be positive, got {rate_rps}")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not 0.0 < burst_share < 1.0:
            raise ValueError("burst_share must be in (0, 1)")
        self.rate_rps = rate_rps
        self.stream = stream
        self.burst_factor = burst_factor
        self.burst_share = burst_share
        self.mean_dwell_ns = mean_dwell_ns
        # Solve calm_rate so the time-weighted average equals rate_rps.
        calm_share = 1.0 - burst_share
        self.calm_rate = rate_rps / (calm_share + burst_share * burst_factor)
        self.burst_rate = self.calm_rate * burst_factor
        self._in_burst = False
        self._state_left_ns = self._next_dwell()

    def _next_dwell(self) -> float:
        return self.stream.exponential(self.mean_dwell_ns)

    @property
    def in_burst(self) -> bool:
        return self._in_burst

    def _current_rate(self) -> float:
        return self.burst_rate if self._in_burst else self.calm_rate

    def next_gap_ns(self) -> float:
        """Next inter-arrival gap, advancing regime state as time passes."""
        gap = 0.0
        while True:
            candidate = self.stream.exponential(_SECOND_NS / self._current_rate())
            if candidate <= self._state_left_ns:
                self._state_left_ns -= candidate
                return gap + candidate
            # The regime flips before the next arrival: consume the
            # remaining dwell and re-draw in the new regime.
            gap += self._state_left_ns
            self._in_burst = not self._in_burst
            dwell = self._next_dwell()
            if self._in_burst:
                # Burst dwells are shorter in proportion to their share.
                dwell *= self.burst_share / (1.0 - self.burst_share)
            self._state_left_ns = dwell

    def gaps(self, count: int) -> Iterator[float]:
        for _ in range(count):
            yield self.next_gap_ns()


class ClosedBatch:
    """One request at a time, back to back (unloaded measurements)."""

    def __init__(self, think_time_ns: float = 0.0):
        if think_time_ns < 0:
            raise ValueError("think time must be non-negative")
        self.think_time_ns = think_time_ns

    def next_gap_ns(self) -> float:
        return self.think_time_ns

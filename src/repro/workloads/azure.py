"""Synthetic Azure-serverless-trace substitute (Fig 16 load model).

Azure Functions traces [87] are far spikier than microservice traffic:
most functions are invoked rarely, then in sharp bursts. We reuse the
MMPP generator with a high burst factor and small burst share, which
produces the characteristic idle-then-spike invocation pattern that
stresses orchestrator queues the way the paper describes ("bursty
invocation patterns").
"""

from __future__ import annotations

from typing import Dict, List

from ..sim import RandomStreams
from .arrivals import MmppArrivals
from .spec import ServiceSpec

__all__ = ["azure_arrivals"]

#: Serverless burstiness: rare but violent spikes.
BURST_FACTOR = 10.0
BURST_SHARE = 0.06


def azure_arrivals(
    functions: List[ServiceSpec],
    streams: RandomStreams,
    rate_scale: float = 1.0,
) -> Dict[str, MmppArrivals]:
    """Per-function spiky arrival generators."""
    return {
        spec.name: MmppArrivals(
            rate_rps=spec.rate_rps * rate_scale,
            stream=streams.stream(f"azure/{spec.name}"),
            burst_factor=BURST_FACTOR,
            burst_share=BURST_SHARE,
        )
        for spec in functions
    }

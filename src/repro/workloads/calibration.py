"""Calibration constants for the workload and orchestration models.

Everything the paper publishes is taken verbatim (accelerator speedups,
queue depths, dispatcher instruction counts, RELIEF's 1.5 us manager
occupancy, the Fig 1 average tax fractions, Table IV paths and
accelerator counts, the 13.4K RPS average Alibaba rate). The remaining
free constants — absolute service execution times, per-service rates,
remote-service latencies, orchestration software costs — are chosen to
be plausible for DeathStarBench-class microservices and are collected
here so every experiment shares one calibration. See DESIGN.md for the
calibration philosophy: the reproduction target is the *shape* of the
results, not absolute numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = [
    "TaxCategory",
    "AVERAGE_TAX_FRACTIONS",
    "OrchestrationCosts",
    "RemoteLatencies",
    "BranchProbabilities",
    "ALIBABA_AVERAGE_RPS",
    "US",
    "MS",
]

US = 1_000.0  # microseconds -> ns
MS = 1_000_000.0  # milliseconds -> ns


class TaxCategory:
    """Datacenter-tax categories of Figure 1."""

    APP_LOGIC = "app_logic"
    TCP = "tcp"
    ENCRYPTION = "encryption"  # Encr + Decr
    RPC = "rpc"
    SERIALIZATION = "serialization"  # Ser + Dser
    COMPRESSION = "compression"  # Cmp + Dcmp
    LOAD_BALANCING = "load_balancing"

    TAX = (TCP, ENCRYPTION, RPC, SERIALIZATION, COMPRESSION, LOAD_BALANCING)
    ALL = (APP_LOGIC,) + TAX


#: Average execution-time fractions across SocialNetwork services
#: (Figure 1): AppLogic 20.7%, TCP 25.6%, (De)Encr 14.6%, RPC 3.2%,
#: (De)Ser 22.4%, (De)Cmp 9.5%, LdB 3.9%.
AVERAGE_TAX_FRACTIONS: Dict[str, float] = {
    TaxCategory.APP_LOGIC: 0.207,
    TaxCategory.TCP: 0.256,
    TaxCategory.ENCRYPTION: 0.146,
    TaxCategory.RPC: 0.032,
    TaxCategory.SERIALIZATION: 0.224,
    TaxCategory.COMPRESSION: 0.095,
    TaxCategory.LOAD_BALANCING: 0.039,
}


@dataclass(frozen=True)
class OrchestrationCosts:
    """Software/manager costs of the orchestration schemes (ns)."""

    #: RELIEF: time the centralized hardware manager is busy per
    #: accelerator completion (interrupt receipt + processing). The
    #: paper quotes ~1.5 us [26].
    relief_manager_per_completion_ns: float = 1500.0
    #: RELIEF: manager work to admit/schedule one new request into the
    #: (centralized) queue.
    relief_manager_per_submission_ns: float = 200.0
    #: RELIEF ladder: manager work to stage the memory buffer of a large
    #: (>2 KB) payload (descriptor only, cheaper than a full completion).
    relief_manager_large_data_ns: float = 100.0
    #: CPU-Centric: core-side cost per accelerator completion: device
    #: interrupt delivery, kernel handler, cache/TLB pollution on return,
    #: and submitting the next accelerator.
    cpu_centric_per_completion_ns: float = 22000.0
    #: Cohort: hand-off over a shared-memory software queue between two
    #: statically linked accelerators (no CPU involvement).
    cohort_pair_hop_ns: float = 400.0
    #: Cohort: core-side cost to shepherd an unlinked transition
    #: (polling a shared-memory completion queue, cheaper than an IRQ).
    cohort_cpu_hop_ns: float = 4500.0
    #: Cohort: average delay until the polling thread notices the
    #: completion in the shared-memory queue (half the poll period).
    cohort_poll_delay_ns: float = 6000.0
    #: Extra CPU work when a branch/transform must be resolved in
    #: software because the orchestrator cannot (all but AccelFlow).
    cpu_branch_resolution_ns: float = 1200.0
    cpu_transform_ns_per_kb: float = 500.0
    #: Deadline after which a TCP accelerator gives up waiting for a
    #: response, notifies the core and terminates the request.
    tcp_response_timeout_ns: float = 50 * MS


@dataclass(frozen=True)
class RemoteLatencies:
    """One-way-response latencies of remote dependencies (ns medians).

    Sampled lognormally (sigma ~0.6) around these medians by the driver.
    """

    db_cache_ns: float = 35 * US
    database_ns: float = 220 * US
    nested_rpc_ns: float = 90 * US
    http_ns: float = 400 * US
    sigma: float = 0.35
    #: Probability that a response never arrives (paper: TCP input-queue
    #: timeouts at 3.2 per million requests under bursty traffic).
    loss_probability: float = 3.2e-6


@dataclass(frozen=True)
class BranchProbabilities:
    """Default probabilities of payload fields when not forced by a path."""

    compressed: float = 0.35
    hit: float = 0.85
    found: float = 0.995
    exception: float = 0.004
    c_compressed: float = 0.5

    def as_dict(self) -> Dict[str, float]:
        return {
            "compressed": self.compressed,
            "hit": self.hit,
            "found": self.found,
            "exception": self.exception,
            "c_compressed": self.c_compressed,
        }


#: Average per-service invocation rate of the Alibaba-trace-like setup.
ALIBABA_AVERAGE_RPS = 13_400.0

"""Cost model: per-operation CPU times calibrated from Figure 1.

The paper models an accelerator as running computation C in
``cpu_time / speedup`` (Section VI). This module derives, for each
service, the *software* (CPU) time of each tax operation: the service's
per-category time (total time x Figure 1 fraction) divided by the
number of operations of that category along its most-common path. A
sampled payload's size scales the op time around the service's median
wire size. Processor generations scale AppLogic and tax differently
(Section VII.C.4).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..core.registry import TraceRegistry
from ..hw.ops import AccelOp
from ..hw.params import AcceleratorKind, ProcessorGeneration
from .calibration import TaxCategory
from .payloads import PayloadModel
from .spec import CATEGORY_OF_KIND, CpuSegment, ServiceSpec, count_ops_by_category

__all__ = ["CostModel"]


class CostModel:
    """Per-service operation costs, generation-aware."""

    #: Size scaling of an op's time relative to the median payload is
    #: clamped to this range (fixed per-op overheads dominate small
    #: messages; very large ones stream efficiently).
    MIN_SIZE_SCALE = 0.3
    MAX_SIZE_SCALE = 3.0

    def __init__(
        self,
        registry: TraceRegistry,
        generation: Optional[ProcessorGeneration] = None,
    ):
        self.registry = registry
        self.generation = generation
        self._per_op_cache: Dict[str, Dict[str, float]] = {}

    # -- calibration ------------------------------------------------------
    def _per_op_times(self, spec: ServiceSpec) -> Dict[str, float]:
        """Base CPU time per op, by tax category, for one service."""
        cached = self._per_op_cache.get(spec.name)
        if cached is not None:
            return cached
        counts = count_ops_by_category(self.registry, spec)
        times: Dict[str, float] = {}
        for category in TaxCategory.TAX:
            count = counts[category]
            category_ns = spec.category_time_ns(category)
            times[category] = category_ns / count if count else 0.0
        self._per_op_cache[spec.name] = times
        return times

    def _tax_scale(self) -> float:
        return self.generation.tax_scale if self.generation else 1.0

    def _app_scale(self) -> float:
        return self.generation.app_logic_scale if self.generation else 1.0

    # -- queries ------------------------------------------------------------
    def base_op_time_ns(self, spec: ServiceSpec, kind: AcceleratorKind) -> float:
        """Software time of one op of ``kind`` at the median payload."""
        category = CATEGORY_OF_KIND[kind]
        return self._per_op_times(spec)[category] * self._tax_scale()

    def size_scale(self, spec: ServiceSpec, wire_size: int) -> float:
        ratio = wire_size / spec.wire_median_bytes
        return min(self.MAX_SIZE_SCALE, max(self.MIN_SIZE_SCALE, ratio))

    def op_for(
        self, spec: ServiceSpec, kind: AcceleratorKind, wire_size: int
    ) -> AccelOp:
        """Build the :class:`AccelOp` of one trace step."""
        cpu_ns = self.base_op_time_ns(spec, kind) * self.size_scale(spec, wire_size)
        data_in, data_out = PayloadModel.sizes_for(kind, wire_size)
        return AccelOp(kind, cpu_ns, data_in, data_out)

    def cpu_segment_ns(self, spec: ServiceSpec, segment: CpuSegment) -> float:
        """AppLogic time of one CPU segment (generation-scaled)."""
        return spec.cpu_segment_ns(segment) * self._app_scale()

    def software_chain_ns(self, spec: ServiceSpec, kinds, wire_size: int) -> float:
        """Software time of running a whole op sequence on a core
        (the Non-acc architecture and CPU-fallback paths)."""
        return sum(
            self.base_op_time_ns(spec, kind) * self.size_scale(spec, wire_size)
            for kind in kinds
        )

    def validate(self, spec: ServiceSpec) -> None:
        """Check the spec's time budget is fully attributable.

        A tax category with a nonzero Figure-1 fraction but zero
        operations on the most-common path would silently lose that
        share of the service's execution time.
        """
        counts = count_ops_by_category(self.registry, spec)
        for category in TaxCategory.TAX:
            if spec.fractions.get(category, 0.0) > 0.0 and counts[category] == 0:
                raise ValueError(
                    f"service {spec.name}: {category} has a time fraction but "
                    "no operations on the most-common path"
                )

    def expected_accel_service_ns(
        self, spec: ServiceSpec, kind: AcceleratorKind, speedup: float
    ) -> float:
        """Expected accelerated service time (for deadline assignment)."""
        return self.base_op_time_ns(spec, kind) / speedup

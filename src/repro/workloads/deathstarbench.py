"""HotelReservation and MediaServices suites (DeathStarBench).

The paper uses these suites in the load-sweep experiments (Figure 12)
and in the Section III characterization (62.5% / 82.5% of their
accelerator sequences contain conditionals). The paper does not publish
their per-service paths, so we model representative services with the
same trace catalogue: read-heavy lookup services (cache reads, nested
RPCs) for HotelReservation, and larger-payload streaming-flavoured
services for MediaServices.
"""

from __future__ import annotations

from typing import Dict, List

from .calibration import US, TaxCategory
from .spec import CpuSegment, ParallelInvocations, ServiceSpec, TraceInvocation

__all__ = ["hotel_reservation_services", "media_services"]

_T = TaxCategory


def _fractions(app, tcp, encr, rpc, ser, cmp, ldb) -> Dict[str, float]:
    return {
        _T.APP_LOGIC: app,
        _T.TCP: tcp,
        _T.ENCRYPTION: encr,
        _T.RPC: rpc,
        _T.SERIALIZATION: ser,
        _T.COMPRESSION: cmp,
        _T.LOAD_BALANCING: ldb,
    }


def hotel_reservation_services() -> List[ServiceSpec]:
    """Six representative HotelReservation services."""
    return [
        ServiceSpec(
            name="SearchHotel",
            suite="hotel",
            total_time_ns=2400 * US,
            fractions=_fractions(0.24, 0.25, 0.14, 0.04, 0.21, 0.08, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                ParallelInvocations(
                    tuple(TraceInvocation("T9c", {"compressed": True}) for _ in range(2))
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=12000.0,
        ),
        ServiceSpec(
            name="Reserve",
            suite="hotel",
            total_time_ns=1900 * US,
            fractions=_fractions(0.22, 0.26, 0.15, 0.03, 0.21, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T8c", {"exception": False, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=6000.0,
        ),
        ServiceSpec(
            name="Recommend",
            suite="hotel",
            total_time_ns=1500 * US,
            fractions=_fractions(0.25, 0.24, 0.14, 0.03, 0.22, 0.08, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T4", {"hit": True, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=9000.0,
        ),
        ServiceSpec(
            name="GeoLookup",
            suite="hotel",
            total_time_ns=900 * US,
            fractions=_fractions(0.16, 0.31, 0.16, 0.04, 0.27, 0.00, 0.06),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=18000.0,
            wire_median_bytes=768.0,
        ),
        ServiceSpec(
            name="RateQuote",
            suite="hotel",
            total_time_ns=1300 * US,
            fractions=_fractions(0.21, 0.26, 0.15, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": True}),
                CpuSegment(),
                TraceInvocation("T4", {"hit": True, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T3"),
            ),
            rate_rps=13000.0,
        ),
        ServiceSpec(
            name="CheckAvail",
            suite="hotel",
            total_time_ns=2000 * US,
            fractions=_fractions(0.20, 0.26, 0.15, 0.03, 0.23, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation(
                    "T4",
                    {"hit": False, "found": True, "compressed": False,
                     "c_compressed": True, "exception": False},
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=10000.0,
        ),
    ]


def media_services() -> List[ServiceSpec]:
    """Six representative MediaServices services (larger payloads)."""
    return [
        ServiceSpec(
            name="ComposeReview",
            suite="media",
            total_time_ns=3200 * US,
            fractions=_fractions(0.24, 0.24, 0.14, 0.04, 0.21, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": True}),
                CpuSegment(),
                ParallelInvocations(
                    tuple(TraceInvocation("T9c", {"compressed": True}) for _ in range(3))
                ),
                CpuSegment(),
                TraceInvocation("T3"),
            ),
            rate_rps=5000.0,
            wire_median_bytes=4096.0,
        ),
        ServiceSpec(
            name="ReadPlot",
            suite="media",
            total_time_ns=1700 * US,
            fractions=_fractions(0.20, 0.26, 0.14, 0.03, 0.23, 0.10, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T4", {"hit": True, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T3"),
            ),
            rate_rps=16000.0,
            wire_median_bytes=3072.0,
        ),
        ServiceSpec(
            name="CastInfo",
            suite="media",
            total_time_ns=1100 * US,
            fractions=_fractions(0.22, 0.25, 0.15, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T4", {"hit": True, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=14000.0,
        ),
        ServiceSpec(
            name="RateMovie",
            suite="media",
            total_time_ns=1400 * US,
            fractions=_fractions(0.22, 0.25, 0.15, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T8c", {"exception": False, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=9000.0,
        ),
        ServiceSpec(
            name="VideoMeta",
            suite="media",
            total_time_ns=2600 * US,
            fractions=_fractions(0.21, 0.25, 0.14, 0.03, 0.23, 0.10, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": True}),
                CpuSegment(),
                TraceInvocation("T11c", {"compressed": True}),
                CpuSegment(),
                TraceInvocation("T3"),
            ),
            rate_rps=7000.0,
            wire_median_bytes=6144.0,
        ),
        ServiceSpec(
            name="UserReviews",
            suite="media",
            total_time_ns=2100 * US,
            fractions=_fractions(0.23, 0.25, 0.14, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation(
                    "T4",
                    {"hit": False, "found": True, "compressed": False,
                     "c_compressed": True, "exception": False},
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=11000.0,
        ),
    ]

"""Payload-size model (Figure 5).

The paper measures, per accelerator, the input/output data sizes:
medians of a few KB with a long tail into tens of KB (consistent with
Google's RPC characterization [68]). We sample one *wire size* per
trace invocation (lognormal, median ~1.5 KB) and derive each
accelerator's input/output sizes from per-kind scale factors so data
sizes stay consistent along a chain (compression shrinks, decompression
expands, serialization inflates the wire form, LdB carries no data).
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..hw.params import AcceleratorKind
from ..sim import Stream

__all__ = ["PayloadModel", "SIZE_FACTORS"]

_K = AcceleratorKind

#: (input, output) size as multiples of the invocation's wire size.
SIZE_FACTORS: Dict[AcceleratorKind, Tuple[float, float]] = {
    _K.TCP: (1.00, 1.00),
    _K.ENCR: (1.00, 1.02),  # ciphertext slightly larger
    _K.DECR: (1.02, 1.00),
    _K.RPC: (0.95, 0.95),  # headers only touched
    _K.SER: (1.25, 1.00),  # app format -> compact wire format
    _K.DSER: (1.00, 1.25),
    _K.CMP: (2.60, 1.00),  # compresses ~2.6x (Zstd-class ratios)
    _K.DCMP: (1.00, 2.60),
    _K.LDB: (0.03, 0.03),  # scheduling metadata only
}


class PayloadModel:
    """Samples per-invocation wire sizes and derives per-op data sizes."""

    MIN_WIRE_BYTES = 128
    MAX_WIRE_BYTES = 64 * 1024

    def __init__(
        self,
        stream: Stream,
        median_bytes: float = 1536.0,
        sigma: float = 0.85,
    ):
        if median_bytes <= 0:
            raise ValueError(f"median must be positive, got {median_bytes}")
        self.stream = stream
        self.median_bytes = median_bytes
        self.sigma = sigma

    def sample_wire_size(self) -> int:
        """One invocation's wire-format message size in bytes."""
        return int(
            self.stream.bounded_lognormal(
                self.median_bytes,
                self.sigma,
                low=self.MIN_WIRE_BYTES,
                high=self.MAX_WIRE_BYTES,
            )
        )

    @staticmethod
    def sizes_for(kind: AcceleratorKind, wire_size: int) -> Tuple[int, int]:
        """(input, output) bytes of one op given the wire size."""
        in_factor, out_factor = SIZE_FACTORS[kind]
        return max(1, int(wire_size * in_factor)), max(1, int(wire_size * out_factor))

    @classmethod
    def median_sizes(cls, kind: AcceleratorKind, median_bytes: float) -> Tuple[float, float]:
        """Median (input, output) bytes for a kind (used by Fig 5)."""
        in_factor, out_factor = SIZE_FACTORS[kind]
        return median_bytes * in_factor, median_bytes * out_factor

"""Coarse-grained image-processing / RNN suite (Figure 15 substitute).

The paper re-evaluates RELIEF and AccelFlow on the gem5-based simulator
released with RELIEF, whose 7 coarse-grained accelerators target image
processing and RNNs. That artifact is unavailable here, so we model the
same *shape*: applications that chain a handful of coarse accelerators
(ms-scale operations, large frames, no dynamic branches) — the regime
where a centralized manager is least harmful, so gains are smaller than
for microservices (the paper reports 1.8x average throughput).

The 7 coarse accelerators are mapped onto the existing accelerator
slots (the hardware model is agnostic to what a PE computes); the table
below documents the mapping. Speedups are typical for such ASICs.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.builder import seq
from ..core.registry import TraceRegistry
from ..hw.params import AcceleratorKind, MachineParams
from .calibration import US, TaxCategory
from .spec import CpuSegment, ServiceSpec, TraceInvocation

__all__ = [
    "COARSE_ACCELERATOR_SLOTS",
    "COARSE_SPEEDUPS",
    "coarse_machine_params",
    "relief_suite_registry",
    "relief_suite_services",
]

_K = AcceleratorKind

#: Coarse accelerator -> hardware slot it occupies in this experiment.
COARSE_ACCELERATOR_SLOTS: Dict[str, AcceleratorKind] = {
    "ISP": _K.TCP,  # image signal processor (frame ingest)
    "Canny": _K.ENCR,  # edge detection
    "Harris": _K.DECR,  # corner detection
    "EdgeTrack": _K.RPC,  # feature tracking
    "GEMM": _K.SER,  # dense matrix engine (RNN cells)
    "Elem": _K.DSER,  # elementwise / activation engine
    "Pool": _K.CMP,  # pooling / downsampling
}

#: ASIC speedups over a core for the coarse operations.
COARSE_SPEEDUPS: Dict[AcceleratorKind, float] = {
    _K.TCP: 12.0,
    _K.ENCR: 25.0,
    _K.DECR: 22.0,
    _K.RPC: 15.0,
    _K.SER: 30.0,
    _K.DSER: 18.0,
    _K.CMP: 20.0,
    _K.DCMP: 1.0,  # unused slot
    _K.LDB: 1.0,  # unused slot
}

_T = TaxCategory


def coarse_machine_params(pes: int = 1) -> MachineParams:
    """Machine configured like the RELIEF artifact: one monolithic
    (single-PE) instance of each coarse accelerator."""
    return MachineParams(speedups=dict(COARSE_SPEEDUPS)).with_pes(pes)


def relief_suite_registry() -> TraceRegistry:
    """Accelerator chains of the coarse apps (static, branch-free)."""
    registry = TraceRegistry()
    # Image pipelines: ISP -> detectors -> pooling.
    registry.register(seq("TCP", "Encr", "Cmp", name="edge_chain"))
    registry.register(seq("TCP", "Decr", "RPC", "Cmp", name="track_chain"))
    registry.register(seq("TCP", "Encr", "Decr", "Cmp", name="feature_chain"))
    # RNN pipelines: GEMM/activation ping-pong.
    registry.register(seq("Ser", "Dser", "Ser", "Dser", name="rnn_chain"))
    registry.register(seq("Ser", "Dser", "Ser", "Dser", "Ser", "Dser",
                          name="deep_rnn_chain"))
    # Mixed vision+RNN (captioning-style).
    registry.register(seq("TCP", "Encr", "Cmp", "Ser", "Dser", name="caption_chain"))
    return registry


def _fractions(app, tcp, encr, rpc, ser, cmp) -> Dict[str, float]:
    return {
        _T.APP_LOGIC: app,
        _T.TCP: tcp,
        _T.ENCRYPTION: encr,
        _T.RPC: rpc,
        _T.SERIALIZATION: ser,
        _T.COMPRESSION: cmp,
        _T.LOAD_BALANCING: 0.0,
    }


def relief_suite_services() -> List[ServiceSpec]:
    """Six coarse-grained applications (image processing + RNN)."""
    return [
        ServiceSpec(
            name="EdgeDetect",
            suite="relief",
            total_time_ns=500 * US,
            fractions=_fractions(0.10, 0.25, 0.45, 0.0, 0.0, 0.20),
            path=(TraceInvocation("edge_chain"), CpuSegment()),
            rate_rps=2400.0,
            wire_median_bytes=32768.0,
        ),
        ServiceSpec(
            name="ObjTrack",
            suite="relief",
            total_time_ns=380 * US,
            fractions=_fractions(0.12, 0.22, 0.30, 0.21, 0.0, 0.15),
            path=(TraceInvocation("track_chain"), CpuSegment()),
            rate_rps=1600.0,
            wire_median_bytes=32768.0,
        ),
        ServiceSpec(
            name="FeatureExt",
            suite="relief",
            total_time_ns=550 * US,
            fractions=_fractions(0.10, 0.24, 0.46, 0.0, 0.0, 0.20),
            path=(TraceInvocation("feature_chain"), CpuSegment()),
            rate_rps=2000.0,
            wire_median_bytes=32768.0,
        ),
        ServiceSpec(
            name="RnnText",
            suite="relief",
            total_time_ns=380 * US,
            fractions=_fractions(0.15, 0.0, 0.0, 0.0, 0.85, 0.0),
            path=(TraceInvocation("rnn_chain"), CpuSegment()),
            rate_rps=3200.0,
            wire_median_bytes=8192.0,
        ),
        ServiceSpec(
            name="RnnSpeech",
            suite="relief",
            total_time_ns=950 * US,
            fractions=_fractions(0.12, 0.0, 0.0, 0.0, 0.88, 0.0),
            path=(TraceInvocation("deep_rnn_chain"), CpuSegment()),
            rate_rps=1200.0,
            wire_median_bytes=16384.0,
        ),
        ServiceSpec(
            name="Caption",
            suite="relief",
            total_time_ns=700 * US,
            fractions=_fractions(0.13, 0.20, 0.27, 0.0, 0.25, 0.15),
            path=(TraceInvocation("caption_chain"), CpuSegment()),
            rate_rps=1400.0,
            wire_median_bytes=32768.0,
        ),
    ]

"""Per-request context: identity, payload fields, latency components.

A :class:`Request` travels through the driver and the orchestrator and
accumulates its latency breakdown into named buckets, enabling the
Figure 17 decomposition (CPU / accelerators / orchestration /
communication) plus queueing and remote-dependency time.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from .spec import ServiceSpec

__all__ = ["Request", "Buckets"]

_request_ids = itertools.count()


class Buckets:
    """Latency-component bucket names."""

    CPU = "cpu"
    ACCEL = "accel"
    ORCHESTRATION = "orchestration"
    COMMUNICATION = "communication"
    QUEUE = "queue"
    REMOTE = "remote"

    ALL = (CPU, ACCEL, ORCHESTRATION, COMMUNICATION, QUEUE, REMOTE)


class Request:
    """One service invocation."""

    __slots__ = (
        "rid",
        "spec",
        "arrival_ns",
        "complete_ns",
        "state",
        "wire_size",
        "tenant",
        "priority",
        "error",
        "timed_out",
        "fell_back",
        "tcp_retries",
        "step_retries",
        "slo_deadline_ns",
        "components",
        "accelerator_ops",
    )

    def __init__(
        self,
        spec: ServiceSpec,
        arrival_ns: float,
        state: Dict[str, bool],
        wire_size: int,
        tenant: int = 0,
        priority: int = 0,
    ):
        self.rid = next(_request_ids)
        self.spec = spec
        self.arrival_ns = arrival_ns
        self.complete_ns: Optional[float] = None
        #: Payload fields that resolve the branch conditions of this
        #: request's traces (fixed at arrival; see DESIGN.md).
        self.state = state
        self.wire_size = wire_size
        self.tenant = tenant
        #: Priority class for PRIORITY-ordered accelerator queues.
        self.priority = priority
        self.error = False
        self.timed_out = False
        self.fell_back = False
        #: Remote waits retried after a lost response (recovery plane).
        self.tcp_retries = 0
        #: Accelerator step attempts retried after a fault or watchdog.
        self.step_retries = 0
        #: Absolute soft deadline when the run enforces SLOs (EDF).
        self.slo_deadline_ns: Optional[float] = None
        self.components: Dict[str, float] = {bucket: 0.0 for bucket in Buckets.ALL}
        self.accelerator_ops = 0

    def add(self, bucket: str, ns: float) -> None:
        self.components[bucket] += ns

    @property
    def completed(self) -> bool:
        return self.complete_ns is not None

    @property
    def latency_ns(self) -> float:
        if self.complete_ns is None:
            raise ValueError(f"request #{self.rid} has not completed")
        return self.complete_ns - self.arrival_ns

    def component_fraction(self, bucket: str) -> float:
        total = sum(self.components.values())
        if total <= 0:
            return 0.0
        return self.components[bucket] / total

    def __repr__(self) -> str:
        status = "done" if self.completed else "in-flight"
        return f"Request(#{self.rid}, {self.spec.name}, {status})"

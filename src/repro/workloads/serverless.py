"""Serverless functions (FunctionBench-like) for the Figure 16 study.

The paper runs FunctionBench workloads (ML serving, image, video and
document processing) under Microsoft Azure production traces, colocated
on one server, and reports per-function P99 for Non-acc, RELIEF and
AccelFlow. FunctionBench sources and the Azure traces are substituted
with parameterized function models and a bursty arrival generator
(:mod:`repro.workloads.azure`): short functions, heavy tax share
(encryption + serialization dominated), spiky invocations.
"""

from __future__ import annotations

from typing import Dict, List

from .calibration import US, TaxCategory
from .spec import CpuSegment, ServiceSpec, TraceInvocation

__all__ = ["serverless_functions", "SERVERLESS_NAMES"]

SERVERLESS_NAMES = [
    "ImgRot",
    "ImgResize",
    "MLServe",
    "VidThumb",
    "DocConv",
    "Sentiment",
    "JsonParse",
    "MailGen",
]

_T = TaxCategory


def _fractions(app, tcp, encr, rpc, ser, cmp, ldb) -> Dict[str, float]:
    return {
        _T.APP_LOGIC: app,
        _T.TCP: tcp,
        _T.ENCRYPTION: encr,
        _T.RPC: rpc,
        _T.SERIALIZATION: ser,
        _T.COMPRESSION: cmp,
        _T.LOAD_BALANCING: ldb,
    }


def _simple_function(name, total_us, fractions, rate, wire=2048.0, compressed=False):
    return ServiceSpec(
        name=name,
        suite="serverless",
        total_time_ns=total_us * US,
        fractions=fractions,
        path=(
            TraceInvocation("T1", {"compressed": compressed}),
            CpuSegment(),
            TraceInvocation("T3" if compressed else "T2"),
        ),
        rate_rps=rate,
        wire_median_bytes=wire,
    )


def serverless_functions() -> List[ServiceSpec]:
    """Eight FunctionBench-like functions."""
    return [
        # Short image rotation: tax dominates (the paper highlights it).
        _simple_function(
            "ImgRot", 350,
            _fractions(0.14, 0.27, 0.17, 0.03, 0.25, 0.08, 0.06),
            rate=9000.0, wire=8192.0, compressed=True,
        ),
        _simple_function(
            "ImgResize", 500,
            _fractions(0.20, 0.25, 0.16, 0.03, 0.23, 0.08, 0.05),
            rate=7000.0, wire=8192.0, compressed=True,
        ),
        # ML model serving: more app logic, storage fetch for the model.
        ServiceSpec(
            name="MLServe",
            suite="serverless",
            total_time_ns=2500 * US,
            fractions=_fractions(0.38, 0.18, 0.12, 0.03, 0.18, 0.07, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T4", {"hit": True, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=3000.0,
            wire_median_bytes=4096.0,
        ),
        # Video thumbnailing: long, compressed payloads both ways.
        _simple_function(
            "VidThumb", 4200,
            _fractions(0.34, 0.20, 0.12, 0.02, 0.18, 0.10, 0.04),
            rate=1200.0, wire=16384.0, compressed=True,
        ),
        # Document conversion: fetches the document over HTTP.
        ServiceSpec(
            name="DocConv",
            suite="serverless",
            total_time_ns=1800 * US,
            fractions=_fractions(0.26, 0.24, 0.14, 0.02, 0.21, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T11c", {"compressed": True}),
                CpuSegment(),
                TraceInvocation("T3"),
            ),
            rate_rps=2500.0,
            wire_median_bytes=6144.0,
        ),
        _simple_function(
            "Sentiment", 700,
            _fractions(0.24, 0.27, 0.15, 0.03, 0.26, 0.00, 0.05),
            rate=6000.0, wire=1024.0,
        ),
        _simple_function(
            "JsonParse", 260,
            _fractions(0.11, 0.30, 0.16, 0.04, 0.32, 0.00, 0.07),
            rate=12000.0, wire=1024.0,
        ),
        # Mail generation: writes the rendered mail to storage.
        ServiceSpec(
            name="MailGen",
            suite="serverless",
            total_time_ns=900 * US,
            fractions=_fractions(0.22, 0.25, 0.15, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T8c", {"exception": False, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=4000.0,
        ),
    ]

"""The eight SocialNetwork services (DeathStarBench), per Table IV.

Each service's most-common execution path reproduces Table IV exactly,
including the compression choices that make the per-invocation
accelerator counts match the paper's # column (CPost 87, ReadH 28,
StoreP 18, Follow 30, Login 29, CUrls 19, UniqId 9, RegUsr 25 — see
``tests/workloads/test_socialnetwork.py``).

Absolute execution times and per-service rates are calibrated, not
published: times are DeathStarBench-plausible (0.3-5 ms), rates average
the paper's 13.4K RPS with read-heavy services invoked more often than
compose-heavy ones (Alibaba-like skew).
"""

from __future__ import annotations

from typing import Dict, List

from .calibration import US, TaxCategory
from .spec import CpuSegment, ParallelInvocations, ServiceSpec, TraceInvocation

__all__ = ["social_network_services", "SOCIAL_NETWORK_NAMES"]

SOCIAL_NETWORK_NAMES = [
    "CPost",
    "ReadH",
    "StoreP",
    "Follow",
    "Login",
    "CUrls",
    "UniqId",
    "RegUsr",
]

_T = TaxCategory


def _fractions(app, tcp, encr, rpc, ser, cmp, ldb) -> Dict[str, float]:
    return {
        _T.APP_LOGIC: app,
        _T.TCP: tcp,
        _T.ENCRYPTION: encr,
        _T.RPC: rpc,
        _T.SERIALIZATION: ser,
        _T.COMPRESSION: cmp,
        _T.LOAD_BALANCING: ldb,
    }


def social_network_services() -> List[ServiceSpec]:
    """The eight SocialNetwork services with Table IV paths."""
    compressed = {"compressed": True}
    plain = {"compressed": False}

    return [
        # CPost: T1-CPU-4x(T9-T10)-CPU-3x(T9-T10)-CPU-T2, 87 accels.
        ServiceSpec(
            name="CPost",
            suite="socialnetwork",
            total_time_ns=4800 * US,
            fractions=_fractions(0.26, 0.24, 0.14, 0.05, 0.20, 0.08, 0.03),
            path=(
                TraceInvocation("T1", compressed),
                CpuSegment(weight=1.5),
                ParallelInvocations(tuple(TraceInvocation("T9c", compressed) for _ in range(4))),
                CpuSegment(),
                ParallelInvocations(tuple(TraceInvocation("T9c", compressed) for _ in range(3))),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=3000.0,
            wire_median_bytes=2048.0,
        ),
        # ReadH: T1-CPU-T4-T5-CPU-T9-T10-CPU-T3, 28 accels.
        ServiceSpec(
            name="ReadH",
            suite="socialnetwork",
            total_time_ns=2100 * US,
            fractions=_fractions(0.22, 0.26, 0.14, 0.03, 0.22, 0.10, 0.03),
            path=(
                TraceInvocation("T1", compressed),
                CpuSegment(),
                TraceInvocation("T4", {"compressed": True, "hit": True}),
                CpuSegment(),
                TraceInvocation("T9", plain),
                CpuSegment(),
                TraceInvocation("T3"),
            ),
            rate_rps=14000.0,
            wire_median_bytes=2560.0,
        ),
        # StoreP: T1-CPU-T8-T7-CPU-T2, 18 accels.
        ServiceSpec(
            name="StoreP",
            suite="socialnetwork",
            total_time_ns=1300 * US,
            fractions=_fractions(0.21, 0.25, 0.15, 0.03, 0.22, 0.10, 0.04),
            path=(
                TraceInvocation("T1", compressed),
                CpuSegment(),
                TraceInvocation("T8c", {"exception": False}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=16000.0,
        ),
        # Follow: T1-CPU-3x(T8-T7)-CPU-T2, 30 accels.
        ServiceSpec(
            name="Follow",
            suite="socialnetwork",
            total_time_ns=1800 * US,
            fractions=_fractions(0.23, 0.30, 0.14, 0.02, 0.26, 0.00, 0.05),
            path=(
                TraceInvocation("T1", plain),
                CpuSegment(),
                ParallelInvocations(
                    tuple(TraceInvocation("T8", {"exception": False}) for _ in range(3))
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=10000.0,
        ),
        # Login: T1-CPU-T4-T5-T6-T7-CPU-T2, 29 accels (cache miss, DB hit).
        ServiceSpec(
            name="Login",
            suite="socialnetwork",
            total_time_ns=2000 * US,
            # No compression on Login's most common path (Table IV pins
            # its accelerator count at 29, which forces plain payloads),
            # so its compression fraction is folded into TCP/Ser/Encr.
            fractions=_fractions(0.12, 0.33, 0.19, 0.03, 0.27, 0.00, 0.06),
            path=(
                TraceInvocation("T1", plain),
                CpuSegment(),
                TraceInvocation(
                    "T4",
                    {
                        "hit": False,
                        "found": True,
                        "compressed": False,
                        "c_compressed": False,
                        "exception": False,
                    },
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=9000.0,
            wire_median_bytes=1024.0,
        ),
        # CUrls: T1-CPU-T8-T7-CPU-T3, 19 accels.
        ServiceSpec(
            name="CUrls",
            suite="socialnetwork",
            total_time_ns=1200 * US,
            fractions=_fractions(0.22, 0.25, 0.14, 0.03, 0.22, 0.10, 0.04),
            path=(
                TraceInvocation("T1", compressed),
                CpuSegment(),
                TraceInvocation("T8c", {"exception": False}),
                CpuSegment(),
                TraceInvocation("T3"),
            ),
            rate_rps=14000.0,
        ),
        # UniqId: T1-CPU-T2, 9 accels; short, tax-dominated.
        ServiceSpec(
            name="UniqId",
            suite="socialnetwork",
            total_time_ns=280 * US,
            fractions=_fractions(0.10, 0.34, 0.17, 0.04, 0.28, 0.00, 0.07),
            path=(
                TraceInvocation("T1", plain),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=30000.0,
            wire_median_bytes=512.0,
        ),
        # RegUsr: T1-CPU-T8-T7-CPU-T9-T10-CPU-T2, 25 accels.
        ServiceSpec(
            name="RegUsr",
            suite="socialnetwork",
            total_time_ns=1600 * US,
            fractions=_fractions(0.21, 0.30, 0.15, 0.03, 0.27, 0.00, 0.04),
            path=(
                TraceInvocation("T1", plain),
                CpuSegment(),
                TraceInvocation("T8", {"exception": False}),
                CpuSegment(),
                TraceInvocation("T9", plain),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=11200.0,
        ),
    ]

"""Service specifications: execution paths over traces + CPU segments.

A :class:`ServiceSpec` captures what the paper publishes about each
service: its most-common execution path (Table IV) as an alternation of
trace invocations and CPU (AppLogic) segments, its execution-time
breakdown across tax categories (Figure 1), its total unloaded
execution time, and its invocation rate in the Alibaba-trace-like
setup.

Path steps:

* :class:`TraceInvocation` — start the named trace; ``forced`` pins
  payload fields (e.g. ``{"hit": False}`` for Login's cache miss) so
  the most-common path matches Table IV. The chain follows ATM links
  (T4 -> T5 -> ...) automatically, waiting for network responses where
  a TCP send precedes a TCP receive.
* :class:`CpuSegment` — a slice of the service's AppLogic time.
* :class:`ParallelInvocations` — concurrent chains (CPost's 4x(T9-T10)).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..core.registry import TraceRegistry
from ..core.trace import ResolvedPath
from ..hw.params import AcceleratorKind
from .calibration import TaxCategory

__all__ = [
    "TraceInvocation",
    "CpuSegment",
    "ParallelInvocations",
    "PathStep",
    "ServiceSpec",
    "CATEGORY_OF_KIND",
    "most_common_state",
    "expand_chain",
    "count_ops_by_category",
    "total_accelerators",
]

_K = AcceleratorKind

#: Tax category of each accelerator kind.
CATEGORY_OF_KIND: Dict[AcceleratorKind, str] = {
    _K.TCP: TaxCategory.TCP,
    _K.ENCR: TaxCategory.ENCRYPTION,
    _K.DECR: TaxCategory.ENCRYPTION,
    _K.RPC: TaxCategory.RPC,
    _K.SER: TaxCategory.SERIALIZATION,
    _K.DSER: TaxCategory.SERIALIZATION,
    _K.CMP: TaxCategory.COMPRESSION,
    _K.DCMP: TaxCategory.COMPRESSION,
    _K.LDB: TaxCategory.LOAD_BALANCING,
}


@dataclass(frozen=True)
class TraceInvocation:
    """Start the chain anchored at ``entry`` with pinned payload fields."""

    entry: str
    forced: Mapping[str, bool] = field(default_factory=dict)

    def __repr__(self) -> str:
        if self.forced:
            pins = ",".join(f"{k}={'T' if v else 'F'}" for k, v in sorted(self.forced.items()))
            return f"TraceInvocation({self.entry}; {pins})"
        return f"TraceInvocation({self.entry})"


@dataclass(frozen=True)
class CpuSegment:
    """A slice of the service's AppLogic, weighted among CPU segments."""

    weight: float = 1.0


@dataclass(frozen=True)
class ParallelInvocations:
    """Concurrent trace chains; the request joins on all of them."""

    invocations: Tuple[TraceInvocation, ...]

    def __post_init__(self):
        if len(self.invocations) < 2:
            raise ValueError("ParallelInvocations needs at least two chains")


PathStep = Union[TraceInvocation, CpuSegment, ParallelInvocations]

#: Field defaults of the *most common* execution (used for static
#: accounting; the stochastic driver samples around these).
_MOST_COMMON_DEFAULTS: Dict[str, bool] = {
    "compressed": False,
    "hit": True,
    "found": True,
    "exception": False,
    "c_compressed": False,
}


def most_common_state(forced: Mapping[str, bool]) -> Dict[str, bool]:
    """The deterministic payload-field state of the most common path."""
    state = dict(_MOST_COMMON_DEFAULTS)
    state.update(forced)
    return state


@dataclass(frozen=True)
class ServiceSpec:
    """One microservice/function: path, time breakdown, and load."""

    name: str
    suite: str
    #: Unloaded end-to-end execution time on CPU only (Figure 1 bars).
    total_time_ns: float
    #: Execution-time fraction per TaxCategory (must sum to ~1).
    fractions: Mapping[str, float]
    path: Tuple[PathStep, ...]
    #: Invocation rate in the production-trace-like experiments (RPS).
    rate_rps: float
    #: Median wire-format message size for this service's payloads.
    wire_median_bytes: float = 1536.0
    tenant: int = 0
    #: Priority class under the PRIORITY queue policy (lower wins,
    #: Section IV-C: requests "tagged with priority levels").
    priority: int = 0

    def __post_init__(self):
        total = sum(self.fractions.values())
        # The paper's own averages sum to 0.999; allow rounding slack.
        if abs(total - 1.0) > 0.005:
            raise ValueError(
                f"service {self.name}: fractions sum to {total:.4f}, expected 1"
            )
        if not any(isinstance(step, CpuSegment) for step in self.path):
            raise ValueError(f"service {self.name}: path has no CPU segment")

    # -- AppLogic ------------------------------------------------------------
    @property
    def app_logic_ns(self) -> float:
        return self.total_time_ns * self.fractions[TaxCategory.APP_LOGIC]

    def cpu_segment_weights(self) -> List[float]:
        return [s.weight for s in self.path if isinstance(s, CpuSegment)]

    def cpu_segment_ns(self, segment: CpuSegment) -> float:
        total_weight = sum(self.cpu_segment_weights())
        return self.app_logic_ns * segment.weight / total_weight

    def category_time_ns(self, category: str) -> float:
        return self.total_time_ns * self.fractions.get(category, 0.0)

    # -- static path accounting -------------------------------------------------
    def trace_invocations(self) -> List[TraceInvocation]:
        """All trace invocations along the path (parallel ones expanded)."""
        invocations: List[TraceInvocation] = []
        for step in self.path:
            if isinstance(step, TraceInvocation):
                invocations.append(step)
            elif isinstance(step, ParallelInvocations):
                invocations.extend(step.invocations)
        return invocations

    def __repr__(self) -> str:
        return f"ServiceSpec({self.name}, {self.total_time_ns / 1000:.0f}us)"


def expand_chain(
    registry: TraceRegistry,
    invocation: TraceInvocation,
    state: Optional[Dict[str, bool]] = None,
    max_links: int = 16,
) -> List[ResolvedPath]:
    """Follow a chain (entry trace + ATM links) to resolved paths.

    Fanout arms that themselves link to follow-on traces (T6's
    write-back to T7) are expanded too.
    """
    if state is None:
        state = most_common_state(invocation.forced)
    paths: List[ResolvedPath] = []
    pending = deque([invocation.entry])
    seen = 0
    while pending:
        name = pending.popleft()
        seen += 1
        if seen > max_links:
            raise ValueError(
                f"chain from {invocation.entry!r} exceeds {max_links} links"
            )
        path = registry.get(name).resolve(state)
        paths.append(path)
        if path.next_trace:
            pending.append(path.next_trace)
        for arm in path.fanout_paths():
            if arm.next_trace:
                pending.append(arm.next_trace)
    return paths


def count_ops_by_category(
    registry: TraceRegistry, spec: ServiceSpec
) -> Dict[str, int]:
    """Accelerator ops per tax category along the most common path."""
    counts: Dict[str, int] = {category: 0 for category in TaxCategory.TAX}
    for invocation in spec.trace_invocations():
        for path in expand_chain(registry, invocation):
            for kind in _all_kinds(path):
                counts[CATEGORY_OF_KIND[kind]] += 1
    return counts


def _all_kinds(path: ResolvedPath) -> List[AcceleratorKind]:
    kinds = list(path.kinds())
    for step in path.steps:
        for arm in step.fanout:
            kinds.extend(_all_kinds(arm))
    return kinds


def total_accelerators(registry: TraceRegistry, spec: ServiceSpec) -> int:
    """Accelerator invocations per service request (Table IV column #)."""
    return sum(count_ops_by_category(registry, spec).values())

"""Train-Ticket-style services (the third suite of Section III).

The paper's characterization runs over 80 services from DeathStarBench,
Train Ticket and uSuite; Train Ticket contributes the lowest share of
conditional accelerator sequences (53.8%). We model six representative
booking-workflow services whose trace mix leans on the branch-free send
templates (T2/T3/T8/T9 sends), which is what pushes the conditional
share below the other suites.
"""

from __future__ import annotations

from typing import Dict, List

from .calibration import US, TaxCategory
from .spec import CpuSegment, ParallelInvocations, ServiceSpec, TraceInvocation

__all__ = ["train_ticket_services"]

_T = TaxCategory


def _fractions(app, tcp, encr, rpc, ser, cmp, ldb) -> Dict[str, float]:
    return {
        _T.APP_LOGIC: app,
        _T.TCP: tcp,
        _T.ENCRYPTION: encr,
        _T.RPC: rpc,
        _T.SERIALIZATION: ser,
        _T.COMPRESSION: cmp,
        _T.LOAD_BALANCING: ldb,
    }


def train_ticket_services() -> List[ServiceSpec]:
    """Six representative Train Ticket services."""
    return [
        ServiceSpec(
            name="QueryTrip",
            suite="trainticket",
            total_time_ns=1600 * US,
            fractions=_fractions(0.22, 0.26, 0.14, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": True}),
                CpuSegment(),
                TraceInvocation("T4", {"hit": True, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=15000.0,
        ),
        ServiceSpec(
            name="BookSeat",
            suite="trainticket",
            total_time_ns=2200 * US,
            fractions=_fractions(0.23, 0.25, 0.15, 0.03, 0.21, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T8c", {"exception": False, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T9", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=6000.0,
        ),
        ServiceSpec(
            name="PayOrder",
            suite="trainticket",
            total_time_ns=1900 * US,
            fractions=_fractions(0.21, 0.25, 0.16, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T11c", {"compressed": True}),  # payment gateway
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=4000.0,
        ),
        ServiceSpec(
            name="Notify",
            suite="trainticket",
            total_time_ns=700 * US,
            fractions=_fractions(0.18, 0.29, 0.16, 0.04, 0.27, 0.00, 0.06),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                ParallelInvocations(
                    tuple(TraceInvocation("T9", {"compressed": False})
                          for _ in range(2))
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=9000.0,
            wire_median_bytes=768.0,
        ),
        ServiceSpec(
            name="CancelTicket",
            suite="trainticket",
            total_time_ns=1500 * US,
            fractions=_fractions(0.22, 0.25, 0.15, 0.03, 0.22, 0.09, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": True}),
                CpuSegment(),
                TraceInvocation("T8", {"exception": False}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=3000.0,
        ),
        ServiceSpec(
            name="RouteInfo",
            suite="trainticket",
            total_time_ns=900 * US,
            fractions=_fractions(0.17, 0.29, 0.16, 0.04, 0.28, 0.00, 0.06),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=20000.0,
            wire_median_bytes=640.0,
        ),
    ]

"""uSuite-style services (Sriraman & Wenisch, IISWC'18).

The paper's Section III characterization spans DeathStarBench, Train
Ticket and uSuite. uSuite's four benchmarks are mid-tier leaf services
— HDSearch (image similarity), Router (replicated key-value routing),
Set Algebra (document intersection) and Recommend (collaborative
filtering) — all fan-out-heavy request/response services with small
payloads and tight latencies, which is how we parameterize them here.
"""

from __future__ import annotations

from typing import Dict, List

from .calibration import US, TaxCategory
from .spec import CpuSegment, ParallelInvocations, ServiceSpec, TraceInvocation

__all__ = ["usuite_services"]

_T = TaxCategory


def _fractions(app, tcp, encr, rpc, ser, cmp, ldb) -> Dict[str, float]:
    return {
        _T.APP_LOGIC: app,
        _T.TCP: tcp,
        _T.ENCRYPTION: encr,
        _T.RPC: rpc,
        _T.SERIALIZATION: ser,
        _T.COMPRESSION: cmp,
        _T.LOAD_BALANCING: ldb,
    }


def usuite_services() -> List[ServiceSpec]:
    """The four uSuite benchmarks as service models."""
    return [
        # HDSearch: fan out to leaf shards, merge nearest neighbours.
        ServiceSpec(
            name="HDSearch",
            suite="usuite",
            total_time_ns=1100 * US,
            fractions=_fractions(0.26, 0.24, 0.14, 0.04, 0.21, 0.07, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": True}),
                CpuSegment(),
                ParallelInvocations(
                    tuple(TraceInvocation("T9", {"compressed": False})
                          for _ in range(3))
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=12000.0,
            wire_median_bytes=1024.0,
        ),
        # Router: consistent-hash lookup then a replicated store write.
        ServiceSpec(
            name="Router",
            suite="usuite",
            total_time_ns=600 * US,
            fractions=_fractions(0.15, 0.29, 0.16, 0.04, 0.26, 0.04, 0.06),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T8c", {"exception": False, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=25000.0,
            wire_median_bytes=512.0,
        ),
        # Set Algebra: posting-list intersection over cached documents.
        ServiceSpec(
            name="SetAlgebra",
            suite="usuite",
            total_time_ns=900 * US,
            fractions=_fractions(0.24, 0.25, 0.14, 0.03, 0.22, 0.08, 0.04),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation("T4", {"hit": True, "compressed": True}),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=16000.0,
            wire_median_bytes=1536.0,
        ),
        # Recommend: user-vector fetch plus model scoring.
        ServiceSpec(
            name="McRouter",
            suite="usuite",
            total_time_ns=750 * US,
            fractions=_fractions(0.20, 0.27, 0.15, 0.03, 0.24, 0.05, 0.06),
            path=(
                TraceInvocation("T1", {"compressed": False}),
                CpuSegment(),
                TraceInvocation(
                    "T4",
                    {"hit": False, "found": True, "compressed": False,
                     "c_compressed": True, "exception": False},
                ),
                CpuSegment(),
                TraceInvocation("T2"),
            ),
            rate_rps=18000.0,
            wire_median_bytes=896.0,
        ),
    ]

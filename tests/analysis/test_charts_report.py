"""Tests for ASCII charts and the report generator."""

import pytest

from repro.analysis import bar_chart, generate_report, series_chart
from repro.analysis.report import PAPER_CLAIMS
from repro.experiments import EXPERIMENTS


class TestBarChart:
    def test_renders_all_labels(self):
        chart = bar_chart({"accelflow": 10.0, "relief": 30.0}, title="P99")
        assert "P99" in chart
        assert "accelflow" in chart and "relief" in chart

    def test_peak_gets_longest_bar(self):
        chart = bar_chart({"small": 1.0, "big": 10.0}, width=20)
        small_line = [l for l in chart.splitlines() if l.startswith("small")][0]
        big_line = [l for l in chart.splitlines() if l.startswith("big")][0]
        assert big_line.count("#") > small_line.count("#")

    def test_empty_values(self):
        assert bar_chart({}, title="nothing") == "nothing"

    def test_zero_peak_no_bars(self):
        chart = bar_chart({"a": 0.0})
        assert "#" not in chart


class TestSeriesChart:
    def test_renders_axis_and_legend(self):
        chart = series_chart(
            {"relief": [1.0, 2.0, 4.0], "accelflow": [1.0, 1.2, 1.5]},
            x_labels=["5K", "10K", "15K"],
        )
        assert "5K" in chart and "15K" in chart
        assert "o=relief" in chart
        assert "x=accelflow" in chart

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            series_chart({"a": [1.0]}, x_labels=["x", "y"])

    def test_empty(self):
        assert series_chart({}, x_labels=[], title="t") == "t"


class TestReport:
    def test_claims_cover_every_experiment(self):
        assert set(PAPER_CLAIMS) == set(EXPERIMENTS)

    def test_generate_report_subset(self):
        report = generate_report(scale="smoke", only=["table4", "table2"])
        assert "## table4" in report
        assert "## table2" in report
        assert "Paper:" in report
        assert "```text" in report

    def test_report_quotes_paper_claims(self):
        report = generate_report(scale="smoke", only=["table4"])
        assert PAPER_CLAIMS["table4"] in report


class TestSparkline:
    def test_empty_series_is_empty_string(self):
        from repro.analysis.ascii_chart import sparkline

        assert sparkline([]) == ""

    def test_all_equal_nonzero_renders_mid_ramp(self):
        from repro.analysis.ascii_chart import sparkline

        out = sparkline([5.0, 5.0, 5.0])
        assert len(out) == 3
        assert len(set(out)) == 1
        assert out[0] not in (" ",)  # visible, not blank

    def test_all_zero_renders_blank_not_crash(self):
        from repro.analysis.ascii_chart import sparkline

        assert sparkline([0.0, 0.0]) == "  "

    def test_nan_renders_blank_column(self):
        from repro.analysis.ascii_chart import sparkline

        out = sparkline([2.0, float("nan"), 1.0, 3.0])
        assert len(out) == 4
        assert out[1] == " "  # NaN column is blank
        # Normalization ignored the NaN: neighbours still span the ramp.
        assert out[0] not in (" ", "@")
        assert out[3] == "@"

    def test_inf_clamps_to_ramp_ends(self):
        from repro.analysis.ascii_chart import sparkline

        out = sparkline([1.0, float("inf"), float("-inf"), 2.0])
        assert out[1] == "@"  # top of the ramp
        assert out[2] == " "  # bottom of the ramp

    def test_all_non_finite_degrades(self):
        from repro.analysis.ascii_chart import sparkline

        out = sparkline([float("nan"), float("inf"), float("-inf")])
        assert out == " @ "

    def test_downsampling_skips_nan_within_buckets(self):
        from repro.analysis.ascii_chart import sparkline

        values = [1.0, float("nan")] * 60  # 120 points into 60 columns
        out = sparkline(values, width=60)
        assert len(out) == 60
        assert " " not in out  # every bucket still has a finite sample

    def test_invalid_width_rejected(self):
        from repro.analysis.ascii_chart import sparkline

        with pytest.raises(ValueError):
            sparkline([1.0], width=0)

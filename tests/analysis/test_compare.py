"""Tests for the A/B configuration comparison tool."""

import pytest

from repro.analysis.compare import Candidate, compare_configs
from repro.hw import MachineParams
from repro.server import RunConfig
from repro.workloads import social_network_services

SERVICES = [s for s in social_network_services() if s.name == "UniqId"]


def quick_config(**kwargs):
    defaults = dict(
        architecture="accelflow",
        requests_per_service=40,
        arrival_mode="poisson",
        rate_rps=3000.0,
        warmup_fraction=0.0,
    )
    defaults.update(kwargs)
    return RunConfig(**defaults)


class TestCompareConfigs:
    def test_basic_comparison(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("accelflow", quick_config()),
                Candidate("non-acc", quick_config(architecture="non-acc")),
            ],
        )
        assert comparison.baseline == "accelflow"
        assert comparison.winner() == "accelflow"
        assert comparison.p99_speedup("non-acc") < 1.0

    def test_explicit_baseline(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("a", quick_config()),
                Candidate("b", quick_config(architecture="relief")),
            ],
            baseline="b",
        )
        assert comparison.p99_speedup("b") == pytest.approx(1.0)
        assert comparison.p99_speedup("a") > 1.0

    def test_table_renders(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("base", quick_config()),
                Candidate("4pe", quick_config(
                    machine_params=MachineParams().with_pes(4)
                )),
            ],
        )
        table = comparison.table()
        assert "base" in table and "4pe" in table
        assert "mean P99" in table

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_configs(SERVICES, [])
        with pytest.raises(ValueError):
            compare_configs(
                SERVICES,
                [Candidate("x", quick_config()), Candidate("x", quick_config())],
            )
        with pytest.raises(ValueError):
            compare_configs(
                SERVICES, [Candidate("x", quick_config())], baseline="ghost"
            )

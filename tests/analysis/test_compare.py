"""Tests for the A/B configuration comparison tool."""

import pytest

from repro.analysis.compare import Candidate, compare_configs
from repro.hw import MachineParams
from repro.server import RunConfig
from repro.workloads import social_network_services

SERVICES = [s for s in social_network_services() if s.name == "UniqId"]


def quick_config(**kwargs):
    defaults = dict(
        architecture="accelflow",
        requests_per_service=40,
        arrival_mode="poisson",
        rate_rps=3000.0,
        warmup_fraction=0.0,
    )
    defaults.update(kwargs)
    return RunConfig(**defaults)


class TestCompareConfigs:
    def test_basic_comparison(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("accelflow", quick_config()),
                Candidate("non-acc", quick_config(architecture="non-acc")),
            ],
        )
        assert comparison.baseline == "accelflow"
        assert comparison.winner() == "accelflow"
        assert comparison.p99_speedup("non-acc") < 1.0

    def test_explicit_baseline(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("a", quick_config()),
                Candidate("b", quick_config(architecture="relief")),
            ],
            baseline="b",
        )
        assert comparison.p99_speedup("b") == pytest.approx(1.0)
        assert comparison.p99_speedup("a") > 1.0

    def test_table_renders(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("base", quick_config()),
                Candidate("4pe", quick_config(
                    machine_params=MachineParams().with_pes(4)
                )),
            ],
        )
        table = comparison.table()
        assert "base" in table and "4pe" in table
        assert "mean P99" in table

    def test_accessors_read_the_underlying_results(self):
        comparison = compare_configs(
            SERVICES, [Candidate("only", quick_config())]
        )
        result = comparison.results["only"]
        assert comparison.mean_ns("only") == result.mean_latency_ns()
        assert comparison.p99_ns("only") == result.mean_p99_ns()
        assert comparison.p99_speedup("only") == pytest.approx(1.0)
        assert comparison.winner() == "only"

    def test_comparison_is_deterministic(self):
        candidates = [
            Candidate("a", quick_config()),
            Candidate("b", quick_config(architecture="non-acc")),
        ]
        first = compare_configs(SERVICES, candidates)
        second = compare_configs(SERVICES, candidates)
        for name in ("a", "b"):
            assert first.p99_ns(name) == second.p99_ns(name)
            assert first.mean_ns(name) == second.mean_ns(name)

    def test_three_way_comparison_keeps_candidate_order(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("accelflow", quick_config()),
                Candidate("relief", quick_config(architecture="relief")),
                Candidate("non-acc", quick_config(architecture="non-acc")),
            ],
        )
        assert comparison.candidates == ["accelflow", "relief", "non-acc"]
        # The table lists candidates in submission order, winner or not.
        rows = [
            line.split()[0]
            for line in comparison.table().splitlines()[2:5]
        ]
        assert rows == ["accelflow", "relief", "non-acc"]
        assert comparison.winner() == "accelflow"

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_configs(SERVICES, [])
        with pytest.raises(ValueError):
            compare_configs(
                SERVICES,
                [Candidate("x", quick_config()), Candidate("x", quick_config())],
            )
        with pytest.raises(ValueError):
            compare_configs(
                SERVICES, [Candidate("x", quick_config())], baseline="ghost"
            )


# ----------------------------------------------------------------------
# Degenerate P99s (regression: division by a zero candidate P99)
# ----------------------------------------------------------------------
class _StubResult:
    """Minimal stand-in for ExperimentResult in speedup arithmetic."""

    def __init__(self, p99_ns, mean_ns=100.0):
        self._p99_ns = p99_ns
        self._mean_ns = mean_ns

    def mean_p99_ns(self):
        return self._p99_ns

    def mean_latency_ns(self):
        return self._mean_ns


def _stub_comparison(baseline_p99, candidate_p99):
    from repro.analysis.compare import ComparisonResult

    return ComparisonResult(
        candidates=["base", "cand"],
        results={
            "base": _StubResult(baseline_p99),
            "cand": _StubResult(candidate_p99),
        },
        baseline="base",
    )


class TestZeroP99Guard:
    def test_zero_candidate_p99_yields_inf_not_raise(self):
        comparison = _stub_comparison(5000.0, 0.0)
        assert comparison.p99_speedup("cand") == float("inf")
        assert comparison.p99_speedup("base") == pytest.approx(1.0)

    def test_zero_everywhere_yields_nan(self):
        comparison = _stub_comparison(0.0, 0.0)
        speedup = comparison.p99_speedup("cand")
        assert speedup != speedup  # nan

    def test_table_marks_non_finite_speedups(self):
        table = _stub_comparison(5000.0, 0.0).table()
        cand_row = next(
            line for line in table.splitlines() if line.startswith("cand")
        )
        assert "infx" in cand_row.replace(" ", "")
        table = _stub_comparison(0.0, 0.0).table()
        cand_row = next(
            line for line in table.splitlines() if line.startswith("cand")
        )
        assert "n/a" in cand_row

    def test_normal_speedups_unchanged(self):
        comparison = _stub_comparison(4000.0, 2000.0)
        assert comparison.p99_speedup("cand") == pytest.approx(2.0)
        assert "2.00x" in comparison.table()

"""Tests for the A/B configuration comparison tool."""

import pytest

from repro.analysis.compare import Candidate, compare_configs
from repro.hw import MachineParams
from repro.server import RunConfig
from repro.workloads import social_network_services

SERVICES = [s for s in social_network_services() if s.name == "UniqId"]


def quick_config(**kwargs):
    defaults = dict(
        architecture="accelflow",
        requests_per_service=40,
        arrival_mode="poisson",
        rate_rps=3000.0,
        warmup_fraction=0.0,
    )
    defaults.update(kwargs)
    return RunConfig(**defaults)


class TestCompareConfigs:
    def test_basic_comparison(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("accelflow", quick_config()),
                Candidate("non-acc", quick_config(architecture="non-acc")),
            ],
        )
        assert comparison.baseline == "accelflow"
        assert comparison.winner() == "accelflow"
        assert comparison.p99_speedup("non-acc") < 1.0

    def test_explicit_baseline(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("a", quick_config()),
                Candidate("b", quick_config(architecture="relief")),
            ],
            baseline="b",
        )
        assert comparison.p99_speedup("b") == pytest.approx(1.0)
        assert comparison.p99_speedup("a") > 1.0

    def test_table_renders(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("base", quick_config()),
                Candidate("4pe", quick_config(
                    machine_params=MachineParams().with_pes(4)
                )),
            ],
        )
        table = comparison.table()
        assert "base" in table and "4pe" in table
        assert "mean P99" in table

    def test_accessors_read_the_underlying_results(self):
        comparison = compare_configs(
            SERVICES, [Candidate("only", quick_config())]
        )
        result = comparison.results["only"]
        assert comparison.mean_ns("only") == result.mean_latency_ns()
        assert comparison.p99_ns("only") == result.mean_p99_ns()
        assert comparison.p99_speedup("only") == pytest.approx(1.0)
        assert comparison.winner() == "only"

    def test_comparison_is_deterministic(self):
        candidates = [
            Candidate("a", quick_config()),
            Candidate("b", quick_config(architecture="non-acc")),
        ]
        first = compare_configs(SERVICES, candidates)
        second = compare_configs(SERVICES, candidates)
        for name in ("a", "b"):
            assert first.p99_ns(name) == second.p99_ns(name)
            assert first.mean_ns(name) == second.mean_ns(name)

    def test_three_way_comparison_keeps_candidate_order(self):
        comparison = compare_configs(
            SERVICES,
            [
                Candidate("accelflow", quick_config()),
                Candidate("relief", quick_config(architecture="relief")),
                Candidate("non-acc", quick_config(architecture="non-acc")),
            ],
        )
        assert comparison.candidates == ["accelflow", "relief", "non-acc"]
        # The table lists candidates in submission order, winner or not.
        rows = [
            line.split()[0]
            for line in comparison.table().splitlines()[2:5]
        ]
        assert rows == ["accelflow", "relief", "non-acc"]
        assert comparison.winner() == "accelflow"

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_configs(SERVICES, [])
        with pytest.raises(ValueError):
            compare_configs(
                SERVICES,
                [Candidate("x", quick_config()), Candidate("x", quick_config())],
            )
        with pytest.raises(ValueError):
            compare_configs(
                SERVICES, [Candidate("x", quick_config())], baseline="ghost"
            )

"""SLO-aware admission control: shed, degrade, and recovery."""

import pytest

from repro.cluster import (
    PROPORTIONAL,
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    ClusterConfig,
    run_cluster,
)
from repro.workloads import social_network_services

SERVICES = {s.name: s for s in social_network_services()}


def make_request(spec_name="StoreP", wire_size=4096):
    from repro.workloads.request import Request

    return Request(
        SERVICES[spec_name], arrival_ns=0.0, state={}, wire_size=wire_size
    )


class TestController:
    def test_cold_start_admits_everything(self):
        controller = AdmissionController(AdmissionConfig(slo_ns=1.0))
        for _ in range(10):
            assert controller.decide(make_request()) == AdmissionDecision.ADMIT
        assert controller.predicted_p99_ns() is None

    def test_sheds_once_prediction_exceeds_slo(self):
        config = AdmissionConfig(slo_ns=1000.0, min_samples=5)
        controller = AdmissionController(config)
        for _ in range(10):
            controller.observe(5000.0)  # way over the SLO
        assert controller.overloaded
        assert controller.decide(make_request()) == AdmissionDecision.SHED
        assert controller.shed == 1

    def test_recovers_when_tail_drains(self):
        config = AdmissionConfig(slo_ns=1000.0, window=8, min_samples=5)
        controller = AdmissionController(config)
        for _ in range(8):
            controller.observe(5000.0)
        assert controller.overloaded
        for _ in range(8):  # the window forgets the burst
            controller.observe(100.0)
        assert not controller.overloaded
        assert controller.decide(make_request()) == AdmissionDecision.ADMIT

    def test_degrade_truncates_payload(self):
        config = AdmissionConfig(
            slo_ns=1000.0, mode="degrade", min_samples=5, degrade_factor=0.5
        )
        controller = AdmissionController(config)
        for _ in range(10):
            controller.observe(5000.0)
        request = make_request(wire_size=4096)
        assert controller.decide(request) == AdmissionDecision.DEGRADE
        assert request.wire_size == 2048

    def test_degrade_respects_floor(self):
        config = AdmissionConfig(
            slo_ns=1000.0,
            mode="degrade",
            min_samples=5,
            degrade_factor=0.01,
            degrade_floor_bytes=64,
        )
        controller = AdmissionController(config)
        for _ in range(10):
            controller.observe(5000.0)
        request = make_request(wire_size=4096)
        controller.decide(request)
        assert request.wire_size == 64

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=1.0, mode="explode")
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=1.0, degrade_factor=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=1.0, sustain_decisions=0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=1.0, shed_step=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=1.0, max_shed_fraction=1.5)


class TestProportionalMode:
    def _controller(self, **kw):
        defaults = dict(
            slo_ns=1000.0,
            mode=PROPORTIONAL,
            window=64,
            min_samples=5,
            sustain_decisions=4,
            shed_step=0.25,
            max_shed_fraction=0.75,
        )
        defaults.update(kw)
        return AdmissionController(AdmissionConfig(**defaults))

    def _breach(self, controller):
        for _ in range(controller.config.min_samples):
            controller.observe(5000.0)

    def test_cold_start_admits_and_sheds_nothing(self):
        controller = self._controller()
        for _ in range(20):
            assert controller.decide(make_request()) == AdmissionDecision.ADMIT
        assert controller.shed_fraction == 0.0

    def test_fraction_ratchets_up_under_sustained_breach(self):
        controller = self._controller()
        self._breach(controller)
        # Each sustain_decisions-long streak steps the fraction by 0.25.
        for _ in range(4):
            controller.decide(make_request())
        assert controller.shed_fraction == 0.25
        for _ in range(4):
            controller.decide(make_request())
        assert controller.shed_fraction == 0.5

    def test_fraction_caps_at_max(self):
        controller = self._controller()
        self._breach(controller)
        for _ in range(100):
            controller.decide(make_request())
        assert controller.shed_fraction == 0.75
        # Some traffic always flows at the cap.
        assert controller.admitted > 0

    def test_error_diffusion_hits_exact_long_run_proportion(self):
        controller = self._controller(shed_step=0.25, max_shed_fraction=0.25)
        self._breach(controller)
        for _ in range(4):  # ratchet to the 0.25 plateau
            controller.decide(make_request())
        shed_before, admitted_before = controller.shed, controller.admitted
        for _ in range(400):
            controller.decide(make_request())
        shed = controller.shed - shed_before
        assert shed == 100  # exactly a quarter, not statistically close

    def test_fraction_decays_once_breach_clears(self):
        controller = self._controller()
        self._breach(controller)
        for _ in range(8):
            controller.decide(make_request())
        assert controller.shed_fraction == 0.5
        # Window forgets the burst: healthy decisions decay the fraction.
        for _ in range(controller.config.window):
            controller.observe(10.0)
        for _ in range(8):
            controller.decide(make_request())
        assert controller.shed_fraction == 0.0
        assert controller.decide(make_request()) == AdmissionDecision.ADMIT

    def test_deterministic_without_rng(self):
        def trace():
            controller = self._controller()
            self._breach(controller)
            return [controller.decide(make_request()) for _ in range(64)]

        assert trace() == trace()

    def test_stats_surface_shed_fraction(self):
        controller = self._controller()
        assert controller.stats()["shed_fraction"] == 0.0
        self._breach(controller)
        for _ in range(4):
            controller.decide(make_request())
        assert controller.stats()["shed_fraction"] == 0.25


class TestClusterIntegration:
    def _run(self, mode):
        # One machine offered ~2x its capacity, with the arrival span
        # long enough (several ms) for completed-latency feedback to
        # warm the prediction window while the overload persists.
        services = [SERVICES["StoreP"], SERVICES["Login"]]
        config = ClusterConfig(
            machines=1,
            requests_per_service=300,
            rate_rps=40000.0,
            seed=3,
            arrival_mode="mmpp",
            admission=AdmissionConfig(
                slo_ns=2e6, mode=mode, window=64, min_samples=10
            ),
        )
        return run_cluster(services, config)

    def test_overload_sheds_and_accounting_balances(self):
        result = self._run("shed")
        assert result.shed > 0, "an overloaded machine never shed"
        assert result.shed + result.completed + result.lost == result.arrivals
        # Shed requests carry no latency: the recorder only holds the
        # admitted completions.
        assert len(result.recorder) == result.completed

    def test_degrade_mode_serves_lighter_responses(self):
        result = self._run("degrade")
        assert result.degraded > 0
        assert result.shed == 0  # brown-out, not rejection
        assert result.completed + result.lost == result.arrivals

    def test_no_admission_control_admits_all(self):
        services = [SERVICES["StoreP"]]
        config = ClusterConfig(
            machines=1, requests_per_service=30, rate_rps=20000.0, seed=3
        )
        result = run_cluster(services, config)
        assert result.shed == 0 and result.degraded == 0
        assert result.admission_stats is None

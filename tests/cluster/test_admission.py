"""SLO-aware admission control: shed, degrade, and recovery."""

import pytest

from repro.cluster import (
    AdmissionConfig,
    AdmissionController,
    AdmissionDecision,
    ClusterConfig,
    run_cluster,
)
from repro.workloads import social_network_services

SERVICES = {s.name: s for s in social_network_services()}


def make_request(spec_name="StoreP", wire_size=4096):
    from repro.workloads.request import Request

    return Request(
        SERVICES[spec_name], arrival_ns=0.0, state={}, wire_size=wire_size
    )


class TestController:
    def test_cold_start_admits_everything(self):
        controller = AdmissionController(AdmissionConfig(slo_ns=1.0))
        for _ in range(10):
            assert controller.decide(make_request()) == AdmissionDecision.ADMIT
        assert controller.predicted_p99_ns() is None

    def test_sheds_once_prediction_exceeds_slo(self):
        config = AdmissionConfig(slo_ns=1000.0, min_samples=5)
        controller = AdmissionController(config)
        for _ in range(10):
            controller.observe(5000.0)  # way over the SLO
        assert controller.overloaded
        assert controller.decide(make_request()) == AdmissionDecision.SHED
        assert controller.shed == 1

    def test_recovers_when_tail_drains(self):
        config = AdmissionConfig(slo_ns=1000.0, window=8, min_samples=5)
        controller = AdmissionController(config)
        for _ in range(8):
            controller.observe(5000.0)
        assert controller.overloaded
        for _ in range(8):  # the window forgets the burst
            controller.observe(100.0)
        assert not controller.overloaded
        assert controller.decide(make_request()) == AdmissionDecision.ADMIT

    def test_degrade_truncates_payload(self):
        config = AdmissionConfig(
            slo_ns=1000.0, mode="degrade", min_samples=5, degrade_factor=0.5
        )
        controller = AdmissionController(config)
        for _ in range(10):
            controller.observe(5000.0)
        request = make_request(wire_size=4096)
        assert controller.decide(request) == AdmissionDecision.DEGRADE
        assert request.wire_size == 2048

    def test_degrade_respects_floor(self):
        config = AdmissionConfig(
            slo_ns=1000.0,
            mode="degrade",
            min_samples=5,
            degrade_factor=0.01,
            degrade_floor_bytes=64,
        )
        controller = AdmissionController(config)
        for _ in range(10):
            controller.observe(5000.0)
        request = make_request(wire_size=4096)
        controller.decide(request)
        assert request.wire_size == 64

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=0.0)
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=1.0, mode="explode")
        with pytest.raises(ValueError):
            AdmissionConfig(slo_ns=1.0, degrade_factor=0.0)


class TestClusterIntegration:
    def _run(self, mode):
        # One machine offered ~2x its capacity, with the arrival span
        # long enough (several ms) for completed-latency feedback to
        # warm the prediction window while the overload persists.
        services = [SERVICES["StoreP"], SERVICES["Login"]]
        config = ClusterConfig(
            machines=1,
            requests_per_service=300,
            rate_rps=40000.0,
            seed=3,
            arrival_mode="mmpp",
            admission=AdmissionConfig(
                slo_ns=2e6, mode=mode, window=64, min_samples=10
            ),
        )
        return run_cluster(services, config)

    def test_overload_sheds_and_accounting_balances(self):
        result = self._run("shed")
        assert result.shed > 0, "an overloaded machine never shed"
        assert result.shed + result.completed + result.lost == result.arrivals
        # Shed requests carry no latency: the recorder only holds the
        # admitted completions.
        assert len(result.recorder) == result.completed

    def test_degrade_mode_serves_lighter_responses(self):
        result = self._run("degrade")
        assert result.degraded > 0
        assert result.shed == 0  # brown-out, not rejection
        assert result.completed + result.lost == result.arrivals

    def test_no_admission_control_admits_all(self):
        services = [SERVICES["StoreP"]]
        config = ClusterConfig(
            machines=1, requests_per_service=30, rate_rps=20000.0, seed=3
        )
        result = run_cluster(services, config)
        assert result.shed == 0 and result.degraded == 0
        assert result.admission_stats is None

"""Reactive autoscaling: scale-up with warm-up latency, hysteretic drain."""

import pytest

from repro.cluster import (
    AutoscalerConfig,
    ClusterConfig,
    MachineState,
    SimulatedCluster,
    run_cluster,
)
from repro.workloads import social_network_services

SERVICES = {s.name: s for s in social_network_services()}


def make_cluster(**autoscaler_kwargs):
    defaults = dict(
        target_rps_per_machine=10000.0,
        interval_ns=1e6,
        warmup_ns=5e6,
        down_ticks=2,
        max_machines=8,
    )
    defaults.update(autoscaler_kwargs)
    config = ClusterConfig(
        machines=1, seed=0, autoscaler=AutoscalerConfig(**defaults)
    )
    return SimulatedCluster(config)


def feed(cluster, rps, intervals, interval_ns=1e6):
    """Simulate an arrival counter advancing at ``rps`` for N ticks."""

    def _process():
        per_tick = int(rps * interval_ns / 1e9)
        for _ in range(intervals):
            cluster.total_arrivals += per_tick
            yield cluster.env.timeout(interval_ns)

    cluster.env.process(_process())
    cluster.env.run(until=cluster.env.timeout(intervals * interval_ns + 1))


class TestDesiredMachines:
    def test_ceil_of_demand_over_target(self):
        cluster = make_cluster()
        scaler = cluster.autoscaler
        assert scaler.desired_machines(0.0) == 1  # min_machines
        assert scaler.desired_machines(10000.0) == 1
        assert scaler.desired_machines(10001.0) == 2
        assert scaler.desired_machines(35000.0) == 4

    def test_clamped_to_max(self):
        cluster = make_cluster(max_machines=3)
        assert cluster.autoscaler.desired_machines(1e9) == 3

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoscalerConfig(target_rps_per_machine=0.0)
        with pytest.raises(ValueError):
            AutoscalerConfig(target_rps_per_machine=1.0, min_machines=5,
                             max_machines=2)


class TestScaleUp:
    def test_burst_grows_fleet(self):
        cluster = make_cluster()
        feed(cluster, rps=40000.0, intervals=4)
        assert cluster.autoscaler.scale_ups > 0
        assert len(cluster.active_machines()) == 4  # ceil(40K / 10K)

    def test_new_machines_warm_up_before_routable(self):
        # down_ticks high: the quiet wait below must not drain the
        # machines whose warm-up we are watching.
        cluster = make_cluster(warmup_ns=5e6, down_ticks=100)
        feed(cluster, rps=40000.0, intervals=2)  # triggers scale-up
        warming = [
            m for m in cluster.machines if m.state == MachineState.WARMING
        ]
        assert warming, "scaled-up machines should still be warming"
        assert all(not m.routable for m in warming)
        assert cluster.machines[0].routable  # the original still serves
        # After the warm-up latency passes they become routable.
        cluster.env.run(until=cluster.env.timeout(6e6))
        assert all(m.routable for m in warming)


class TestScaleDown:
    def test_drains_after_consecutive_low_ticks(self):
        cluster = make_cluster(down_ticks=2)
        feed(cluster, rps=40000.0, intervals=3)
        grown = len(cluster.active_machines())
        assert grown > 1
        # Demand collapses: nothing arrives for several intervals.
        cluster.env.run(until=cluster.env.timeout(6e6))
        assert cluster.autoscaler.scale_downs > 0
        assert len(cluster.active_machines()) < grown

    def test_hysteresis_tolerates_single_low_tick(self):
        cluster = make_cluster(down_ticks=3)
        feed(cluster, rps=40000.0, intervals=2)
        # One quiet interval is not enough to drain anything.
        cluster.env.run(until=cluster.env.timeout(1.5e6))
        assert cluster.autoscaler.scale_downs == 0

    def test_never_drains_below_min(self):
        cluster = make_cluster()
        cluster.env.run(until=cluster.env.timeout(20e6))  # zero demand
        assert len(cluster.active_machines()) >= 1


class TestEndToEnd:
    def test_autoscaled_run_grows_under_load(self):
        services = [SERVICES["UniqId"], SERVICES["Login"]]
        config = ClusterConfig(
            machines=1,
            requests_per_service=150,
            rate_rps=40000.0,
            seed=1,
            arrival_mode="mmpp",
            autoscaler=AutoscalerConfig(
                target_rps_per_machine=20000.0,
                interval_ns=0.5e6,
                warmup_ns=1e6,
                max_machines=6,
            ),
        )
        result = run_cluster(services, config)
        assert result.peak_machines > 1, "overload never triggered scale-up"
        assert result.autoscaler_stats["scale_ups"] >= 1
        assert result.completed + result.lost == result.arrivals
        assert result.total_censored() == 0

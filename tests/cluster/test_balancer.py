"""Unit tests for the load-balancing policies (no simulation needed)."""

import pytest

from repro.cluster import (
    BALANCER_POLICIES,
    POLICY_ORDER,
    AcceleratorAwareBalancer,
    LeastOutstandingBalancer,
    PowerOfTwoBalancer,
    RoundRobinBalancer,
    make_balancer,
)
from repro.sim import RandomStreams


class FakeMachine:
    """Just the occupancy surface the policies read."""

    def __init__(self, index, outstanding=0, pressure=0.0, ldb=0):
        self.index = index
        self.outstanding_count = outstanding
        self._pressure = pressure
        self._ldb = ldb

    def queue_pressure(self):
        return self._pressure

    def ldb_occupancy(self):
        return self._ldb


class ScriptedStream:
    """Replays a fixed randint script (for the probing policy)."""

    def __init__(self, values):
        self._values = list(values)

    def randint(self, low, high):
        value = self._values.pop(0)
        assert low <= value <= high
        return value


class TestRoundRobin:
    def test_cycles_in_order(self):
        machines = [FakeMachine(i) for i in range(3)]
        balancer = RoundRobinBalancer()
        picks = [balancer.pick(machines, None).index for _ in range(7)]
        assert picks == [0, 1, 2, 0, 1, 2, 0]

    def test_survives_membership_change(self):
        balancer = RoundRobinBalancer()
        machines = [FakeMachine(i) for i in range(3)]
        balancer.pick(machines, None)
        balancer.pick(machines, None)
        # One machine leaves: the rotation keeps going, modulo the
        # shrunken set, never indexing out of range.
        picks = [balancer.pick(machines[:2], None).index for _ in range(4)]
        assert set(picks) <= {0, 1}


class TestLeastOutstanding:
    def test_picks_fewest_inflight(self):
        machines = [
            FakeMachine(0, outstanding=5),
            FakeMachine(1, outstanding=2),
            FakeMachine(2, outstanding=9),
        ]
        assert LeastOutstandingBalancer().pick(machines, None).index == 1

    def test_tie_breaks_by_index(self):
        machines = [FakeMachine(1, outstanding=3), FakeMachine(0, outstanding=3)]
        assert LeastOutstandingBalancer().pick(machines, None).index == 0


class TestPowerOfTwo:
    def test_probes_pressure_not_outstanding(self):
        # Machine 0 has many in-flight but low *local* pressure (its
        # requests are parked on remote waits); machine 1 is the
        # opposite. The probe must prefer low pressure.
        machines = [
            FakeMachine(0, outstanding=50, pressure=1.0),
            FakeMachine(1, outstanding=1, pressure=20.0),
        ]
        balancer = PowerOfTwoBalancer(ScriptedStream([0, 1]))
        assert balancer.pick(machines, None).index == 0

    def test_single_machine_short_circuits(self):
        machines = [FakeMachine(0)]
        balancer = PowerOfTwoBalancer(ScriptedStream([]))  # no draws
        assert balancer.pick(machines, None).index == 0

    def test_deterministic_given_stream(self):
        machines = [FakeMachine(i, pressure=float(i)) for i in range(4)]
        picks_a = [
            PowerOfTwoBalancer(RandomStreams(7).stream("b")).pick(machines, None).index
            for _ in range(1)
        ]
        picks_b = [
            PowerOfTwoBalancer(RandomStreams(7).stream("b")).pick(machines, None).index
            for _ in range(1)
        ]
        assert picks_a == picks_b


class TestAcceleratorAware:
    def test_prefers_low_local_occupancy(self):
        machines = [
            FakeMachine(0, outstanding=1, pressure=10.0, ldb=0),
            FakeMachine(1, outstanding=9, pressure=2.0, ldb=1),
        ]
        assert AcceleratorAwareBalancer().pick(machines, None).index == 1

    def test_ldb_occupancy_breaks_pressure_tie(self):
        machines = [
            FakeMachine(0, pressure=4.0, ldb=3),
            FakeMachine(1, pressure=4.0, ldb=0),
        ]
        assert AcceleratorAwareBalancer().pick(machines, None).index == 1


class TestFactory:
    def test_policy_order_matches_registry(self):
        assert POLICY_ORDER == list(BALANCER_POLICIES)

    def test_every_policy_constructs(self):
        stream = RandomStreams(0).stream("balancer")
        for name in POLICY_ORDER:
            balancer = make_balancer(name, stream)
            assert balancer.name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown balancer policy"):
            make_balancer("coin-flip")

    def test_power_of_two_needs_a_stream(self):
        with pytest.raises(ValueError):
            make_balancer("power-of-two", None)
